"""Tests for the batched driver pipeline and the measure_query semantics."""

import pytest

from repro.driver import BatchRunner, DriverConfig, HTTPClient, InProcessClient, measure_query
from repro.engine import ColumnEngine, Database, EngineOptions, RowEngine
from repro.errors import ConfigError, ValidationError
from repro.platform.models import TaskStatus
from repro.platform.service import PlatformService
from repro.platform.webapp import PlatformServer


@pytest.fixture()
def tiny_db() -> Database:
    database = Database("batch-unit")
    database.create_table("t", [("id", "int"), ("price", "float")])
    database.insert_rows("t", [(1, 10.0), (2, 20.0), (3, 30.0)])
    return database


@pytest.fixture()
def platform(tiny_db):
    """A service with one experiment whose pool is queued for one engine."""
    service = PlatformService()
    owner = service.register_user("owner", "owner@example.org")
    contributor = service.register_user("driver", "driver@example.org")
    host = service.register_host("laptop")
    engine = ColumnEngine(tiny_db)
    service.register_dbms(engine.name, engine.version)
    project = service.create_project(owner, "batch-demo")
    service.invite_contributor(owner, project, contributor)
    experiment = service.add_experiment(
        owner, project, "exp", "select sum(price) from t where id > 0",
        repeats=2, timeout_seconds=60.0)
    pool = service.build_pool(experiment, seed=5)
    pool.seed_baseline()
    pool.seed_random(4)
    service.enqueue_pool(owner, experiment, pool, dbms_label=engine.label,
                        host_name=host.name)
    return service, owner, contributor, experiment, engine


# ---------------------------------------------------------------------------
# service-level batching
# ---------------------------------------------------------------------------


class TestServiceBatching:
    def test_next_tasks_claims_up_to_limit(self, platform):
        service, _owner, contributor, experiment, engine = platform
        claimed = service.next_tasks(contributor, experiment, limit=3,
                                     dbms_label=engine.label)
        assert 1 <= len(claimed) <= 3
        assert all(task.status == TaskStatus.RUNNING.value for task in claimed)
        assert all(task.assigned_to == contributor.contributor_key for task in claimed)

    def test_next_tasks_respects_dbms_filter(self, platform):
        service, _owner, contributor, experiment, _engine = platform
        assert service.next_tasks(contributor, experiment, limit=5,
                                  dbms_label="no-such-dbms") == []

    def test_next_tasks_rejects_non_positive_limit(self, platform):
        service, _owner, contributor, experiment, _engine = platform
        with pytest.raises(ValidationError):
            service.next_tasks(contributor, experiment, limit=0)

    def test_submit_results_batch_records_and_flips_status(self, platform):
        service, _owner, contributor, experiment, engine = platform
        claimed = service.next_tasks(contributor, experiment, limit=2,
                                     dbms_label=engine.label)
        records = service.submit_results(contributor, [
            {"task": claimed[0], "times": [0.01, 0.02]},
            {"task": claimed[1], "times": [], "error": "ExecutionError: boom"},
        ])
        assert len(records) == 2
        assert claimed[0].status == TaskStatus.DONE.value
        # a first error re-pends the task for another attempt instead of
        # failing it outright (retry budget: experiment.max_attempts).
        assert claimed[1].status == TaskStatus.PENDING.value
        assert claimed[1].attempts == 1
        assert claimed[1].last_error == "ExecutionError: boom"
        assert records[1].error == "ExecutionError: boom"

    def test_submit_results_batch_validates_before_writing(self, platform):
        service, _owner, contributor, experiment, engine = platform
        claimed = service.next_tasks(contributor, experiment, limit=2,
                                     dbms_label=engine.label)
        with pytest.raises(ValidationError):
            service.submit_results(contributor, [
                {"task": claimed[0], "times": [0.01]},
                {"task": claimed[1], "times": []},  # no timings and no error
            ])
        # the invalid batch must not have recorded anything
        assert service.store.results(experiment.id) == []

    def test_submit_results_batch_is_atomic_on_missing_task(self, platform):
        from repro.errors import NotFound

        service, _owner, contributor, experiment, engine = platform
        claimed = service.next_tasks(contributor, experiment, limit=1,
                                     dbms_label=engine.label)
        ghost = claimed[0]
        service.store.delete("tasks", ghost.id)
        with pytest.raises(NotFound):
            service.submit_results(contributor, [
                {"task": ghost, "times": [0.01]},
            ])
        # the result insert must have been rolled back with the failed update
        assert service.store.results(experiment.id) == []


# ---------------------------------------------------------------------------
# batch runner (in-process and HTTP transports)
# ---------------------------------------------------------------------------


def _config(contributor, engine, **overrides) -> DriverConfig:
    settings = dict(key=contributor.contributor_key, dbms=engine.label, host="laptop",
                    repeats=2, timeout=60.0, batch_size=3)
    settings.update(overrides)
    return DriverConfig(**settings)


class TestBatchRunner:
    def test_drains_queue_in_batches(self, platform):
        service, _owner, contributor, experiment, engine = platform
        runner = BatchRunner(client=InProcessClient(service, contributor.contributor_key),
                             engine=engine, config=_config(contributor, engine))
        executed = runner.run_all(experiment.id)
        tasks = service.store.tasks(experiment.id)
        pending = [task for task in tasks if task.status == TaskStatus.PENDING.value]
        assert executed == len(tasks) >= 1 and pending == []
        assert len(service.store.results(experiment.id)) == executed
        # every distinct query was planned exactly once: misses == distinct SQL
        stats = engine.cache_stats()
        distinct = len({task.query_sql for task in service.store.tasks(experiment.id)})
        assert stats["misses"] == distinct

    def test_max_tasks_clamps_batches(self, platform):
        service, _owner, contributor, experiment, engine = platform
        runner = BatchRunner(client=InProcessClient(service, contributor.contributor_key),
                             engine=engine, config=_config(contributor, engine))
        executed = runner.run_all(experiment.id, max_tasks=2)
        assert executed == 2

    def test_worker_pool_produces_complete_results(self, platform):
        service, _owner, contributor, experiment, engine = platform
        runner = BatchRunner(client=InProcessClient(service, contributor.contributor_key),
                             engine=engine,
                             config=_config(contributor, engine, workers=3, batch_size=5))
        executed = runner.run_all(experiment.id)
        records = service.store.results(experiment.id)
        assert len(records) == executed
        assert all(record.error is None and len(record.times) == 2
                   for record in records)

    def test_http_round_trip(self, platform):
        service, _owner, contributor, experiment, engine = platform
        with PlatformServer(service) as server:
            client = HTTPClient(server.url, contributor.contributor_key)
            tasks = client.next_tasks(experiment.id, count=2, dbms=engine.label)
            assert len(tasks) == 2
            submitted = client.submit_results([
                {"task": task["id"], "times": [0.01], "error": None,
                 "load_averages": {}, "extras": {"engine": engine.label}}
                for task in tasks
            ])
            assert len(submitted) == 2
            assert {record["task_id"] for record in submitted} \
                == {task["id"] for task in tasks}

    def test_config_parses_batch_options(self, tmp_path):
        config_path = tmp_path / "driver.ini"
        config_path.write_text(
            "[sqalpel]\nkey = abc\n\n[target]\ndbms = columnstore-1.0\nhost = laptop\n"
            "batch_size = 16\nworkers = 4\n")
        from repro.driver import load_config

        config = load_config(config_path)
        assert config.batch_size == 16 and config.workers == 4
        with pytest.raises(ConfigError):
            DriverConfig(key="k", dbms="d", host="h", batch_size=0)
        with pytest.raises(ConfigError):
            DriverConfig(key="k", dbms="d", host="h", workers=0)


# ---------------------------------------------------------------------------
# measure_query semantics
# ---------------------------------------------------------------------------


class _StubResult:
    def __init__(self, elapsed: float, rows: int):
        self.elapsed = elapsed
        self.rows = [()] * rows

    def profile(self) -> dict:
        return {"engine": "stub-1.0", "rows": len(self.rows), "phases": {},
                "counters": {}, "plan_cache_hit": True}


class _StubEngine:
    """Engine double with scripted per-repetition behaviour."""

    label = "stub-1.0"
    options = EngineOptions()

    def __init__(self, script):
        #: each entry is either (elapsed, rows) or an Exception to raise.
        self.script = list(script)
        self.executions = 0

    def strategy(self) -> str:
        return "stub"

    def prepare(self, query):
        return query

    def execute(self, _query):
        step = self.script[min(self.executions, len(self.script) - 1)]
        self.executions += 1
        if isinstance(step, Exception):
            raise step
        elapsed, rows = step
        return _StubResult(elapsed, rows)


class TestMeasureQuery:
    def test_times_come_from_result_elapsed(self, tiny_db):
        engine = RowEngine(tiny_db)
        outcome = measure_query(engine, "select count(*) from t", repeats=3)
        assert len(outcome.times) == 3 and not outcome.failed
        assert outcome.rows == 1
        # the engine reports execution-only elapsed times; the outcome must
        # carry exactly those, not a re-measured wall clock around them.
        assert all(value >= 0.0 for value in outcome.times)

    def test_rows_survive_a_later_failed_repetition(self):
        engine = _StubEngine([(0.01, 7), RuntimeError("flaky")])
        outcome = measure_query(engine, "select 1", repeats=3)
        assert outcome.failed and "flaky" in outcome.error
        assert outcome.times == [0.01]
        assert outcome.rows == 7
        assert outcome.extras["rows"] == 7

    def test_over_budget_repetition_is_recorded_and_flagged(self):
        engine = _StubEngine([(5.0, 3)])
        outcome = measure_query(engine, "select 1", repeats=5, timeout=1.0)
        # the over-budget repetition is recorded, flagged, and stops the loop.
        assert outcome.times == [5.0]
        assert outcome.timed_out and outcome.extras["timed_out"] is True
        assert engine.executions == 1

    def test_within_budget_runs_all_repetitions(self):
        engine = _StubEngine([(0.1, 3)])
        outcome = measure_query(engine, "select 1", repeats=4, timeout=1.0)
        assert len(outcome.times) == 4
        assert not outcome.timed_out and "timed_out" not in outcome.extras

    def test_prepare_failure_is_a_first_class_outcome(self, tiny_db):
        engine = RowEngine(tiny_db)
        outcome = measure_query(engine, "selectt broken", repeats=3)
        assert outcome.failed and outcome.times == []
        assert outcome.extras["engine"] == engine.label
