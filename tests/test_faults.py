"""Tests for the fault-injection layer and the retry machinery it exercises."""

import random
import threading
import urllib.error
import urllib.request

import pytest

from repro.driver import HTTPClient, InProcessClient, RetryPolicy
from repro.engine import ColumnEngine, Database
from repro.errors import TransportError
from repro.obs import MetricsRegistry
from repro.platform import (
    FaultConfig,
    FaultInjector,
    FlakyEngine,
    PlatformServer,
    PlatformService,
    SimulatedCrash,
    Store,
    UnreliableClient,
)
from repro.platform.models import User
from repro.platform.webapp import create_wsgi_app


# ---------------------------------------------------------------------------
# the injector itself
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_same_seed_same_decisions(self):
        config = FaultConfig(drop_request=0.3, duplicate=0.2)
        first = FaultInjector(config, seed=42)
        second = FaultInjector(config, seed=42)
        rolls = [(first.fire("drop_request"), first.fire("duplicate"))
                 for _ in range(200)]
        replay = [(second.fire("drop_request"), second.fire("duplicate"))
                  for _ in range(200)]
        assert rolls == replay
        assert first.counts == second.counts
        assert first.total() > 0  # the probabilities actually fire

    def test_zero_probability_never_fires(self):
        injector = FaultInjector(FaultConfig(), seed=7)
        assert not any(injector.fire("drop_request") for _ in range(500))
        assert injector.total() == 0

    def test_store_hook_raises_simulated_crash(self):
        injector = FaultInjector(FaultConfig(store_crash=1.0), seed=1)
        with pytest.raises(SimulatedCrash):
            injector.store_hook("apply_batch.commit")
        assert injector.counts["store_crash"] == 1


# ---------------------------------------------------------------------------
# transport faults around a real service
# ---------------------------------------------------------------------------


def _service_with_queue():
    service = PlatformService()
    owner = service.register_user("owner", "owner@example.org")
    contributor = service.register_user("worker", "worker@example.org")
    service.register_dbms("columnstore", "1.0")
    service.register_host("laptop")
    project = service.create_project(owner, "faults-demo")
    service.invite_contributor(owner, project, contributor)
    experiment = service.add_experiment(
        owner, project, "exp", "select sum(price) from t where id > 0",
        repeats=1, timeout_seconds=60.0)
    pool = service.build_pool(experiment, seed=3)
    pool.seed_baseline()
    service.enqueue_pool(owner, experiment, pool, dbms_label="columnstore-1.0",
                         host_name="laptop")
    return service, contributor, experiment


class TestUnreliableClient:
    def test_drop_request_prevents_delivery(self):
        service, contributor, experiment = _service_with_queue()
        inner = InProcessClient(service, contributor.contributor_key)
        injector = FaultInjector(FaultConfig(drop_request=1.0), seed=1)
        client = UnreliableClient(inner, injector)
        with pytest.raises(TransportError, match="request dropped"):
            client.next_tasks(experiment.id, count=1)
        # the request never reached the service: nothing was leased out.
        assert service.queue_status(experiment)["pending"] == 1

    def test_drop_response_loses_ack_not_effect(self):
        service, contributor, experiment = _service_with_queue()
        inner = InProcessClient(service, contributor.contributor_key)
        injector = FaultInjector(FaultConfig(drop_response=1.0), seed=1)
        client = UnreliableClient(inner, injector)
        with pytest.raises(TransportError, match="response dropped"):
            client.next_tasks(experiment.id, count=1)
        # at-least-once crux: the server DID process the claim.
        assert service.queue_status(experiment)["running"] == 1

    def test_duplicate_delivery_is_absorbed_by_idempotency(self):
        service, contributor, experiment = _service_with_queue()
        inner = InProcessClient(service, contributor.contributor_key)
        task = inner.next_tasks(experiment.id, count=1)[0]
        injector = FaultInjector(FaultConfig(duplicate=1.0), seed=1)
        client = UnreliableClient(inner, injector)
        record = client.submit_result(
            task["id"], times=[0.1], error=None, load_averages={}, extras={},
            idempotency_key="k" * 32, attempt=task["attempts"])
        assert record is not None
        assert injector.counts["duplicate"] == 1
        # delivered twice, recorded once.
        assert len(service.store.results(experiment.id)) == 1
        assert service.metrics.counter("results.deduplicated").value == 1


class TestFlakyEngine:
    def test_injected_failures_become_failed_outcomes(self):
        from repro.driver import measure_query

        database = Database("flaky-unit")
        database.create_table("t", [("id", "int"), ("price", "float")])
        database.insert_rows("t", [(1, 10.0), (2, 20.0)])
        engine = FlakyEngine(ColumnEngine(database),
                             FaultInjector(FaultConfig(fail_task=1.0), seed=9))
        outcome = measure_query(engine, "select sum(price) from t", repeats=2)
        assert outcome.failed and "injected fault" in outcome.error
        # delegation: label and friends come from the wrapped engine.
        assert outcome.extras["engine"] == engine.inner.label


# ---------------------------------------------------------------------------
# crash-safe store
# ---------------------------------------------------------------------------


class TestCrashSafeStore:
    def _users(self, n):
        return [User(nickname=f"u{i}", email=f"u{i}@example.org",
                     contributor_key=f"{i:032d}") for i in range(n)]

    def test_kill_mid_batch_leaves_no_partial_state(self, tmp_path):
        """A crash inside apply_batch must roll back every row of the batch."""
        path = str(tmp_path / "crash.db")
        store = Store(path)
        first, second, third = self._users(3)
        store.insert("users", first)

        crash_at = {"apply_batch.commit"}

        def hook(point):
            if point in crash_at:
                raise SimulatedCrash(point)

        store.fault_hook = hook
        first.nickname = "renamed"
        with pytest.raises(SimulatedCrash):
            store.apply_batch(inserts=[("users", second), ("users", third)],
                              updates=[("users", first)],
                              idempotency=[("key-1", second)])
        # insert ids were reset so the entities can be cleanly re-inserted.
        assert second.id is None and third.id is None

        # reopen the file as a recovering process would.
        store.close()
        recovered = Store(path)
        survivors = recovered.users()
        assert [user.nickname for user in survivors] == ["u0"]  # update rolled back
        assert recovered.recall_submission("key-1") is None
        # and the recovered store is writable: retrying the batch succeeds.
        recovered.apply_batch(inserts=[("users", second), ("users", third)],
                              updates=[], idempotency=[("key-1", second)])
        assert len(recovered.users()) == 3
        assert recovered.recall_submission("key-1") == second.id
        recovered.close()

    def test_crash_during_writes_rolls_back_too(self, tmp_path):
        path = str(tmp_path / "crash2.db")
        store = Store(path)
        injector = FaultInjector(FaultConfig(store_crash=1.0), seed=2)
        store.fault_hook = injector.store_hook
        users = self._users(2)
        with pytest.raises(SimulatedCrash):
            store.insert_many("users", users)
        store.fault_hook = None
        assert store.users() == []
        store.close()

    def test_wal_mode_on_file_databases(self, tmp_path):
        store = Store(str(tmp_path / "wal.db"))
        mode = store._connection.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        store.close()


# ---------------------------------------------------------------------------
# HTTP retry/backoff
# ---------------------------------------------------------------------------


class _FlakyApp:
    """WSGI middleware that 503s (with Retry-After) the first ``fail`` calls."""

    def __init__(self, inner, fail: int, retry_after: str | None = "0.01"):
        self.inner = inner
        self.remaining = fail
        self.retry_after = retry_after
        self.requests = 0
        self._lock = threading.Lock()

    def __call__(self, environ, start_response):
        with self._lock:
            self.requests += 1
            failing = self.remaining > 0
            if failing:
                self.remaining -= 1
        if failing:
            headers = [("Content-Type", "application/json")]
            if self.retry_after is not None:
                headers.append(("Retry-After", self.retry_after))
            start_response("503 Service Unavailable", headers)
            return [b'{"error": "warming up"}']
        return self.inner(environ, start_response)


class TestHTTPRetries:
    def test_retries_transient_503_until_success(self):
        service, contributor, experiment = _service_with_queue()
        flaky = _FlakyApp(create_wsgi_app(service), fail=2)
        metrics = MetricsRegistry()
        with PlatformServer(service, application=flaky) as server:
            client = HTTPClient(
                server.url, contributor.contributor_key,
                retry=RetryPolicy(attempts=4, base_delay=0.001, max_delay=0.01),
                metrics=metrics, rng=random.Random(0))
            assert client.ping()["status"] == "ok"
        assert flaky.requests == 3  # two 503s, then the success
        assert metrics.counter("client.retries").value == 2

    def test_gives_up_after_budget(self):
        service, contributor, experiment = _service_with_queue()
        flaky = _FlakyApp(create_wsgi_app(service), fail=100)
        with PlatformServer(service, application=flaky) as server:
            client = HTTPClient(
                server.url, contributor.contributor_key,
                retry=RetryPolicy(attempts=2, base_delay=0.001, max_delay=0.01),
                rng=random.Random(0))
            with pytest.raises(TransportError, match="503"):
                client.ping()
        assert flaky.requests == 3  # initial try + 2 retries

    def test_non_transient_errors_fail_fast(self):
        service, contributor, experiment = _service_with_queue()
        with PlatformServer(service) as server:
            client = HTTPClient(server.url, "wrong-key",
                                retry=RetryPolicy(attempts=5, base_delay=0.001))
            with pytest.raises(TransportError, match="403"):
                client.next_task(experiment.id)

    def test_retry_disabled_fails_fast(self):
        service, contributor, experiment = _service_with_queue()
        flaky = _FlakyApp(create_wsgi_app(service), fail=1)
        with PlatformServer(service, application=flaky) as server:
            client = HTTPClient(server.url, contributor.contributor_key, retry=None)
            with pytest.raises(TransportError):
                client.ping()
        assert flaky.requests == 1


class TestRetryPolicy:
    def test_next_delay_stays_within_bounds(self):
        policy = RetryPolicy(attempts=3, base_delay=0.05, max_delay=2.0)
        rng = random.Random(123)
        delay = policy.base_delay
        for _ in range(100):
            delay = policy.next_delay(delay, rng)
            assert policy.base_delay <= delay <= policy.max_delay

    def test_delays_are_decorrelated_not_fixed(self):
        policy = RetryPolicy(attempts=3, base_delay=0.05, max_delay=2.0)
        rng = random.Random(7)
        delays = []
        delay = policy.base_delay
        for _ in range(10):
            delay = policy.next_delay(delay, rng)
            delays.append(delay)
        assert len(set(delays)) > 1
