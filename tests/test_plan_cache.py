"""Tests for the logical-plan IR, the planner and the engine plan cache."""

import pytest

from repro.engine import (
    ColumnEngine,
    Database,
    PlanCache,
    Planner,
    QueryPlan,
    RowEngine,
    normalize_sql,
)
from repro.sqlparser.parser import parse_select
from repro.tpch import QUERIES
from tests.conftest import normalise


@pytest.fixture()
def small_db() -> Database:
    database = Database("plan-unit")
    database.create_table("t", [("id", "int"), ("name", "str"), ("price", "float")])
    database.insert_rows("t", [
        (1, "alpha", 10.0), (2, "beta", 20.0), (3, "gamma", 30.0), (4, "alpha", 40.0),
    ])
    database.create_table("u", [("id", "int"), ("t_id", "int"), ("tag", "str")])
    database.insert_rows("u", [(1, 1, "x"), (2, 1, "y"), (3, 3, "z")])
    return database


# ---------------------------------------------------------------------------
# planner / plan IR
# ---------------------------------------------------------------------------


class TestPlanner:
    def test_plan_contains_root_block(self, small_db):
        planner = Planner(small_db.catalog)
        select = parse_select("select name, price from t where price > 15")
        plan = planner.plan(select, sql_text="select name, price from t where price > 15")
        root = plan.root
        assert root.output_names == ["name", "price"]
        assert root.pushdown == {"t": root.classified.single["t"]}
        assert not root.needs_aggregation
        assert [step.frame_index for step in root.join_order] == [0]

    def test_plan_covers_nested_subquery_blocks(self, small_db):
        planner = Planner(small_db.catalog)
        select = parse_select(
            "select count(*) from t where price > (select avg(price) from t) "
            "and exists (select * from u where u.t_id = t.id)")
        plan = planner.plan(select)
        # root + scalar subquery + correlated EXISTS subquery
        assert len(plan.blocks) == 3
        for node in select.walk():
            if type(node).__name__ == "Select":
                assert plan.block(node) is not None

    def test_equi_join_drives_join_order(self, small_db):
        planner = Planner(small_db.catalog)
        select = parse_select("select t.name, u.tag from u, t where t.id = u.t_id")
        plan = planner.plan(select)
        root = plan.root
        assert len(root.classified.equi_joins) == 1
        order = [step.frame_index for step in root.join_order]
        assert order == [0, 1]
        assert len(root.join_order[1].connecting) == 1

    def test_pushdown_disabled_moves_predicates_to_residual(self, small_db):
        planner = Planner(small_db.catalog, predicate_pushdown=False)
        select = parse_select("select name from t where price > 15")
        root = planner.plan(select).root
        assert root.pushdown == {}
        assert len(root.residual) == 1

    def test_describe_is_json_friendly(self, small_db):
        import json

        plan = Planner(small_db.catalog).plan(
            parse_select("select t.name, u.tag from t, u where t.id = u.t_id"))
        description = plan.describe()
        assert json.dumps(description)
        assert description["root"]["equi_joins"] == 1


# ---------------------------------------------------------------------------
# plan cache
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_hit_miss_stats(self, small_db):
        engine = RowEngine(small_db)
        first = engine.prepare("select id from t")
        second = engine.prepare("select id from t")
        assert first is second
        stats = engine.cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["size"] == 1

    def test_whitespace_normalisation_shares_plans(self, small_db):
        engine = RowEngine(small_db)
        first = engine.prepare("select id from t where id = 1")
        second = engine.prepare("select  id\n from   t where id = 1;")
        assert first is second
        assert normalize_sql("select  1 ;") == normalize_sql("select 1")

    def test_whitespace_inside_string_literals_is_significant(self, small_db):
        engine = RowEngine(small_db)
        spaced = engine.prepare("select count(*) from t where name = 'a  b'")
        single = engine.prepare("select count(*) from t where name = 'a b'")
        assert spaced is not single  # literals differ: must not share a plan
        assert normalize_sql("select '' || 'x  y'") == "select '' || 'x  y'"
        assert normalize_sql("select 'it''s  ok'  from t") == "select 'it''s  ok' from t"

    def test_eviction_lru(self, small_db):
        engine = RowEngine(small_db, plan_cache_size=2)
        engine.prepare("select id from t")
        engine.prepare("select name from t")
        engine.prepare("select price from t")  # evicts "select id from t"
        stats = engine.cache_stats()
        assert stats["evictions"] == 1 and stats["size"] == 2
        engine.prepare("select id from t")  # miss again after eviction
        assert engine.cache_stats()["misses"] == 4

    def test_disabled_cache_retains_nothing(self, small_db):
        engine = RowEngine(small_db, plan_cache_size=0)
        engine.prepare("select id from t")
        engine.prepare("select id from t")
        stats = engine.cache_stats()
        assert stats["size"] == 0 and stats["hits"] == 0 and stats["misses"] == 2

    def test_with_version_starts_with_fresh_cache(self, small_db):
        base = ColumnEngine(small_db)
        base.prepare("select count(*) from t")
        variant = base.with_version("no-pd", predicate_pushdown=False)
        assert variant.cache_stats()["size"] == 0
        plan = variant.prepare("select name from t where price > 15")
        assert plan.root.pushdown == {}  # planned under the new options
        assert base.prepare("select name from t where price > 15").root.pushdown
        assert base.cache_stats()["size"] == 2  # the base cache was untouched

    def test_clear_resets_stats(self, small_db):
        engine = RowEngine(small_db)
        engine.prepare("select id from t")
        engine.clear_plan_cache()
        stats = engine.cache_stats()
        assert stats == {"size": 0, "maxsize": 128, "enabled": True,
                         "hits": 0, "misses": 0, "evictions": 0}

    def test_plan_cache_standalone(self):
        cache = PlanCache(maxsize=1)
        sentinel = object()
        cache.put("a", sentinel)
        cache.put("b", sentinel)
        assert cache.get("a") is None and cache.get("b") is sentinel
        assert cache.stats.evictions == 1
        assert len(cache) == 1


# ---------------------------------------------------------------------------
# cached vs. uncached execution equivalence
# ---------------------------------------------------------------------------


QUERY_SET = [
    "select name, price from t where price > 15 order by price",
    "select count(*), sum(price), min(price), max(price) from t",
    "select name, count(*) as n from t group by name having count(*) > 1 order by name",
    "select t.name, u.tag from t, u where t.id = u.t_id order by tag",
    "select count(*) from t where price > (select avg(price) from t)",
    "select count(*) from t where exists (select * from u where u.t_id = t.id)",
    "select max(total) from (select name, sum(price) as total from t group by name) s",
    "select t.id, count(u.id) as tags from t left join u on t.id = u.t_id "
    "group by t.id order by t.id",
]


class TestCachedExecutionEquivalence:
    @pytest.mark.parametrize("kind", ["row", "column"])
    def test_cache_on_and_off_agree(self, small_db, kind):
        factory = RowEngine if kind == "row" else ColumnEngine
        cached = factory(small_db)
        uncached = factory(small_db, plan_cache_size=0)
        for sql in QUERY_SET:
            cold = uncached.execute(sql)
            for _ in range(3):  # repeated executions hit the cache after round one
                warm = cached.execute(sql)
                assert warm.columns == cold.columns
                assert normalise(warm.rows) == normalise(cold.rows)
        assert cached.cache_stats()["hits"] >= 2 * len(QUERY_SET)

    def test_prepared_plan_is_reusable_across_executions(self, small_db):
        engine = ColumnEngine(small_db)
        plan = engine.prepare(QUERY_SET[3])
        assert isinstance(plan, QueryPlan)
        results = [engine.execute(plan).rows for _ in range(3)]
        assert results[0] == results[1] == results[2]
        # prepare() is idempotent on plans
        assert engine.prepare(plan) is plan

    def test_row_and_column_agree_through_shared_plan_ir(self, row_engine, column_engine):
        for query_id in (1, 6, 13):
            sql = QUERIES[query_id]
            row_result = row_engine.execute(row_engine.prepare(sql))
            column_result = column_engine.execute(column_engine.prepare(sql))
            assert normalise(row_result.rows) == normalise(column_result.rows)
            assert row_result.columns == column_result.columns

    def test_explain_reports_plan_and_cache(self, small_db):
        engine = RowEngine(small_db)
        report = engine.explain("select t.name, u.tag from t, u where t.id = u.t_id")
        assert report["plan"]["equi_joins"] == 1
        assert report["plan"]["join_order"] == [0, 1]
        assert report["plan_cache"]["misses"] >= 1
