"""Tests for the compiled-kernel layer and selection-vector execution.

Covers the kernel-compilation subsystem (``engine/compile.py``), the
``compile_expressions`` / ``selection_vectors`` engine options, the
ambiguous-column fix in ``ColFrame.position``, the O(1) subquery-cache
keying, and an 8-way row/column parity sweep over every TPC-H query.
"""

from __future__ import annotations

import itertools

import pytest

from repro.data import populate_tpch
from repro.engine import ColumnEngine, Database, EngineOptions, RowEngine
from repro.engine.compile import CompileFallback, Layout, compile_row_kernel
from repro.engine.planner import ColumnInfo
from repro.engine.vector import ColFrame
from repro.errors import ExecutionError
from repro.sqlparser import ast
from repro.tpch import QUERIES
from tests.conftest import normalise

#: every combination of the kernel engine options.
TOGGLES = list(itertools.product([False, True], repeat=2))

#: every combination of kernel + storage options
#: (compile_expressions, selection_vectors, zone_maps, dictionary_encoding).
STORAGE_TOGGLES = list(itertools.product([False, True], repeat=4))


def _options(compile_expressions: bool, selection_vectors: bool,
             zone_maps: bool = True, dictionary_encoding: bool = True
             ) -> EngineOptions:
    return EngineOptions(compile_expressions=compile_expressions,
                         selection_vectors=selection_vectors,
                         zone_maps=zone_maps,
                         dictionary_encoding=dictionary_encoding)


@pytest.fixture(scope="module")
def parity_db() -> Database:
    """A very small TPC-H instance: the parity sweep runs many configurations
    per query, so the interpreted row engine must stay fast on the join-heavy
    queries (Q19/Q21 walk a cross product).  The odd chunk size forces
    multiple (and partial) storage chunks so zone maps and chunk boundaries
    are genuinely exercised."""
    database = Database("tpch-parity", chunk_rows=53)
    populate_tpch(database, scale_factor=0.0003)
    return database


@pytest.fixture()
def small_db() -> Database:
    database = Database("kernel-unit")
    database.create_table("t", [("id", "int"), ("name", "str"), ("price", "float"),
                                ("day", "date")])
    database.insert_rows("t", [
        (1, "alpha", 10.0, "2020-01-01"),
        (2, "beta", 20.0, "2020-02-01"),
        (3, "gamma", 30.0, "2020-03-01"),
    ])
    database.create_table("u", [("id", "int"), ("t_id", "int"), ("tag", "str")])
    database.insert_rows("u", [(1, 1, "x"), (2, 3, "y")])
    return database


class TestTPCHParity:
    """Row and column engines agree on every TPC-H query under every
    combination of compile_expressions x selection_vectors x zone_maps x
    dictionary_encoding: kernels, the selection-vector pipeline and the
    storage scan features must change performance, never semantics.

    Redundant configurations are deduplicated by the options each engine
    actually consumes (the row engine ignores the column-scan toggles), so
    the sweep covers the full 16-combination matrix without re-running
    identical row-engine configurations."""

    @pytest.mark.parametrize("query_id", sorted(QUERIES))
    def test_all_toggle_combinations_agree(self, query_id, parity_db):
        sql = QUERIES[query_id]
        reference = RowEngine(parity_db, options=_options(False, False)).execute(sql)
        expected = (reference.columns, normalise(reference.rows))
        seen: set[tuple] = set()
        for toggles in STORAGE_TOGGLES:
            options = _options(*toggles)
            for engine in (RowEngine(parity_db, options=options),
                           ColumnEngine(parity_db, options=options)):
                effective = (engine.strategy(), toggles[0]) \
                    if engine.strategy() == "row" else (engine.strategy(), *toggles)
                if effective in seen:
                    continue
                seen.add(effective)
                result = engine.execute(sql)
                label = (f"Q{query_id} {engine.strategy()} compile={toggles[0]} "
                         f"sel={toggles[1]} zones={toggles[2]} dict={toggles[3]}")
                assert result.columns == reference.columns, f"{label}: columns differ"
                assert normalise(result.rows) == expected[1], f"{label}: rows differ"

    @pytest.mark.parametrize("query_id", sorted(QUERIES))
    def test_parallel_matches_serial(self, query_id, parity_db):
        """Morsel-parallel execution (workers=4) is indistinguishable from
        serial execution on every TPC-H query under every storage-toggle
        combination that reaches the selection-vector path.  Non-float values
        must match bit for bit; float aggregates may differ only by the
        re-association of per-worker partial sums (last-ulp territory), so
        they are compared with a tight relative tolerance instead."""
        sql = QUERIES[query_id]
        for compile_expressions, zone_maps, dictionary in \
                itertools.product([False, True], repeat=3):
            results = [
                ColumnEngine(parity_db, options=EngineOptions(
                    compile_expressions=compile_expressions,
                    selection_vectors=True, zone_maps=zone_maps,
                    dictionary_encoding=dictionary,
                    workers=workers)).execute(sql)
                for workers in (1, 4)
            ]
            serial, parallel = results
            label = (f"Q{query_id} compile={compile_expressions} "
                     f"zones={zone_maps} dict={dictionary}")
            assert parallel.columns == serial.columns, f"{label}: columns differ"
            assert len(parallel.rows) == len(serial.rows), f"{label}: row counts differ"
            for row_index, (expected, got) in enumerate(zip(serial.rows, parallel.rows)):
                for value_index, (want, have) in enumerate(zip(expected, got)):
                    where = f"{label}: row {row_index} column {value_index}"
                    if isinstance(want, float) and isinstance(have, float):
                        assert have == pytest.approx(want, rel=1e-9, abs=1e-12), where
                    else:
                        assert have == want, where


class TestAmbiguousColumns:
    def test_colframe_position_raises_on_ambiguity(self):
        import numpy as np

        frame = ColFrame(
            columns=[ColumnInfo("t", "id", "int"), ColumnInfo("u", "id", "int")],
            arrays=[np.array([1]), np.array([2])], length=1)
        with pytest.raises(ExecutionError, match="ambiguous column 'id'"):
            frame.position(ast.ColumnRef(name="id"))
        # qualified references still resolve
        assert frame.position(ast.ColumnRef(name="id", table="u")) == 1

    def test_column_engine_rejects_ambiguous_reference(self, small_db):
        engine = ColumnEngine(small_db)
        with pytest.raises(ExecutionError, match="ambiguous column"):
            engine.execute("select id from t, u where t.id = u.t_id")

    def test_qualified_reference_still_works(self, small_db):
        engine = ColumnEngine(small_db)
        result = engine.execute(
            "select t.id from t, u where t.id = u.t_id order by t.id")
        assert [row[0] for row in result.rows] == [1, 3]


class TestSubqueryCacheKeying:
    @pytest.mark.parametrize("kind", ["row", "column"])
    def test_uncorrelated_subquery_never_reprints_sql(self, kind, small_db, monkeypatch):
        """The per-row cache hit must be an id() lookup, not a to_sql render."""
        import repro.engine.executor_row as executor_row
        import repro.sqlparser.printer as printer

        calls = {"count": 0}
        original = printer.to_sql

        def counting(node):
            calls["count"] += 1
            return original(node)

        monkeypatch.setattr(printer, "to_sql", counting)
        monkeypatch.setattr(executor_row, "to_sql", counting)

        engine = (RowEngine if kind == "row" else ColumnEngine)(small_db)
        plan = engine.prepare(
            "select count(*) from t where id in (select t_id from u)")
        calls["count"] = 0
        result = engine.execute(plan)
        assert result.scalar() == 2
        assert calls["count"] == 0, "execution re-printed subquery SQL"


class TestSelectionVectors:
    def _frames_per_execution(self, engine, sql) -> int:
        plan = engine.prepare(sql)
        engine.execute(plan)  # warm kernels and columnar views
        result = engine.execute(plan)
        return int(result.metrics.get("frame.materialisations"))

    def test_no_intermediate_frame_per_residual_predicate(self, parity_db):
        """With selection vectors, a query with four predicates allocates
        exactly as many ColFrames as one with none: predicates refine the
        selection index instead of materialising masked frames."""
        engine = ColumnEngine(parity_db)
        with_predicates = self._frames_per_execution(engine, QUERIES[6])
        without_predicates = self._frames_per_execution(
            engine, "select sum(l_extendedprice * l_discount) as revenue from lineitem")
        assert with_predicates == without_predicates == 2  # scan + result

    def test_materialising_path_allocates_more(self, parity_db):
        masked = ColumnEngine(parity_db, options=_options(True, False))
        selecting = ColumnEngine(parity_db, options=_options(True, True))
        assert (self._frames_per_execution(masked, QUERIES[6])
                > self._frames_per_execution(selecting, QUERIES[6]))

    def test_join_pipeline_composes_selections(self, parity_db):
        masked = ColumnEngine(parity_db, options=_options(True, False))
        selecting = ColumnEngine(parity_db, options=_options(True, True))
        assert (self._frames_per_execution(selecting, QUERIES[3])
                < self._frames_per_execution(masked, QUERIES[3]))


class TestEmptyAggregates:
    """Regression: Q17's correlated-subquery filter can empty the frame; the
    column engine used to crash combining aggregates over zero groups."""

    @pytest.mark.parametrize("kind", ["row", "column"])
    @pytest.mark.parametrize("toggles", TOGGLES)
    def test_arithmetic_over_empty_aggregate(self, kind, toggles, small_db):
        engine = (RowEngine if kind == "row" else ColumnEngine)(
            small_db, options=_options(*toggles))
        result = engine.execute("select sum(price) / 7.0 as avg_x from t where id > 99")
        assert result.rows == [(None,)]

    @pytest.mark.parametrize("toggles", TOGGLES)
    def test_count_over_empty_input(self, toggles, small_db):
        engine = ColumnEngine(small_db, options=_options(*toggles))
        result = engine.execute("select count(*), sum(price) from t where id > 99")
        assert result.rows == [(0, None)]


class TestKernelCompilation:
    def test_options_describe_includes_new_toggles(self, small_db):
        described = ColumnEngine(small_db).options.describe()
        assert described["compile_expressions"] is True
        assert described["selection_vectors"] is True

    def test_with_version_overrides_toggles(self, small_db):
        base = ColumnEngine(small_db)
        interpreted = base.with_version("interp", compile_expressions=False,
                                        selection_vectors=False)
        assert not interpreted.options.compile_expressions
        assert not interpreted.options.selection_vectors
        assert base.options.compile_expressions

    def test_kernels_cached_on_plan(self, small_db):
        from repro.engine.compile import compile_row_block

        engine = RowEngine(small_db)
        plan = engine.prepare("select name from t where price > 15")
        block = plan.root
        first = plan.kernels(block, ("row",), compile_row_block)
        second = plan.kernels(block, ("row",), compile_row_block)
        assert first is second

    def test_row_kernel_matches_interpreter(self):
        layout = Layout([ColumnInfo("t", "a", "int"), ColumnInfo("t", "b", "float")])
        expression = ast.BinaryOp(
            "*", ast.ColumnRef(name="a"),
            ast.BinaryOp("+", ast.Literal(1, "number"), ast.ColumnRef(name="b")))
        kernel = compile_row_kernel(expression, layout)
        assert kernel((3, 0.5)) == pytest.approx(4.5)
        assert kernel((None, 0.5)) is None  # NULL propagation

    def test_subquery_expressions_fall_back(self):
        layout = Layout([ColumnInfo("t", "a", "int")])
        subquery = ast.ScalarSubquery(ast.Select())
        with pytest.raises(CompileFallback):
            compile_row_kernel(ast.Comparison("=", ast.ColumnRef(name="a"), subquery),
                               layout)

    def test_constant_folding(self):
        kernel = compile_row_kernel(
            ast.BinaryOp("+", ast.Literal(1, "number"), ast.Literal(2, "number")),
            Layout([]))
        assert kernel(()) == 3
