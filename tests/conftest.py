"""Shared fixtures: a tiny TPC-H database, engines, and a measured pool."""

from __future__ import annotations

import pytest

from repro.core import parse_grammar
from repro.core.dsl import FIGURE1_GRAMMAR
from repro.data import populate_tpch
from repro.engine import ColumnEngine, Database, RowEngine
from repro.pool.pool import QueryPool
from repro.sqlparser import extract_grammar
from repro.tpch import QUERIES


@pytest.fixture(scope="session")
def tpch_db() -> Database:
    """A deterministic, tiny TPC-H instance shared by the whole session."""
    database = Database("tpch-test")
    populate_tpch(database, scale_factor=0.001)
    return database


@pytest.fixture(scope="session")
def row_engine(tpch_db) -> RowEngine:
    return RowEngine(tpch_db)


@pytest.fixture(scope="session")
def column_engine(tpch_db) -> ColumnEngine:
    return ColumnEngine(tpch_db)


@pytest.fixture(scope="session")
def engines(row_engine, column_engine):
    return [row_engine, column_engine]


@pytest.fixture()
def figure1_grammar():
    """The grammar of Figure 1 in the paper."""
    return parse_grammar(FIGURE1_GRAMMAR, name="figure1")


@pytest.fixture()
def q1_grammar():
    """The grammar extracted from TPC-H Q1 (the paper's running example)."""
    return extract_grammar(QUERIES[1])


@pytest.fixture()
def q1_pool(q1_grammar) -> QueryPool:
    """A small pool seeded from the Q1 grammar."""
    pool = QueryPool(q1_grammar, seed=13)
    pool.seed_baseline()
    pool.seed_random(4)
    return pool


def normalise(rows, digits: int = 2):
    """Round floats so results from the two engines can be compared."""
    out = []
    for row in rows:
        out.append(tuple(
            round(value, digits) if isinstance(value, float) else value for value in row
        ))
    return out
