"""Tests for the chunked columnar storage subsystem.

Covers chunking and zone maps, dictionary encoding, NULL round-trips and
NULL-semantics parity between the engines (filter, join key and aggregate
positions), statistics-driven scan skipping and predicate ordering, the
drop/recreate cache-invalidation regression, and the extended
``Database.size_summary``.
"""

from __future__ import annotations

import datetime
import itertools

import numpy as np
import pytest

from repro.engine import (
    ColumnEngine,
    Database,
    EngineOptions,
    RowEngine,
)
from repro.engine.storage import DEFAULT_CHUNK_ROWS

#: every combination of the storage + kernel toggles relevant to semantics.
ALL_TOGGLES = list(itertools.product([False, True], repeat=4))


def _options(compile_expressions=True, selection_vectors=True, zone_maps=True,
             dictionary_encoding=True) -> EngineOptions:
    return EngineOptions(compile_expressions=compile_expressions,
                         selection_vectors=selection_vectors,
                         zone_maps=zone_maps,
                         dictionary_encoding=dictionary_encoding)


def _assert_parity(database: Database, sql: str) -> list[tuple]:
    """Both engines agree on ``sql`` under every storage/kernel toggle combo."""
    reference = RowEngine(database, options=_options(False, False)).execute(sql)
    for toggles in ALL_TOGGLES:
        options = _options(*toggles)
        for engine in (RowEngine(database, options=options),
                       ColumnEngine(database, options=options)):
            result = engine.execute(sql)
            label = f"{engine.strategy()} {toggles}"
            assert result.columns == reference.columns, f"{label}: columns differ"
            assert result.rows == reference.rows, f"{label}: rows differ on {sql}"
    return reference.rows


@pytest.fixture()
def nullable_db() -> Database:
    """Small chunks + NULLs in every position the engines must agree on."""
    database = Database("storage-nulls", chunk_rows=4)
    database.create_table("t", [("id", "int"), ("name", "str"), ("price", "float"),
                                ("day", "date")])
    database.insert_rows("t", [
        (1, "alpha", 10.0, "2020-01-01"),
        (2, None, None, None),
        (None, "beta", 30.0, "2020-03-01"),
        (4, "alpha", None, "2020-04-01"),
        (5, None, 50.0, None),
        (6, "gamma", 60.0, "2020-06-01"),
    ])
    database.create_table("u", [("id", "int"), ("t_id", "int"), ("tag", "str")])
    database.insert_rows("u", [(1, 1, "x"), (2, None, "y"), (3, 6, None), (4, 4, "z")])
    return database


class TestChunking:
    def test_rows_sealed_into_chunks(self):
        database = Database("chunks", chunk_rows=10)
        database.create_table("t", [("x", "int")])
        database.insert_rows("t", [(value,) for value in range(25)])
        storage = database.storage("t")
        assert storage.row_count == 25
        storage.flush()
        assert [chunk.row_count for chunk in storage.chunks] == [10, 10, 5]
        assert [chunk.start for chunk in storage.chunks] == [0, 10, 20]

    def test_default_chunk_rows(self):
        database = Database("default-chunks")
        assert database.chunk_rows == DEFAULT_CHUNK_ROWS == 4096

    def test_zone_maps_track_min_max_and_nulls(self):
        database = Database("zones", chunk_rows=3)
        database.create_table("t", [("x", "int")])
        database.insert_rows("t", [(5,), (1,), (9,), (None,), (7,), (None,)])
        zones = database.storage("t").zone_maps("x")
        assert (zones[0].min_value, zones[0].max_value, zones[0].null_count) == (1, 9, 0)
        assert (zones[1].min_value, zones[1].max_value, zones[1].null_count) == (7, 7, 2)

    def test_zone_maps_exact_beyond_float53(self):
        # int bounds must stay exact: a float64 zone map would round 2**53+1
        # down and wrongly refute the chunk.
        database = Database("bigints", chunk_rows=4)
        database.create_table("t", [("x", "int")])
        big = 2**53 + 1
        database.insert_rows("t", [(1,), (2,), (big,), (3,)])
        engine = ColumnEngine(database)
        assert engine.execute(f"select x from t where x > {2**53}").rows == [(big,)]

    def test_row_views_round_trip_values_and_nulls(self, nullable_db):
        rows = nullable_db.rows("t")
        assert rows[0] == (1, "alpha", 10.0, datetime.date(2020, 1, 1))
        assert rows[1] == (2, None, None, None)
        assert rows[2][0] is None

    def test_columnar_views_null_free_columns_keep_native_dtypes(self):
        database = Database("typed", chunk_rows=2)
        database.create_table("t", [("i", "int"), ("f", "float"), ("s", "str"),
                                    ("d", "date")])
        database.insert_rows("t", [(1, 1.5, "a", "2020-01-01"),
                                   (2, 2.5, "b", "2020-01-02"),
                                   (3, 3.5, "c", "2020-01-03")])
        view = database.columnar("t")
        assert view.columns["i"].dtype == np.int64
        assert view.columns["f"].dtype == np.float64
        assert view.columns["s"].dtype == object
        assert view.columns["d"].dtype == np.int64  # day ordinals

    def test_columnar_views_nullable_columns_stay_typed(self, nullable_db):
        from repro.engine.mask import Nullable

        view = nullable_db.columnar("t")
        price = view.columns["price"]
        assert isinstance(price, Nullable)  # typed values + validity mask
        assert price.values.dtype == np.float64
        assert price[1] is None and price[0] == 10.0
        assert view.columns["id"][2] is None
        # nullable strings stay object arrays (string kernels iterate anyway)
        assert view.columns["name"].dtype == object
        assert view.columns["name"][1] is None

    def test_columnar_views_legacy_object_decode(self, nullable_db):
        view = nullable_db.columnar("t", typed_nulls=False)
        assert view.columns["price"].dtype == object
        assert view.columns["price"][1] is None
        assert view.columns["id"][2] is None


class TestDictionaryEncoding:
    def test_string_columns_store_int32_codes(self):
        database = Database("dict", chunk_rows=3)
        database.create_table("t", [("tag", "str")])
        database.insert_rows("t", [("a",), ("b",), ("a",), (None,), ("c",)])
        storage = database.storage("t")
        codes = storage.column_codes("tag")
        assert codes.dtype == np.int32
        assert codes.tolist() == [0, 1, 0, -1, 2]
        assert storage.dictionary("tag").values == ["a", "b", "c"]

    def test_statistics_report_dictionary_size(self):
        database = Database("dict-stats", chunk_rows=4)
        database.create_table("t", [("tag", "str")])
        database.insert_rows("t", [("x",)] * 10 + [("y",)] * 10)
        stats = database.storage("t").statistics()
        assert stats.column("tag").dictionary_size == 2
        assert stats.column("tag").distinct_estimate == 2
        assert stats.compression_ratio > 1.0  # 20 strings -> 2 + int32 codes

    def test_dictionary_scan_parity(self, nullable_db):
        for sql in (
            "select id from t where name = 'alpha' order by id",
            "select id from t where name <> 'alpha' order by id",
            "select id from t where name in ('alpha', 'gamma') order by id",
            "select id from t where name like 'a%' order by id",
            "select id from t where name not like 'a%' order by id",
        ):
            _assert_parity(nullable_db, sql)


class TestNullSemantics:
    """NULLs in filter, join-key and aggregate positions: both engines agree
    under every toggle combination (the old ``_to_array`` coerced None to
    0/NaN/'' and the engines could silently disagree)."""

    def test_null_in_filters(self, nullable_db):
        for sql in (
            "select id from t where price > 15 order by id",
            "select id from t where price <= 50 order by id",
            "select id from t where price is null order by id",
            "select id from t where price is not null order by id",
            "select id from t where day >= date '2020-02-01' order by id",
            "select id from t where price between 20 and 55 order by id",
            "select id from t where price not between 20 and 55 order by id",
            "select id from t where id in (1, 4, 5) order by id",
            "select id from t where id not in (1, 4, 5) order by id",
        ):
            _assert_parity(nullable_db, sql)

    def test_null_in_join_keys(self, nullable_db):
        rows = _assert_parity(
            nullable_db,
            "select t.id, u.id from t, u where t.id = u.t_id order by u.id")
        # a NULL key is never paired with a non-NULL key (both engines share
        # the same hash-match behaviour, which is what parity pins down)
        key_of = {1: 1, 2: None, 3: 6, 4: 4}
        assert all((left is None) == (key_of[right] is None)
                   for left, right in rows)

    def test_null_in_aggregates(self, nullable_db):
        rows = _assert_parity(
            nullable_db,
            "select count(*), count(price), sum(price), avg(price), "
            "min(price), max(price) from t")
        assert rows == [(6, 4, 150.0, 37.5, 10.0, 60.0)]

    def test_null_group_keys_form_their_own_group(self, nullable_db):
        rows = _assert_parity(
            nullable_db,
            "select name, count(*), sum(price) from t group by name order by name")
        assert (None, 2, 50.0) in rows

    def test_all_null_aggregate_is_null(self, nullable_db):
        rows = _assert_parity(
            nullable_db,
            "select sum(price), min(price), count(price) from t where id = 2")
        assert rows == [(None, None, 0)]

    def test_null_propagates_through_expressions(self, nullable_db):
        rows = _assert_parity(
            nullable_db,
            "select id, price * 2 + 1 from t order by id")
        assert (2, None) in rows

    def test_extract_and_concat_propagate_null(self, nullable_db):
        _assert_parity(nullable_db,
                       "select id, extract(year from day) from t order by id")
        _assert_parity(nullable_db, "select id, name || '!' from t order by id")

    def test_scalar_functions_propagate_null(self, nullable_db):
        # abs/round used to crash on object arrays with None; upper/length/
        # substring used to stringify None into 'NONE'/4/'Non'.
        rows = _assert_parity(
            nullable_db,
            "select id, abs(price), round(price, 1), upper(name), length(name), "
            "substring(name from 1 for 2) from t order by id")
        assert rows[1] == (2, None, None, None, None, None)
        _assert_parity(nullable_db,
                       "select id from t where abs(price) > 25 order by id")

    def test_cast_keeps_null_instead_of_nan(self, nullable_db):
        rows = _assert_parity(
            nullable_db, "select id, cast(price as float) from t order by id")
        assert (2, None) in rows  # not (2, nan)

    def test_in_list_with_null_member(self, nullable_db):
        # NULL IN (...) is NULL -> false, even when the list contains NULL;
        # np.isin would otherwise match None by identity.
        rows = _assert_parity(
            nullable_db, "select id from t where id in (1, null) order by id")
        assert rows == [(1,)]
        _assert_parity(nullable_db,
                       "select id from t where id not in (1, null) order by id")

    def test_null_literal_comparisons_match_rows(self, nullable_db):
        # a scalar NULL literal compares UNKNOWN everywhere (negations
        # included); NOT BETWEEN decomposes, so a FALSE conjunct still
        # decides past a NULL bound (id = 6 is provably above the range)
        expected = {
            "select id from t where id <> null order by id": [],
            "select id from t where id = null order by id": [],
            "select id from t where id not between null and 5 order by id": [(6,)],
            "select id from t where null in (1, null) order by id": [],
            "select id from t where null not in (1, null) order by id": [],
        }
        for sql, rows in expected.items():
            assert _assert_parity(nullable_db, sql) == rows, sql

    def test_division_by_zero_faults_in_every_representation(self):
        # the typed null-mask path must fault on a zero divisor at a *valid*
        # slot exactly like the row engine and the object-array baseline --
        # not silently produce inf under the sentinel-sanitising errstate
        from repro.errors import ExecutionError

        database = Database("divzero", chunk_rows=3)
        database.create_table("t", [("f", "float"), ("x", "int")])
        database.insert_rows("t", [(1.5, 0), (None, 2), (3.0, 3)])
        sql = "select count(*) from t where f / x > 0.1"
        for engine in (RowEngine(database), ColumnEngine(database),
                       ColumnEngine(database,
                                    options=EngineOptions(null_masks=False))):
            with pytest.raises(ExecutionError, match="division by zero"):
                engine.execute(sql)

    def test_division_by_null_slot_zero_sentinel_is_null(self, nullable_db):
        # a NULL divisor (stored as a 0 sentinel in the typed layout) must
        # yield NULL, not fault
        rows = _assert_parity(nullable_db,
                              "select id, 10.0 / price from t order by id")
        assert (2, None) in rows

    def test_cast_to_string_matches_row_domain(self, nullable_db):
        # string CASTs take the row-at-a-time path: date columns stringify
        # as ISO dates, not as their int64 day ordinals
        rows = _assert_parity(
            nullable_db,
            "select id, cast(id as varchar), cast(day as varchar) from t "
            "order by id")
        assert (1, "1", "2020-01-01") in rows
        assert (2, "2", None) in rows

    def test_not_over_left_join_padding_is_unknown(self):
        # the padded side of an outer join is NULL: NOT over a comparison
        # against it must stay UNKNOWN (the float padding carries an
        # explicit validity mask, not just an in-band NaN)
        database = Database("padding", chunk_rows=3)
        database.create_table("l", [("id", "int")])
        database.insert_rows("l", [(1,), (2,), (3,), (4,)])
        database.create_table("r", [("lid", "int"), ("v", "float")])
        database.insert_rows("r", [(1, 2.5), (2, 7.0)])
        rows = _assert_parity(
            database,
            "select l.id from l left join r on l.id = r.lid "
            "where not (r.v = 2.5) order by l.id")
        assert rows == [(2,)]
        rows = _assert_parity(
            database,
            "select l.id from l left join r on l.id = r.lid "
            "where not (r.lid = 1) order by l.id")
        assert rows == [(2,)]

    def test_not_between_with_null_bound_column(self):
        database = Database("bounds", chunk_rows=3)
        database.create_table("b", [("id", "int"), ("x", "int"), ("lo", "int"),
                                    ("hi", "int")])
        database.insert_rows("b", [
            (1, 5, 1, 10), (2, 5, None, 10), (3, 5, 1, None), (4, 50, 1, 10),
            (5, None, 1, 10),
        ])
        rows = _assert_parity(
            database, "select id from b where x not between lo and hi order by id")
        assert rows == [(4,)]


class TestScanSkipping:
    @pytest.fixture()
    def null_chunk_db(self) -> Database:
        """Three chunks: values 1..4, an all-NULL chunk, values 9..12."""
        database = Database("null-chunks", chunk_rows=4)
        database.create_table("n", [("x", "int")])
        database.insert_rows(
            "n", [(value,) for value in (1, 2, 3, 4)]
                 + [(None,)] * 4
                 + [(value,) for value in (9, 10, 11, 12)])
        return database

    @pytest.fixture()
    def clustered_db(self) -> Database:
        database = Database("clustered", chunk_rows=100)
        database.create_table("events", [("id", "int"), ("day", "date"),
                                         ("val", "float")])
        start = datetime.date(1994, 1, 1)
        database.insert_rows("events", [
            (index, (start + datetime.timedelta(days=index // 10)).isoformat(),
             float(index % 7))
            for index in range(3000)
        ])
        return database

    def test_zone_maps_skip_refuted_chunks(self, clustered_db):
        engine = ColumnEngine(clustered_db)
        sql = ("select sum(val) from events where day >= date '1994-03-01' "
               "and day < date '1994-04-01'")
        result = engine.execute(sql)
        assert result.metrics.get("scan.chunks_skipped") > 0
        assert (result.metrics.get("scan.chunks_scanned")
                + result.metrics.get("scan.chunks_skipped")
                == len(clustered_db.storage("events").chunks))
        # and skipping never changes the answer
        off = ColumnEngine(clustered_db, options=_options(zone_maps=False))
        assert off.execute(sql).rows == result.rows

    def test_zone_maps_disabled_skip_nothing(self, clustered_db):
        engine = ColumnEngine(clustered_db, options=_options(zone_maps=False))
        result = engine.execute(
            "select sum(val) from events where day < date '1994-02-01'")
        assert result.metrics.get("scan.chunks_skipped") == 0

    def test_all_chunks_refuted_yields_empty_scan(self, clustered_db):
        engine = ColumnEngine(clustered_db)
        result = engine.execute(
            "select count(*) from events where day >= date '2001-01-01'")
        assert result.scalar() == 0
        assert (result.metrics.get("scan.chunks_skipped")
                == len(clustered_db.storage("events").chunks))
        assert result.metrics.get("scan.chunks_scanned") == 0

    def test_all_null_chunk_never_skipped_for_is_null(self, null_chunk_db):
        engine = ColumnEngine(null_chunk_db)
        result = engine.execute("select count(*) from n where x is null")
        assert result.scalar() == 4
        # the value chunks are refuted (no NULLs), the all-NULL chunk is not
        assert result.metrics.get("scan.chunks_skipped") == 2
        assert result.metrics.get("scan.chunks_scanned") == 1

    def test_all_null_chunk_skipped_for_equality(self, null_chunk_db):
        engine = ColumnEngine(null_chunk_db)
        result = engine.execute("select x from n where x = 10")
        assert result.rows == [(10,)]
        # both the all-NULL chunk (UNKNOWN everywhere) and the 1..4 chunk
        # are refuted; only the 9..12 chunk is read
        assert result.metrics.get("scan.chunks_skipped") == 2

    def test_not_predicate_skips_all_null_chunk(self, null_chunk_db):
        # NOT (x = 10) is UNKNOWN on every row of the all-NULL chunk, so the
        # complement rewrite may skip it -- and only it
        engine = ColumnEngine(null_chunk_db)
        sql = "select count(*) from n where not (x = 10)"
        result = engine.execute(sql)
        assert result.scalar() == 7
        assert result.metrics.get("scan.chunks_skipped") == 1
        off = ColumnEngine(null_chunk_db, options=_options(zone_maps=False))
        assert off.execute(sql).rows == result.rows

    def test_is_not_null_skips_only_all_null_chunk(self, null_chunk_db):
        engine = ColumnEngine(null_chunk_db)
        result = engine.execute("select count(*) from n where x is not null")
        assert result.scalar() == 8
        assert result.metrics.get("scan.chunks_skipped") == 1

    def test_not_range_never_mis_refutes_mixed_null_chunk(self):
        # regression: a chunk holding [None, 3, 7, None] satisfies
        # NOT (x < 5) at x = 7; the rewrite (x >= 5) must keep the chunk
        database = Database("mixed-nulls", chunk_rows=4)
        database.create_table("m", [("x", "int")])
        database.insert_rows("m", [(None,), (3,), (7,), (None,)])
        engine = ColumnEngine(database)
        result = engine.execute("select x from m where not (x < 5)")
        assert result.rows == [(7,)]
        assert result.metrics.get("scan.chunks_skipped") == 0

    def test_planner_orders_pushdown_by_selectivity(self, clustered_db):
        # textual order: wide range first, tight equality last -- the planner
        # must flip them so the most selective predicate refines first.
        engine = ColumnEngine(clustered_db)
        plan = engine.prepare(
            "select count(*) from events where day >= date '1994-01-01' and id = 17")
        predicates = plan.root.pushdown["events"]
        from repro.sqlparser.printer import to_sql

        assert to_sql(predicates[0]) == "id = 17"


class TestDropRecreate:
    """insert -> query -> drop -> recreate -> query must not see stale arrays."""

    @pytest.mark.parametrize("kind", ["row", "column"])
    def test_recreate_invalidates_cached_views(self, kind):
        database = Database("recreate", chunk_rows=8)
        database.create_table("t", [("x", "int"), ("tag", "str")])
        database.insert_rows("t", [(1, "old"), (2, "old")])
        engine = (RowEngine if kind == "row" else ColumnEngine)(database)
        sql = "select count(*), sum(x) from t"
        assert engine.execute(sql).rows == [(2, 3)]

        database.drop_table("t")
        database.create_table("t", [("x", "int"), ("tag", "str")])
        database.insert_rows("t", [(10, "new"), (20, "new"), (30, "new")])
        assert engine.execute(sql).rows == [(3, 60)]
        assert engine.execute("select count(*) from t where tag = 'new'").rows \
            == [(3,)]

    def test_drop_clears_storage_and_statistics(self):
        database = Database("drop")
        database.create_table("t", [("x", "int")])
        database.insert_rows("t", [(1,)])
        assert database.catalog.table_statistics("t").row_count == 1
        database.drop_table("t")
        assert "t" not in database
        assert database.catalog.table_statistics("t") is None


class TestSizeSummary:
    def test_summary_reports_bytes_and_compression(self, nullable_db):
        summary = nullable_db.size_summary()
        entry = summary["t"]
        assert entry["rows"] == 6
        assert entry["chunks"] == 2
        assert entry["encoded_bytes"] > 0
        assert entry["raw_bytes"] > 0
        assert entry["compression_ratio"] == pytest.approx(
            entry["raw_bytes"] / entry["encoded_bytes"], rel=1e-3)

    def test_demo_summary_mentions_storage(self):
        from repro.workflow import run_demo_scenario

        summary = run_demo_scenario(scale_factor=0.0003, pool_size=4, repeats=1,
                                    seed=3)
        text = summary.describe()
        assert "storage" in text
        assert "compression" in text
