"""Tests for the query pool, guidance and the alter/expand/prune morphing walk."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pool import Guidance, Morpher, QueryPool, Strategy
from repro.pool.morph import STRATEGY_COLORS
from repro.sqlparser import extract_grammar, parse_select


class TestPoolBasics:
    def test_seed_baseline_uses_every_class(self, q1_pool):
        baseline = q1_pool.entries()[0]
        assert baseline.origin == "seed"
        assert baseline.query.size() == max(t.size() for t in q1_pool.templates)

    def test_duplicates_rejected(self, q1_pool):
        baseline = q1_pool.entries()[0]
        assert q1_pool.add(baseline.query) is None

    def test_random_seeding_respects_guidance_exclude(self, q1_grammar):
        pool = QueryPool(q1_grammar, seed=3)
        guidance = Guidance(exclude_terms={"l_returnflag"})
        entries = pool.seed_random(5, guidance=guidance)
        assert all(not entry.query.uses("l_returnflag") for entry in entries)

    def test_record_and_best_time(self, q1_pool):
        entry = q1_pool.entries()[0]
        q1_pool.record(entry, "sysA", 0.5, repeats=[0.6, 0.5])
        q1_pool.record(entry, "sysA", 0.4)
        assert entry.best_time("sysA") == pytest.approx(0.4)
        assert q1_pool.unmeasured("sysA") == q1_pool.entries()[1:]

    def test_errors_tracked(self, q1_pool):
        entry = q1_pool.entries()[1]
        q1_pool.record(entry, "sysA", 0.0, error="boom")
        assert entry.has_error("sysA")
        assert entry in q1_pool.errors()
        assert entry.best_time("sysA") is None

    def test_discriminative_ranking(self, q1_pool):
        entries = q1_pool.entries()
        for index, entry in enumerate(entries):
            q1_pool.record(entry, "A", 1.0)
            q1_pool.record(entry, "B", 1.0 if index else 10.0)
        ranked = q1_pool.discriminative("A", "B", top=3)
        assert ranked[0][0] is entries[0]
        assert abs(ranked[0][1]) > abs(ranked[-1][1])

    def test_generated_pool_queries_parse(self, q1_pool):
        for entry in q1_pool.entries():
            parse_select(entry.sql)


class TestGuidance:
    def test_include_terms(self):
        guidance = Guidance(include_terms={"a"})
        assert guidance.describe()["include_terms"] == ["a"]
        assert Guidance.from_dict(guidance.describe()).include_terms == {"a"}

    def test_strategy_restriction(self):
        guidance = Guidance(strategies={"prune"})
        assert guidance.allows_strategy("prune")
        assert not guidance.allows_strategy("alter")

    def test_merge(self):
        merged = Guidance(include_terms={"a"}).merged_with(Guidance(exclude_terms={"b"}))
        assert merged.include_terms == {"a"} and merged.exclude_terms == {"b"}


class TestMorphing:
    def test_alter_changes_exactly_one_literal(self, q1_pool):
        morpher = Morpher(q1_pool, seed=5)
        action = None
        for _ in range(50):
            action = morpher.step(Strategy.ALTER)
            if action is not None:
                break
        assert action is not None
        assert action.child.query.template.signature == action.parent.query.template.signature
        parent_assignment = action.parent.query.assignment
        child_assignment = action.child.query.assignment
        assert len(parent_assignment) == len(child_assignment)
        changed = sum(1 for before, after in zip(parent_assignment, child_assignment)
                      if before.key != after.key)
        assert changed == 1

    def test_expand_increases_component_count(self, q1_grammar):
        pool = QueryPool(q1_grammar, seed=11)
        pool.seed_random(3)
        morpher = Morpher(pool, seed=11)
        action = None
        for _ in range(80):
            action = morpher.step(Strategy.EXPAND)
            if action is not None:
                break
        if action is None:
            pytest.skip("random pool already at maximum size")
        assert action.child.query.size() > action.parent.query.size()

    def test_prune_decreases_component_count(self, q1_pool):
        morpher = Morpher(q1_pool, seed=17)
        action = None
        for _ in range(80):
            action = morpher.step(Strategy.PRUNE)
            if action is not None:
                break
        assert action is not None
        assert action.child.query.size() < action.parent.query.size()

    def test_grow_to_reaches_target(self, q1_pool):
        Morpher(q1_pool, seed=3).grow_to(15)
        assert len(q1_pool) >= 15

    def test_morph_children_recorded_with_parent(self, q1_pool):
        morpher = Morpher(q1_pool, seed=23)
        actions = morpher.run(30)
        assert actions, "expected at least one successful morph"
        for action in actions:
            assert action.child.parent_key == action.parent.key
            assert action.child.origin in Strategy.names()

    def test_strategy_colors_match_paper(self):
        assert STRATEGY_COLORS[Strategy.ALTER] == "purple"
        assert STRATEGY_COLORS[Strategy.EXPAND] == "green"
        assert STRATEGY_COLORS[Strategy.PRUNE] == "blue"

    def test_guidance_blocks_excluded_terms(self, q1_grammar):
        pool = QueryPool(q1_grammar, seed=29)
        pool.seed_baseline()
        guidance = Guidance(exclude_terms=set(pool.entries()[0].query.terms))
        morpher = Morpher(pool, guidance=guidance, seed=29)
        # the baseline uses every term, so pruning keeps a subset of excluded
        # terms and every candidate must be rejected.
        assert morpher.run(20, Strategy.PRUNE) == []

    def test_guidance_strategy_restriction_respected(self, q1_pool):
        guidance = Guidance(strategies={"alter"})
        morpher = Morpher(q1_pool, guidance=guidance, seed=31)
        actions = morpher.run(30)
        assert all(action.strategy is Strategy.ALTER for action in actions)


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 25))
@settings(max_examples=15, deadline=None)
def test_pool_never_contains_duplicates(seed, steps):
    """Property: morphing never introduces duplicate queries (by canonical key)."""
    grammar = extract_grammar("select a, b, c from t where a = 1 and b = 2 order by a")
    pool = QueryPool(grammar, seed=seed)
    pool.seed_baseline()
    pool.seed_random(3)
    Morpher(pool, seed=seed).run(steps)
    keys = [entry.key for entry in pool.entries()]
    assert len(keys) == len(set(keys))
