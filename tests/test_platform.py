"""Tests for the platform: store, access control, queue, results, web API."""

import pytest

from repro.errors import AccessDenied, ConflictError, NotFound, ValidationError
from repro.platform import PlatformServer, PlatformService, Store, Visibility
from repro.tpch import QUERIES


@pytest.fixture()
def service() -> PlatformService:
    return PlatformService(Store(":memory:"))


@pytest.fixture()
def populated(service):
    """Service with an owner, a contributor, an outsider and one experiment."""
    owner = service.register_user("owner", "owner@example.org")
    contributor = service.register_user("contrib", "contrib@example.org")
    outsider = service.register_user("outsider", "outsider@example.org")
    dbms = service.register_dbms("columnstore", "1.0", dialect="columnstore")
    host = service.register_host("laptop", cpu="x86", memory_gb=8, os="linux")
    project = service.create_project(owner, "tpch", synopsis="demo",
                                     visibility=Visibility.PRIVATE)
    service.invite_contributor(owner, project, contributor)
    experiment = service.add_experiment(owner, project, "q6", QUERIES[6],
                                        dbms=dbms, host=host, repeats=2,
                                        timeout_seconds=30)
    return service, owner, contributor, outsider, project, experiment


class TestUsersAndCatalogs:
    def test_register_user_generates_key(self, service):
        user = service.register_user("alice", "alice@example.org")
        assert user.id is not None and len(user.contributor_key) == 32

    def test_duplicate_nickname_rejected(self, service):
        service.register_user("bob", "bob@example.org")
        with pytest.raises(ConflictError):
            service.register_user("bob", "other@example.org")

    def test_invalid_email_rejected(self, service):
        with pytest.raises(ValidationError):
            service.register_user("carol", "not-an-email")

    def test_public_view_hides_email(self, service):
        service.register_user("dave", "dave@example.org")
        views = service.list_users()
        assert views and all("email" not in view for view in views)

    def test_authenticate_by_key(self, service):
        user = service.register_user("erin", "erin@example.org")
        assert service.authenticate(user.contributor_key).id == user.id
        with pytest.raises(AccessDenied):
            service.authenticate("bogus")

    def test_catalogs(self, service):
        service.register_dbms("rowstore", "1.0")
        service.register_host("pi", cpu="arm", memory_gb=1)
        assert service.dbms_catalog()[0].label() == "rowstore-1.0"
        assert service.host_catalog()[0].name == "pi"


class TestAccessControl:
    def test_private_project_hidden_from_outsiders(self, populated):
        service, owner, contributor, outsider, project, _ = populated
        assert project in service.list_projects(owner)
        assert project in service.list_projects(contributor)
        assert project not in service.list_projects(outsider)
        assert project not in service.list_projects(None)

    def test_private_project_read_denied(self, populated):
        service, _, _, outsider, project, _ = populated
        with pytest.raises(AccessDenied):
            service.get_project(project.id, outsider)

    def test_public_project_readable_by_anyone(self, populated):
        service, owner, _, outsider, project, _ = populated
        service.set_visibility(owner, project, Visibility.PUBLIC)
        assert service.get_project(project.id, outsider).name == "tpch"

    def test_only_owner_may_invite(self, populated):
        service, _, contributor, outsider, project, _ = populated
        with pytest.raises(AccessDenied):
            service.invite_contributor(contributor, project, outsider)

    def test_only_owner_may_add_experiment(self, populated):
        service, _, contributor, _, project, _ = populated
        with pytest.raises(AccessDenied):
            service.add_experiment(contributor, project, "rogue", QUERIES[6])

    def test_only_members_get_tasks(self, populated):
        service, owner, _, outsider, _, experiment = populated
        pool = service.build_pool(experiment)
        pool.seed_baseline()
        service.enqueue_pool(owner, experiment, pool, "columnstore-1.0", "laptop")
        with pytest.raises(AccessDenied):
            service.next_task(outsider, experiment)

    def test_comments_require_read_access(self, populated):
        service, owner, _, outsider, project, _ = populated
        comment = service.add_comment(owner, project, "nice spread")
        assert comment.id is not None
        with pytest.raises(AccessDenied):
            service.add_comment(outsider, project, "let me in")

    def test_invalid_grammar_rejected(self, populated):
        service, owner, _, _, project, _ = populated
        with pytest.raises(ValidationError):
            service.add_experiment(owner, project, "broken", QUERIES[6],
                                   grammar_text="query:\n    ${missing}\n")


class TestQueueAndResults:
    def _queue(self, populated):
        service, owner, contributor, _, _, experiment = populated
        pool = service.build_pool(experiment)
        pool.seed_baseline()
        pool.seed_random(2)
        tasks = service.enqueue_pool(owner, experiment, pool, "columnstore-1.0", "laptop")
        return service, owner, contributor, experiment, tasks

    def test_enqueue_creates_one_task_per_entry(self, populated):
        service, owner, contributor, experiment, tasks = self._queue(populated)
        assert len(tasks) >= 1
        assert service.queue_status(experiment)["pending"] == len(tasks)

    def test_enqueue_is_idempotent(self, populated):
        service, owner, contributor, experiment, tasks = self._queue(populated)
        pool = service.build_pool(experiment)
        pool.seed_baseline()
        again = service.enqueue_pool(owner, experiment, pool, "columnstore-1.0", "laptop")
        assert again == []

    def test_task_assignment_and_result_submission(self, populated):
        service, owner, contributor, experiment, tasks = self._queue(populated)
        task = service.next_task(contributor, experiment)
        assert task.status == "running"
        result = service.submit_result(contributor, task, times=[0.1, 0.09],
                                       load_averages={"before": {"load1": 0.5}},
                                       extras={"rows": 1})
        assert result.best == pytest.approx(0.09)
        assert service.queue_status(experiment)["done"] == 1

    def test_failed_result_requeues_until_budget_then_dead_letters(self, populated):
        service, owner, contributor, experiment, tasks = self._queue(populated)
        task = service.next_task(contributor, experiment)
        # an error burns the lease but the task returns to the pending pool
        # while it still has retry budget (max_attempts defaults to 3).
        service.submit_result(contributor, task, times=[], error="syntax error")
        assert task.status == "pending" and task.attempts == 1
        assert task.last_error == "syntax error"
        # burn the remaining budget: same task, two more failing leases.
        for attempt in (2, 3):
            claimed = service.next_tasks(contributor, experiment, limit=len(tasks))
            failing = next(entry for entry in claimed if entry.id == task.id)
            assert failing.attempts == attempt
            service.submit_result(contributor, failing, times=[], error="syntax error")
        assert failing.status == "failed"
        assert service.queue_status(experiment)["failed"] == 1
        assert service.metrics.counter("tasks.retried").value == 2
        assert service.metrics.counter("tasks.dead_lettered").value == 1
        # dead-lettered means terminal: the task is never handed out again.
        again = service.next_tasks(contributor, experiment, limit=len(tasks) + 1)
        assert task.id not in {entry.id for entry in again}

    def test_empty_success_rejected(self, populated):
        service, owner, contributor, experiment, tasks = self._queue(populated)
        task = service.next_task(contributor, experiment)
        with pytest.raises(ValidationError):
            service.submit_result(contributor, task, times=[])

    def test_kill_task_owner_only(self, populated):
        service, owner, contributor, experiment, tasks = self._queue(populated)
        task = service.next_task(contributor, experiment)
        with pytest.raises(AccessDenied):
            service.kill_task(contributor, task)
        assert service.kill_task(owner, task).status == "killed"

    def test_stuck_tasks_expire(self, populated):
        service, owner, contributor, experiment, tasks = self._queue(populated)
        task = service.next_task(contributor, experiment)
        task.assigned_at -= 10_000  # pretend it started hours ago
        service.store.update("tasks", task)
        expired = service.expire_stuck_tasks(experiment)
        assert [entry.id for entry in expired] == [task.id]
        # an expired lease with budget left goes back to the pending pool
        # with its assignment cleared, ready to be claimed again.
        swept = service.store.task(task.id)
        assert swept.status == "pending"
        assert swept.assigned_to is None and swept.assigned_at is None
        assert service.metrics.counter("tasks.retried").value == 1

    def test_expired_lease_without_budget_dead_letters(self, populated):
        service, owner, contributor, experiment, tasks = self._queue(populated)
        task = service.next_task(contributor, experiment)
        task.assigned_at -= 10_000
        task.attempts = task.max_attempts  # budget already spent
        service.store.update("tasks", task)
        service.expire_stuck_tasks(experiment)
        dead = service.store.task(task.id)
        assert dead.status == "failed"
        assert "lease expired" in (dead.last_error or "")
        assert service.metrics.counter("tasks.dead_lettered").value == 1

    def test_claiming_sweeps_overdue_leases(self, populated):
        """A fresh claim may hand out a task whose previous lease expired."""
        service, owner, contributor, experiment, tasks = self._queue(populated)
        claimed = service.next_tasks(contributor, experiment, limit=len(tasks))
        assert len(claimed) == len(tasks)  # queue fully leased out
        stuck = claimed[0]
        stuck.assigned_at -= 10_000
        service.store.update("tasks", stuck)
        # no explicit expiry call: next_tasks runs the sweep itself.
        reclaimed = service.next_tasks(contributor, experiment, limit=len(tasks))
        assert [entry.id for entry in reclaimed] == [stuck.id]
        assert reclaimed[0].attempts == 2

    def test_late_result_for_reclaimed_lease_is_dropped(self, populated):
        """Attempt fencing: a slow worker cannot overwrite a re-leased task."""
        service, owner, contributor, experiment, tasks = self._queue(populated)
        first = service.next_task(contributor, experiment)
        stale_attempt = first.attempts
        first.assigned_at -= 10_000
        service.store.update("tasks", first)
        service.expire_stuck_tasks(experiment)
        reclaimed = service.next_tasks(contributor, experiment, limit=len(tasks))
        assert first.id in {entry.id for entry in reclaimed}
        # the slow first worker finally reports, echoing its old attempt.
        late = service.submit_result(contributor, service.store.task(first.id),
                                     times=[0.5], attempt=stale_attempt)
        assert late is None  # acknowledged but dropped
        assert service.store.task(first.id).status == "running"  # lease intact
        assert service.metrics.counter("results.stale").value == 1

    def test_idempotent_resubmission_replays_original(self, populated):
        service, owner, contributor, experiment, tasks = self._queue(populated)
        task = service.next_task(contributor, experiment)
        key = "deadbeef" * 4
        first = service.submit_result(contributor, task, times=[0.2, 0.1],
                                      idempotency_key=key, attempt=task.attempts)
        again = service.submit_result(contributor, task, times=[9.9],
                                      idempotency_key=key, attempt=task.attempts)
        assert again.id == first.id and again.times == [0.2, 0.1]
        assert len(service.store.results(experiment.id)) == 1
        assert service.metrics.counter("results.deduplicated").value == 1

    def test_max_attempts_must_be_positive(self, populated):
        service, owner, _, _, project, _ = populated
        with pytest.raises(ValidationError):
            service.add_experiment(owner, project, "bad", QUERIES[6],
                                   max_attempts=0)

    def test_hidden_results_only_visible_to_members(self, populated):
        service, owner, contributor, experiment, tasks = self._queue(populated)
        task = service.next_task(contributor, experiment)
        result = service.submit_result(contributor, task, times=[0.2])
        service.set_result_hidden(owner, result, True)
        assert service.results(experiment, viewer=contributor) == []
        visible = service.results(experiment, viewer=owner, include_hidden=True)
        assert len(visible) == 1

    def test_csv_export(self, populated):
        service, owner, contributor, experiment, tasks = self._queue(populated)
        task = service.next_task(contributor, experiment)
        service.submit_result(contributor, task, times=[0.3])
        csv_text = service.export_results_csv(experiment, viewer=owner)
        assert "best_seconds" in csv_text.splitlines()[0]
        assert len(csv_text.splitlines()) == 2

    def test_grow_pool_uses_guidance(self, populated):
        service, owner, contributor, outsider, project, experiment = populated
        pool = service.build_pool(experiment, seed=5)
        pool.seed_baseline()
        grown = service.grow_pool(experiment, pool, steps=20, seed=5)
        assert len(pool) == 1 + grown


class TestStore:
    def test_update_requires_existing_entity(self, service):
        user = service.register_user("zoe", "zoe@example.org")
        user.nickname = "zoe2"
        service.store.update("users", user)
        assert service.store.user(user.id).nickname == "zoe2"

    def test_missing_entity_raises(self, service):
        with pytest.raises(NotFound):
            service.store.user(999)

    def test_delete(self, service):
        user = service.register_user("tmp", "tmp@example.org")
        service.store.delete("users", user.id)
        with pytest.raises(NotFound):
            service.store.user(user.id)

    def test_persistence_to_disk(self, tmp_path):
        path = str(tmp_path / "platform.db")
        first = PlatformService(Store(path))
        owner = first.register_user("owner", "o@example.org")
        first.create_project(owner, "persisted")
        first.store.close()
        second = PlatformService(Store(path))
        assert [project.name for project in second.store.projects()] == ["persisted"]


class TestWebAPI:
    def test_http_round_trip(self, populated):
        service, owner, contributor, _, project, experiment = populated
        pool = service.build_pool(experiment)
        pool.seed_baseline()
        service.enqueue_pool(owner, experiment, pool, "columnstore-1.0", "laptop")

        from repro.driver import HTTPClient

        with PlatformServer(service) as server:
            client = HTTPClient(server.url, contributor.contributor_key)
            assert client.ping()["status"] == "ok"
            task = client.next_task(experiment.id)
            assert task is not None
            submitted = client.submit_result(task["id"], times=[0.05, 0.04], error=None,
                                             load_averages={}, extras={"rows": 1})
            assert submitted["times"] == [0.05, 0.04]
            results = client.results(experiment.id)
            assert len(results) == 1
            assert client.next_task(experiment.id) is None

    def test_http_access_denied_for_bad_key(self, populated):
        service, owner, contributor, _, project, experiment = populated
        from repro.driver import HTTPClient
        from repro.errors import TransportError

        with PlatformServer(service) as server:
            client = HTTPClient(server.url, "wrong-key")
            with pytest.raises(TransportError):
                client.next_task(experiment.id)

    @pytest.mark.parametrize("body", [b"{not json", b"\xff\xfe garbage", b'["a list"]'])
    def test_http_malformed_body_is_a_400(self, populated, body):
        """A broken request body is the client's fault (400), never a 500."""
        import urllib.error
        import urllib.request

        service, _, contributor, _, _, experiment = populated
        with PlatformServer(service) as server:
            request = urllib.request.Request(
                f"{server.url}/api/task", data=body, method="POST")
            request.add_header("Content-Type", "application/json")
            request.add_header("X-Sqalpel-Key", contributor.contributor_key)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400


class TestIndexedLookups:
    def test_user_lookups_round_trip(self, service):
        users = [service.register_user(f"user{i}", f"user{i}@example.org")
                 for i in range(10)]
        probe = users[7]
        assert service.store.user_by_key(probe.contributor_key).id == probe.id
        assert service.store.user_by_nickname("user3").id == users[3].id
        assert service.store.user_by_key("no-such-key") is None
        assert service.store.user_by_nickname("nobody") is None

    def test_lookup_sees_updates(self, service):
        user = service.register_user("old-name", "u@example.org")
        user.nickname = "new-name"
        service.store.update("users", user)
        assert service.store.user_by_nickname("old-name") is None
        assert service.store.user_by_nickname("new-name").id == user.id

    def test_lookup_uses_the_expression_index(self, service):
        """The query plan must hit the json_extract index, not scan the table."""
        plan = service.store._connection.execute(
            "EXPLAIN QUERY PLAN SELECT id, body FROM users "
            "WHERE json_extract(body, '$.contributor_key') = ?", ("x",)
        ).fetchall()
        detail = " ".join(str(row) for row in plan)
        assert "users_by_contributor_key" in detail
