"""Tests for the observability layer: traces, metrics, EXPLAIN (ANALYZE).

Covers the span-tree primitives, per-query metrics contexts (including their
independence across concurrent executions), the metrics registry behind the
platform's ``/api/metrics`` endpoint, EXPLAIN / EXPLAIN ANALYZE through both
engines, phase timings around the plan cache, the driver's profile extras
and the analytics profile report built from them.
"""

from __future__ import annotations

import json
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analytics import profile_report
from repro.engine import ColumnEngine, Database, EngineOptions, RowEngine
from repro.obs import (
    Counter,
    Histogram,
    MetricsContext,
    MetricsRegistry,
    NULL_SPAN,
    QueryTrace,
    count,
    current_metrics,
    format_trace,
)
from repro.tpch import QUERIES
from repro.workflow import build_tpch_database


@pytest.fixture(scope="module")
def tpch_db() -> Database:
    return build_tpch_database(scale_factor=0.001)


@pytest.fixture()
def clustered_db() -> Database:
    """Values clustered by chunk, so zone maps can refute whole chunks."""
    database = Database("clustered", chunk_rows=10)
    database.create_table("t", [("x", "int"), ("tag", "str")])
    database.insert_rows("t", [(value, f"tag{value % 3}") for value in range(30)])
    return database


# ---------------------------------------------------------------------------
# trace primitives
# ---------------------------------------------------------------------------


class TestQueryTrace:
    def test_spans_nest_and_close(self):
        trace = QueryTrace(sql="select 1", engine="test")
        with trace.span("execute"):
            with trace.span("scan", source="t") as scan:
                scan.set(rows_in=10, rows_out=4)
        trace.finish()
        execute = trace.find("execute")
        scan = trace.find("scan")
        assert execute is not None and scan in execute.children
        assert scan.rows_in == 10 and scan.rows_out == 4
        assert scan.attributes["source"] == "t"
        assert scan.started >= execute.started
        assert scan.ended is not None and scan.ended <= execute.ended
        assert trace.root.ended is not None

    def test_find_all_and_walk_are_preorder(self):
        trace = QueryTrace()
        with trace.span("execute"):
            with trace.span("scan"):
                pass
            with trace.span("scan"):
                pass
        trace.finish()
        assert [span.name for span in trace.spans()] == \
            ["query", "execute", "scan", "scan"]
        assert len(trace.find_all("scan")) == 2

    def test_to_dict_round_trips_through_json(self):
        trace = QueryTrace(sql="select 1", engine="e")
        with trace.span("execute", detail="x"):
            pass
        payload = json.loads(json.dumps(trace.finish().to_dict()))
        assert payload["engine"] == "e"
        assert payload["root"]["children"][0]["attributes"] == {"detail": "x"}

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span.set(rows_in=1, rows_out=2, anything="goes") is span

    def test_format_trace_draws_the_tree(self):
        trace = QueryTrace(sql="select *\n  from t", engine="row")
        with trace.span("execute"):
            with trace.span("scan", source="t") as scan:
                scan.set(rows_out=3)
        lines = format_trace(trace.finish())
        assert lines[0] == "row: select * from t"  # header flattens the SQL
        assert lines[1].startswith("query (")
        assert any("└─ scan" in line and "[source=t]" in line for line in lines)


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetricsContext:
    def test_counts_only_inside_active_context(self):
        context = MetricsContext()
        count("orphan")  # no active context: dropped, not an error
        with context.activate():
            count("scan.chunks_scanned", 3)
            count("scan.chunks_scanned")
        count("scan.chunks_scanned")  # deactivated again
        assert context.get("scan.chunks_scanned") == 4
        assert context.snapshot() == {"scan.chunks_scanned": 4}
        assert current_metrics() is None

    def test_scan_efficiency(self):
        context = MetricsContext()
        with context.activate():
            count("scan.chunks_scanned", 1)
            count("scan.chunks_skipped", 3)
        assert context.scan_efficiency() == 0.75
        assert MetricsContext().scan_efficiency() is None

    def test_concurrent_executions_keep_independent_contexts(self, clustered_db):
        engine = ColumnEngine(clustered_db)
        queries = ["select count(*) from t where x > 25",
                   "select count(*) from t where x >= 0"]

        def run(sql):
            return engine.execute(sql)

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(run, queries * 8))
        for index, result in enumerate(results):
            scanned = result.metrics.get("scan.chunks_scanned")
            skipped = result.metrics.get("scan.chunks_skipped")
            # each context saw exactly one table scan, never a neighbour's
            assert scanned + skipped == 3, f"query {index} leaked metrics"
            if index % 2 == 0:
                assert skipped == 2  # x > 25 refutes chunks [0,10) and [10,20)


class TestMetricsRegistry:
    def test_counter_and_histogram(self):
        registry = MetricsRegistry()
        registry.counter("tasks.enqueued").inc(3)
        registry.counter("tasks.enqueued").inc()
        for value in (0.2, 0.4, 0.6):
            registry.histogram("results.best_seconds").observe(value)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["tasks.enqueued"] == 4
        summary = snapshot["histograms"]["results.best_seconds"]
        assert summary["count"] == 3
        assert summary["min"] == 0.2 and summary["max"] == 0.6
        assert summary["mean"] == pytest.approx(0.4)

    def test_primitives(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        histogram = Histogram("h")
        assert histogram.summary() == {"count": 0, "sum": 0.0, "min": None,
                                       "max": None, "mean": None,
                                       "p50": None, "p95": None, "p99": None}
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["p50"] == 51.0
        assert summary["p95"] == 96.0
        assert summary["p99"] == 100.0


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------


class TestEngineTracing:
    @pytest.mark.parametrize("engine_cls", [RowEngine, ColumnEngine])
    def test_q6_trace_has_operator_spans(self, tpch_db, engine_cls):
        engine = engine_cls(tpch_db)
        result = engine.execute(QUERIES[6], trace=True)
        trace = result.trace
        assert trace is not None and trace.engine == engine.label
        assert trace.root.rows_out == len(result.rows) == 1
        assert trace.find("execute") is not None
        scan = trace.find("scan")
        assert scan is not None and scan.attributes["source"] == "lineitem"
        assert trace.find("aggregate") is not None

    def test_untraced_execution_has_no_trace(self, tpch_db):
        result = ColumnEngine(tpch_db).execute(QUERIES[6])
        assert result.trace is None
        assert result.metrics is not None  # metrics are always on

    def test_scan_span_matches_zone_map_gate(self, clustered_db):
        engine = ColumnEngine(clustered_db)
        result = engine.execute("select count(*) from t where x > 25", trace=True)
        scan = result.trace.find("scan")
        scanned = scan.attributes["chunks_scanned"]
        skipped = scan.attributes["chunks_skipped"]
        assert skipped == 2 and scanned == 1
        # the span numbers are the zone-map gate numbers, not a parallel count
        assert scanned == result.metrics.get("scan.chunks_scanned")
        assert skipped == result.metrics.get("scan.chunks_skipped")
        assert result.metrics.scan_efficiency() == pytest.approx(2 / 3)

    def test_row_engine_scan_span_covers_all_chunks(self, clustered_db):
        engine = RowEngine(clustered_db)
        result = engine.execute("select count(*) from t where x > 25", trace=True)
        scan = result.trace.find("scan")
        assert scan.attributes["chunks_scanned"] == 3
        assert scan.attributes["chunks_skipped"] == 0


class TestPhases:
    def test_plan_cache_hit_skips_planning_work(self, clustered_db):
        engine = ColumnEngine(clustered_db)
        sql = "select count(*) from t where x > 5"
        cold = engine.execute(sql)
        warm = engine.execute(sql)
        assert set(cold.phases) == {"planning", "compile", "execute"}
        assert cold.phases["planning"] > 0
        assert not cold.profile()["plan_cache_hit"]
        assert warm.profile()["plan_cache_hit"]
        # a cache hit pays only the lookup -- no parse/plan, no compile
        assert warm.phases["planning"] < cold.phases["planning"]
        assert warm.phases["compile"] == 0.0

    def test_prepared_plan_counts_as_cached(self, clustered_db):
        engine = ColumnEngine(clustered_db)
        plan = engine.prepare("select count(*) from t")
        result = engine.execute(plan)
        assert result.profile()["plan_cache_hit"]

    def test_profile_shape(self, clustered_db):
        engine = ColumnEngine(clustered_db)
        profile = engine.execute("select count(*) from t where x > 25").profile()
        assert profile["engine"] == engine.label
        assert profile["rows"] == 1
        assert profile["counters"]["scan.chunks_skipped"] == 2
        assert profile["scan_efficiency"] == pytest.approx(2 / 3)


class TestExplain:
    @pytest.mark.parametrize("engine_cls", [RowEngine, ColumnEngine])
    def test_explain_renders_plan_without_executing(self, tpch_db, engine_cls):
        engine = engine_cls(tpch_db)
        result = engine.execute("explain " + QUERIES[6])
        assert result.columns == ["plan"]
        text = "\n".join(line for (line,) in result.rows)
        assert "Aggregate" in text and "Scan lineitem" in text
        assert "pushdown" in text

    @pytest.mark.parametrize("engine_cls", [RowEngine, ColumnEngine])
    def test_explain_analyze_renders_span_tree(self, tpch_db, engine_cls):
        engine = engine_cls(tpch_db)
        result = engine.execute("EXPLAIN ANALYZE " + QUERIES[6])
        assert result.columns == ["plan"]
        assert result.trace is not None
        text = "\n".join(line for (line,) in result.rows)
        assert "execute" in text and "scan" in text
        assert "chunks_scanned=" in text
        assert "planning:" in text and "execute:" in text
        assert "metrics:" in text

    def test_explain_analyze_footer_reports_cache_hit(self, tpch_db):
        engine = ColumnEngine(tpch_db)
        engine.execute(QUERIES[6])
        result = engine.execute("explain analyze " + QUERIES[6])
        text = "\n".join(line for (line,) in result.rows)
        assert "plan cache hit" in text

    def test_explain_dict_carries_plan_tree(self, tpch_db):
        engine = ColumnEngine(tpch_db)
        description = engine.explain(QUERIES[6])
        assert any("Scan lineitem" in line for line in description["plan_tree"])


# ---------------------------------------------------------------------------
# platform + driver + analytics surfaces
# ---------------------------------------------------------------------------


class TestPlatformMetrics:
    def _service_with_results(self):
        from repro.platform import PlatformService

        service = PlatformService()
        owner = service.register_user("owner", "owner@example.org")
        contributor = service.register_user("contrib", "contrib@example.org")
        dbms = service.register_dbms("columnstore", "1.0")
        host = service.register_host("laptop", cpu="x86", memory_gb=8, os="linux")
        project = service.create_project(owner, "tpch", synopsis="demo")
        service.invite_contributor(owner, project, contributor)
        experiment = service.add_experiment(owner, project, "q6", QUERIES[6],
                                            dbms=dbms, host=host, repeats=2,
                                            timeout_seconds=30)
        pool = service.build_pool(experiment)
        pool.seed_baseline()
        service.enqueue_pool(owner, experiment, pool, "columnstore-1.0", "laptop")
        return service, contributor, experiment

    def test_service_counts_queue_and_result_traffic(self):
        service, contributor, experiment = self._service_with_results()
        task = service.next_task(contributor, experiment)
        service.submit_result(contributor, task, times=[0.05, 0.04])
        snapshot = service.metrics.snapshot()
        assert snapshot["counters"]["tasks.enqueued"] == 1
        assert snapshot["counters"]["tasks.dispatched"] == 1
        assert snapshot["counters"]["results.accepted"] == 1
        best = snapshot["histograms"]["results.best_seconds"]
        assert best["count"] == 1 and best["min"] == pytest.approx(0.04)

    def test_metrics_endpoint(self):
        from repro.platform import PlatformServer

        service, contributor, experiment = self._service_with_results()
        with PlatformServer(service) as server:
            with urllib.request.urlopen(server.url + "/api/metrics") as response:
                payload = json.loads(response.read().decode("utf-8"))
        assert payload["counters"]["tasks.enqueued"] == 1


class TestDriverProfiles:
    def test_measure_query_attaches_profile(self, clustered_db):
        from repro.driver.runner import measure_query

        engine = ColumnEngine(clustered_db)
        outcome = measure_query(engine, "select count(*) from t where x > 25",
                                repeats=2)
        profile = outcome.extras["profile"]
        assert profile["engine"] == engine.label
        assert profile["counters"]["scan.chunks_skipped"] == 2
        assert profile["plan_cache_hit"]  # repetitions run the prepared plan

    def test_failed_query_has_no_profile(self, clustered_db):
        from repro.driver.runner import measure_query

        outcome = measure_query(ColumnEngine(clustered_db),
                                "select nope from t", repeats=1)
        assert outcome.failed
        assert "profile" not in outcome.extras


class TestProfileReport:
    def test_aggregates_profiles_per_system(self):
        records = [
            {"dbms_label": "columnstore-1.0", "extras": {"profile": {
                "engine": "columnstore-1.0", "rows": 1,
                "phases": {"planning": 0.001, "execute": 0.002},
                "counters": {"scan.chunks_scanned": 1, "scan.chunks_skipped": 3,
                             "frame.materialisations": 2},
                "plan_cache_hit": True}}},
            {"dbms_label": "columnstore-1.0", "extras": {"profile": {
                "engine": "columnstore-1.0", "rows": 1,
                "phases": {"planning": 0.0, "execute": 0.004},
                "counters": {"scan.chunks_scanned": 3, "scan.chunks_skipped": 1},
                "plan_cache_hit": False}}},
            {"dbms_label": "rowstore-1.0", "extras": {}},  # no profile submitted
        ]
        report = profile_report(records)
        column = report.engines["columnstore-1.0"]
        assert column.queries == 2 and column.profiled == 2
        assert column.scan_efficiency == pytest.approx(0.5)
        assert column.plan_cache_hit_rate == pytest.approx(0.5)
        assert column.phase_seconds["execute"] == pytest.approx(0.006)
        row = report.engines["rowstore-1.0"]
        assert row.queries == 1 and row.profiled == 0
        assert row.scan_efficiency is None and row.plan_cache_hit_rate is None
        assert "columnstore-1.0" in report.describe()
        assert any("scan_efficiency=50.0%" in line for line in report.lines())

    def test_accepts_result_record_objects(self, clustered_db):
        from repro.driver.runner import measure_query

        engine = ColumnEngine(clustered_db)
        outcome = measure_query(engine, "select count(*) from t where x > 25")

        class Record:
            dbms_label = engine.label
            extras = outcome.extras

        report = profile_report([Record()])
        assert report.engines[engine.label].scan_efficiency == pytest.approx(2 / 3)


class TestCLIExplain:
    def test_explain_tpch_prints_plan_and_cache_stats(self, capsys):
        from repro.cli.main import main

        assert main(["explain", "--tpch", "6", "--engine", "column"]) == 0
        out = capsys.readouterr().out
        assert "Scan lineitem" in out
        assert "plan cache:" in out

    def test_explain_analyze_prints_span_tree(self, capsys):
        from repro.cli.main import main

        assert main(["explain", "--tpch", "6", "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "scan" in out and "chunks_scanned=" in out

    def test_explain_without_input_fails(self, capsys):
        from repro.cli.main import main

        assert main(["explain"]) == 2
