"""Chaos tests: the platform's exactly-once accounting under injected faults.

The tentpole scenario runs a small fleet of ``BatchRunner`` workers against a
platform whose transport, engine and store all misbehave on purpose (seeded
:class:`FaultInjector`), then audits the books: every task must end ``done``
(with exactly one successful result) or dead-lettered after exhausting its
retry budget, and no submission may ever be recorded twice.

Knobs (environment):

* ``CHAOS_SEED``  -- base seed for all injectors (default 1234),
* ``CHAOS_TASKS`` -- queue size of the chaos experiment (default 12).

A run writes ``CHAOS_summary.json`` (into ``BENCH_ARTIFACT_DIR`` or the
current directory) with the fault counts and the final accounting, so CI
keeps the evidence of what the run survived.
"""

import json
import os
import threading
import time
from pathlib import Path

from repro.driver import BatchRunner, DriverConfig, HTTPClient, InProcessClient
from repro.engine import ColumnEngine, Database
from repro.obs import MetricsRegistry
from repro.platform import (
    FaultConfig,
    FaultInjector,
    FlakyEngine,
    PlatformServer,
    PlatformService,
    Store,
    TaskStatus,
    UnreliableClient,
)
from repro.platform.models import Task

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1234"))
CHAOS_TASKS = int(os.environ.get("CHAOS_TASKS", "12"))

TERMINAL = {TaskStatus.DONE.value, TaskStatus.FAILED.value, TaskStatus.KILLED.value}


def _tiny_database(name: str) -> Database:
    database = Database(name)
    database.create_table("t", [("id", "int"), ("price", "float")])
    database.insert_rows("t", [(1, 10.0), (2, 20.0), (3, 30.0)])
    return database


def _platform(store: Store, n_tasks: int, n_workers: int,
              lease_seconds: float, max_attempts: int = 3):
    """A service with ``n_tasks`` hand-queued tasks and ``n_workers`` members."""
    service = PlatformService(store)
    owner = service.register_user("owner", "owner@example.org")
    workers = [service.register_user(f"worker{i}", f"worker{i}@example.org")
               for i in range(n_workers)]
    dbms = service.register_dbms("columnstore", "1.0")
    service.register_host("laptop")
    project = service.create_project(owner, "chaos")
    for worker in workers:
        service.invite_contributor(owner, project, worker)
    experiment = service.add_experiment(
        owner, project, "chaos", "select sum(price) from t where id > 0",
        dbms=dbms, repeats=1, timeout_seconds=lease_seconds,
        max_attempts=max_attempts)
    # hand-crafted tasks (not a grown pool) so the queue size is exact.
    for i in range(n_tasks):
        store.insert("tasks", Task(
            experiment_id=experiment.id,
            query_sql=f"select sum(price) from t where id > {i % 3}",
            query_key=f"chaos-{i}",
            dbms_label="columnstore-1.0",
            host_name="laptop",
            timeout_seconds=lease_seconds,
            max_attempts=max_attempts,
        ))
    return service, owner, workers, experiment


# ---------------------------------------------------------------------------
# concurrent claiming partitions the queue
# ---------------------------------------------------------------------------


class TestConcurrentClaiming:
    def test_threads_partition_the_queue(self, tmp_path):
        """N racing claimers: every task leased exactly once, none lost."""
        store = Store(str(tmp_path / "claims.db"))
        service, _owner, workers, experiment = _platform(
            store, n_tasks=20, n_workers=4, lease_seconds=60.0)
        barrier = threading.Barrier(len(workers))
        claims: dict[str, list[int]] = {}

        def claim(worker):
            barrier.wait()
            got = []
            while True:
                batch = service.next_tasks(worker, experiment, limit=3)
                if not batch:
                    break
                got.extend(task.id for task in batch)
            claims[worker.nickname] = got

        threads = [threading.Thread(target=claim, args=(worker,))
                   for worker in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        all_claims = [task_id for got in claims.values() for task_id in got]
        assert len(all_claims) == 20  # none lost
        assert len(set(all_claims)) == 20  # none double-assigned
        leased = service.store.tasks(experiment.id)
        assert all(task.status == TaskStatus.RUNNING.value for task in leased)
        store.close()

    def test_http_claims_partition_through_threaded_server(self, tmp_path):
        """Same partition property end-to-end over the threading WSGI server."""
        store = Store(str(tmp_path / "http-claims.db"))
        service, _owner, workers, experiment = _platform(
            store, n_tasks=12, n_workers=3, lease_seconds=60.0)
        claims: dict[str, list[int]] = {}
        barrier = threading.Barrier(len(workers))

        with PlatformServer(service) as server:
            def claim(worker):
                client = HTTPClient(server.url, worker.contributor_key)
                barrier.wait()
                got = []
                while True:
                    batch = client.next_tasks(experiment.id, count=2)
                    if not batch:
                        break
                    got.extend(task["id"] for task in batch)
                claims[worker.nickname] = got

            threads = [threading.Thread(target=claim, args=(worker,))
                       for worker in workers]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        all_claims = [task_id for got in claims.values() for task_id in got]
        assert len(all_claims) == 12 and len(set(all_claims)) == 12
        store.close()


# ---------------------------------------------------------------------------
# the chaos run
# ---------------------------------------------------------------------------


class TestChaosAccounting:
    def test_fleet_survives_faults_with_exact_accounting(self, tmp_path):
        n_workers = 4
        max_attempts = 3
        lease = 0.25
        store = Store(str(tmp_path / "chaos.db"))
        service, _owner, workers, experiment = _platform(
            store, n_tasks=CHAOS_TASKS, n_workers=n_workers,
            lease_seconds=lease, max_attempts=max_attempts)

        # the store itself crashes mid-transaction now and then.
        store_faults = FaultInjector(FaultConfig(store_crash=0.03),
                                     seed=CHAOS_SEED)
        store.fault_hook = store_faults.store_hook

        transport_config = FaultConfig(drop_request=0.10, drop_response=0.10,
                                       duplicate=0.15, delay=0.15,
                                       max_delay_seconds=0.005, fail_task=0.15)
        client_metrics = MetricsRegistry()
        injectors, runners = [], []
        for i, worker in enumerate(workers):
            injector = FaultInjector(transport_config, seed=CHAOS_SEED + 1 + i)
            injectors.append(injector)
            client = UnreliableClient(
                InProcessClient(service, worker.contributor_key), injector)
            engine = FlakyEngine(ColumnEngine(_tiny_database(f"chaos-{i}")),
                                 injector)
            config = DriverConfig(key=worker.contributor_key,
                                  dbms="columnstore-1.0", host="laptop",
                                  repeats=1, batch_size=3,
                                  retries=6, retry_delay=0.001)
            runners.append(BatchRunner(client=client, engine=engine,
                                       config=config, metrics=client_metrics))

        crashes: list[BaseException] = []

        def drive(runner):
            try:
                runner.run_all(experiment.id)
            except BaseException as exc:  # noqa: BLE001 - audited below
                crashes.append(exc)

        rounds = 0
        for rounds in range(1, 41):
            statuses = [task.status for task in store.tasks(experiment.id)]
            if all(status in TERMINAL for status in statuses):
                break
            threads = [threading.Thread(target=drive, args=(runner,))
                       for runner in runners]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # let in-flight leases (lost responses, slow workers) lapse, then
            # heal the queue exactly as a claim would.
            if any(task.status == TaskStatus.RUNNING.value
                   for task in store.tasks(experiment.id)):
                time.sleep(lease + 0.05)
            service.expire_stuck_tasks(experiment)

        assert not crashes, f"worker threads must absorb faults: {crashes!r}"

        # -- the audit ---------------------------------------------------------
        tasks = store.tasks(experiment.id)
        records = store.results(experiment.id)
        assert all(task.status in TERMINAL for task in tasks), \
            f"queue did not settle in {rounds} rounds: " \
            f"{[(task.id, task.status) for task in tasks]}"

        successes_by_task: dict[int, int] = {}
        for record in records:
            if record.error is None:
                successes_by_task[record.task_id] = \
                    successes_by_task.get(record.task_id, 0) + 1

        done = [task for task in tasks if task.status == TaskStatus.DONE.value]
        dead = [task for task in tasks if task.status == TaskStatus.FAILED.value]
        assert len(done) + len(dead) == CHAOS_TASKS
        # exactly-once: each completed task has exactly one successful record.
        for task in done:
            assert successes_by_task.get(task.id, 0) == 1, \
                f"task {task.id} completed {successes_by_task.get(task.id, 0)} times"
        # dead-lettered tasks burned their whole budget and never succeeded.
        for task in dead:
            assert task.attempts == max_attempts
            assert task.last_error is not None
            assert task.id not in successes_by_task
        # no submission was recorded twice: keys are unique and every stored
        # record is covered by exactly one remembered key.
        keys = [record.idempotency_key for record in records]
        assert all(keys) and len(set(keys)) == len(keys)
        assert store.idempotency_size() == len(records)
        # the run must actually have been chaotic.
        injected = sum(injector.total() for injector in injectors)
        assert injected > 0

        # deterministic replay probe: resubmitting a stored record's key
        # yields the original record, not a new row.
        probe = records[0]
        worker = next(w for w in workers
                      if w.contributor_key == probe.contributor_key)
        before = service.metrics.counter("results.deduplicated").value
        replared = service.submit_result(
            worker, store.task(probe.task_id), times=[99.9],
            idempotency_key=probe.idempotency_key, attempt=None)
        assert replared.id == probe.id
        assert service.metrics.counter("results.deduplicated").value == before + 1
        assert len(store.results(experiment.id)) == len(records)

        summary = {
            "seed": CHAOS_SEED,
            "tasks": CHAOS_TASKS,
            "workers": n_workers,
            "rounds": rounds,
            "done": len(done),
            "dead_lettered": len(dead),
            "results_recorded": len(records),
            "faults_injected": {
                "transport": {kind: sum(injector.counts[kind]
                                        for injector in injectors)
                              for kind in injectors[0].counts},
                "store_crashes": store_faults.counts["store_crash"],
            },
            "platform_metrics": {
                name: value
                for name, value in service.metrics.snapshot()["counters"].items()
                if name.startswith(("tasks.", "results.", "queue."))
            },
            "client_metrics": client_metrics.snapshot()["counters"],
        }
        target = Path(os.environ.get("BENCH_ARTIFACT_DIR", ".")) / "CHAOS_summary.json"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(summary, indent=2))
        store.close()
