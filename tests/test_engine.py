"""Tests for the relational engine substrate (catalog, storage, both executors)."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ColumnEngine, Database, EngineOptions, RowEngine, create_engine
from repro.errors import CatalogError, EngineError, ExecutionError, SQLSyntaxError
from repro.tpch import QUERIES
from tests.conftest import normalise


@pytest.fixture()
def small_db() -> Database:
    database = Database("unit")
    database.create_table("t", [("id", "int"), ("name", "str"), ("price", "float"),
                                ("day", "date")])
    database.insert_rows("t", [
        (1, "alpha", 10.0, "2020-01-01"),
        (2, "beta", 20.0, "2020-02-01"),
        (3, "gamma", 30.0, "2020-03-01"),
        (4, "alpha", 40.0, "2020-04-01"),
    ])
    database.create_table("u", [("id", "int"), ("t_id", "int"), ("tag", "str")])
    database.insert_rows("u", [(1, 1, "x"), (2, 1, "y"), (3, 3, "z")])
    return database


@pytest.fixture(params=["row", "column"])
def engine(request, small_db):
    return create_engine(request.param, small_db)


class TestCatalogAndStorage:
    def test_create_and_row_count(self, small_db):
        assert small_db.row_count("t") == 4
        assert set(small_db.table_names()) == {"t", "u"}

    def test_duplicate_table_rejected(self, small_db):
        with pytest.raises(CatalogError):
            small_db.create_table("t", [("x", "int")])

    def test_unknown_table_rejected(self, small_db):
        with pytest.raises(CatalogError):
            small_db.rows("missing")

    def test_bad_type_rejected(self, small_db):
        with pytest.raises(CatalogError):
            small_db.create_table("bad", [("x", "uuid")])

    def test_wrong_arity_rejected(self, small_db):
        with pytest.raises(ExecutionError):
            small_db.insert_rows("u", [(1, 2)])

    def test_values_coerced_to_declared_types(self, small_db):
        row = small_db.rows("t")[0]
        assert isinstance(row[3], datetime.date)

    def test_columnar_view_cached_and_typed(self, small_db):
        view = small_db.columnar("t")
        assert view.length == 4
        assert view.columns["price"].dtype.kind == "f"
        assert small_db.columnar("t") is view

    def test_unknown_engine_kind_rejected(self, small_db):
        with pytest.raises(EngineError):
            create_engine("graph", small_db)


class TestBasicQueries:
    def test_projection_and_filter(self, engine):
        result = engine.execute("select name, price from t where price > 15 order by price")
        assert result.columns == ["name", "price"]
        assert [row[0] for row in result.rows] == ["beta", "gamma", "alpha"]

    def test_star_projection(self, engine):
        result = engine.execute("select * from t where id = 2")
        assert len(result.rows) == 1 and len(result.rows[0]) == 4

    def test_arithmetic_and_alias(self, engine):
        result = engine.execute("select price * 2 as doubled from t where id = 1")
        assert result.scalar() == pytest.approx(20.0)

    def test_aggregates(self, engine):
        result = engine.execute(
            "select count(*), sum(price), avg(price), min(price), max(price) from t")
        assert normalise(result.rows) == [(4, 100.0, 25.0, 10.0, 40.0)]

    def test_group_by_and_having(self, engine):
        result = engine.execute(
            "select name, count(*) as n, sum(price) as total from t "
            "group by name having count(*) > 1 order by name")
        assert normalise(result.rows) == [("alpha", 2, 50.0)]

    def test_count_distinct(self, engine):
        result = engine.execute("select count(distinct name) from t")
        assert result.scalar() == 3

    def test_join(self, engine):
        result = engine.execute(
            "select t.name, u.tag from t, u where t.id = u.t_id order by tag")
        assert result.rows == [("alpha", "x"), ("alpha", "y"), ("gamma", "z")]

    def test_left_join_keeps_unmatched(self, engine):
        result = engine.execute(
            "select t.id, count(u.id) as tags from t left join u on t.id = u.t_id "
            "group by t.id order by t.id")
        assert result.rows == [(1, 2), (2, 0), (3, 1), (4, 0)]

    def test_date_comparison_and_interval(self, engine):
        result = engine.execute(
            "select count(*) from t where day >= date '2020-01-01' + interval '1' month")
        assert result.scalar() == 3

    def test_between_like_in(self, engine):
        result = engine.execute(
            "select count(*) from t where price between 10 and 30 "
            "and name like '%a%' and id in (1, 2, 3, 4)")
        assert result.scalar() == 3

    def test_case_expression(self, engine):
        result = engine.execute(
            "select sum(case when name = 'alpha' then 1 else 0 end) from t")
        assert result.scalar() == 2

    def test_distinct(self, engine):
        result = engine.execute("select distinct name from t order by name")
        assert [row[0] for row in result.rows] == ["alpha", "beta", "gamma"]

    def test_limit_offset(self, engine):
        result = engine.execute("select id from t order by id limit 2 offset 1")
        assert [row[0] for row in result.rows] == [2, 3]

    def test_scalar_subquery(self, engine):
        result = engine.execute(
            "select count(*) from t where price > (select avg(price) from t)")
        assert result.scalar() == 2

    def test_in_subquery(self, engine):
        result = engine.execute(
            "select count(*) from t where id in (select t_id from u)")
        assert result.scalar() == 2

    def test_exists_correlated(self, engine):
        result = engine.execute(
            "select count(*) from t where exists (select * from u where u.t_id = t.id)")
        assert result.scalar() == 2

    def test_derived_table(self, engine):
        result = engine.execute(
            "select max(total) from (select name, sum(price) as total from t group by name) s")
        assert result.scalar() == pytest.approx(50.0)

    def test_empty_aggregate_returns_one_row(self, engine):
        result = engine.execute("select count(*), sum(price) from t where id > 100")
        assert result.rows[0][0] == 0
        assert result.rows[0][1] is None

    def test_syntax_error_propagates(self, engine):
        with pytest.raises(SQLSyntaxError):
            engine.execute("selectt 1")

    def test_explain_reports_strategy(self, engine):
        plan = engine.explain("select count(*) from t")
        assert plan["strategy"] in ("row", "column")
        assert plan["aggregated"] is True

    def test_result_helpers(self, engine):
        result = engine.execute("select id, name from t order by id")
        assert result.column("name")[0] == "alpha"
        assert result.as_dicts()[0] == {"id": 1, "name": "alpha"}
        assert len(result) == 4


class TestEngineVersions:
    def test_with_version_overrides_options(self, small_db):
        base = ColumnEngine(small_db)
        guarded = base.with_version("1.1-guarded", overflow_guard=True)
        assert guarded.options.overflow_guard and not base.options.overflow_guard
        assert guarded.label == "columnstore-1.1-guarded"

    def test_pushdown_off_gives_same_results(self, small_db):
        plain = RowEngine(small_db)
        no_pushdown = RowEngine(small_db, version="nopd",
                                options=EngineOptions(predicate_pushdown=False))
        sql = "select name, sum(price) from t where price > 5 group by name order by name"
        assert plain.execute(sql).rows == no_pushdown.execute(sql).rows

    def test_overflow_guard_gives_same_results(self, small_db):
        plain = ColumnEngine(small_db)
        guarded = ColumnEngine(small_db, version="guard",
                               options=EngineOptions(overflow_guard=True))
        sql = "select sum(price * (1 - 0.1) * (1 + 0.2)) from t"
        assert normalise(plain.execute(sql).rows) == normalise(guarded.execute(sql).rows)


class TestEnginesAgreeOnTPCH:
    """Both engines must produce identical results: the discriminative signal
    has to come from performance, never from semantics."""

    TPCH_SUBSET = [1, 3, 5, 6, 10, 12, 13, 14, 16]

    @pytest.mark.parametrize("query_id", TPCH_SUBSET)
    def test_row_and_column_agree(self, query_id, row_engine, column_engine):
        row_result = row_engine.execute(QUERIES[query_id])
        column_result = column_engine.execute(QUERIES[query_id])
        assert normalise(row_result.rows) == normalise(column_result.rows)

    def test_q1_aggregates_nonempty(self, column_engine):
        result = column_engine.execute(QUERIES[1])
        assert len(result.rows) >= 3
        assert all(row[2] > 0 for row in result.rows)  # sum_qty positive


@given(st.lists(st.tuples(st.integers(-100, 100), st.floats(0, 1000)), min_size=1,
                max_size=40))
@settings(max_examples=20, deadline=None)
def test_engines_agree_on_random_data(rows):
    """Property: on random data both engines compute the same aggregate."""
    database = Database("prop")
    database.create_table("v", [("k", "int"), ("x", "float")])
    database.insert_rows("v", [(k, round(x, 3)) for k, x in rows])
    sql = "select count(*), sum(x), min(k), max(k) from v where k >= 0"
    row_result = RowEngine(database).execute(sql)
    column_result = ColumnEngine(database).execute(sql)
    assert normalise(row_result.rows, 3) == normalise(column_result.rows, 3)
