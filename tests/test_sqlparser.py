"""Tests for the SQL lexer, parser, printer and the query-to-grammar extractor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import space_report, validate
from repro.errors import SQLSyntaxError
from repro.sqlparser import ast, extract_grammar, parse_select, to_sql, tokenize
from repro.sqlparser.extract import ExtractionOptions
from repro.sqlparser.lexer import TokenKind
from repro.tpch import QUERIES, query_ids


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT foo FROM bar")
        kinds = [token.kind for token in tokens[:-1]]
        assert kinds == [TokenKind.KEYWORD, TokenKind.IDENTIFIER,
                         TokenKind.KEYWORD, TokenKind.IDENTIFIER]

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("select 'O''Brien'")
        assert tokens[1].value == "O'Brien"

    def test_numbers(self):
        tokens = tokenize("select 1, 2.5, 3e2")
        values = [token.value for token in tokens if token.kind is TokenKind.NUMBER]
        assert values == ["1", "2.5", "3e2"]

    def test_comments_are_skipped(self):
        tokens = tokenize("select 1 -- trailing\n/* block */ , 2")
        numbers = [token for token in tokens if token.kind is TokenKind.NUMBER]
        assert len(numbers) == 2

    def test_unterminated_string_rejected(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select 'oops")

    def test_unexpected_character_rejected(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select @foo")


class TestParser:
    def test_simple_select(self):
        select = parse_select("select a, b from t where a > 1 order by b desc limit 5")
        assert len(select.items) == 2
        assert isinstance(select.where, ast.Comparison)
        assert select.order_by[0].descending
        assert select.limit == 5

    def test_aggregates_and_group_by(self):
        select = parse_select("select x, sum(y) as total from t group by x having sum(y) > 3")
        assert select.has_aggregates()
        assert len(select.group_by) == 1
        assert select.having is not None

    def test_between_like_in(self):
        select = parse_select(
            "select * from t where a between 1 and 2 and b like 'x%' and c in (1, 2, 3)")
        kinds = {type(term) for term in ast.conjuncts(select.where)}
        assert kinds == {ast.Between, ast.Like, ast.InList}

    def test_not_variants(self):
        select = parse_select(
            "select * from t where a not like 'x%' and b not in (1) and c is not null")
        like, inlist, isnull = ast.conjuncts(select.where)
        assert like.negated and inlist.negated and isnull.negated

    def test_exists_and_in_subquery(self):
        select = parse_select(
            "select * from t where exists (select * from u where u.id = t.id) "
            "and t.k in (select k from v)")
        exists, insub = ast.conjuncts(select.where)
        assert isinstance(exists, ast.Exists)
        assert isinstance(insub, ast.InSubquery)

    def test_case_expression(self):
        select = parse_select(
            "select case when a = 1 then 'one' when a = 2 then 'two' else 'many' end from t")
        case = select.items[0].expression
        assert isinstance(case, ast.CaseWhen)
        assert len(case.branches) == 2 and case.default is not None

    def test_date_and_interval_arithmetic(self):
        select = parse_select(
            "select * from t where d >= date '1994-01-01' + interval '3' month")
        comparison = select.where
        assert isinstance(comparison.right, ast.BinaryOp)
        assert isinstance(comparison.right.right, ast.IntervalLiteral)
        assert comparison.right.right.unit == "month"

    def test_joins(self):
        select = parse_select(
            "select * from a left outer join b on a.x = b.x, c")
        assert isinstance(select.from_items[0], ast.Join)
        assert select.from_items[0].kind == "left"
        assert isinstance(select.from_items[1], ast.TableRef)

    def test_derived_table(self):
        select = parse_select("select s from (select a as s from t) sub")
        sub = select.from_items[0]
        assert isinstance(sub, ast.SubqueryRef)
        assert sub.alias == "sub"

    def test_qualified_columns_and_aliases(self):
        select = parse_select("select n1.n_name supplier, n2.n_name as customer "
                              "from nation n1, nation n2")
        assert select.items[0].alias == "supplier"
        assert select.items[1].expression.table == "n2"

    def test_extract_substring_cast(self):
        select = parse_select("select extract(year from d), substring(p from 1 for 2), "
                              "cast(x as int) from t")
        types = [type(item.expression) for item in select.items]
        assert types == [ast.Extract, ast.Substring, ast.Cast]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("select 1 from t extra garbage )")

    def test_missing_expression_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("select from t")

    @pytest.mark.parametrize("query_id", query_ids())
    def test_all_tpch_queries_parse(self, query_id):
        select = parse_select(QUERIES[query_id])
        assert select.items

    @pytest.mark.parametrize("query_id", query_ids())
    def test_printer_round_trip_is_stable(self, query_id):
        rendered = to_sql(parse_select(QUERIES[query_id]))
        assert to_sql(parse_select(rendered)) == rendered


class TestAnalysisHelpers:
    def test_conjuncts_flattens_nested_and(self):
        select = parse_select("select * from t where a = 1 and (b = 2 and c = 3)")
        assert len(ast.conjuncts(select.where)) == 3

    def test_column_refs_skip_subqueries(self):
        select = parse_select("select * from t where a in (select b from u)")
        refs = ast.column_refs(select.where)
        assert [ref.name for ref in refs] == ["a"]

    def test_has_local_aggregate_ignores_subquery_aggregates(self):
        select = parse_select(
            "select a from t where a > (select max(b) from u)")
        assert not select.has_aggregates()


class TestExtractor:
    def test_q1_grammar_is_valid(self, q1_grammar):
        assert validate(q1_grammar).ok

    def test_projection_literals_match_select_items(self, q1_grammar):
        literals = q1_grammar["l_project"].alternatives
        assert len(literals) == 10  # Q1 has ten projection elements

    def test_where_conjuncts_become_filters(self):
        grammar = extract_grammar("select a from t where a = 1 and b = 2 and c = 3")
        assert len(grammar["l_filter"].alternatives) == 3

    def test_or_conjunct_split_into_disjuncts(self):
        grammar = extract_grammar("select a from t where x = 1 and (a = 1 or b = 2)")
        assert "or2_l" in grammar.rules

    def test_group_and_order_terms_optional(self, q1_grammar):
        assert "groupby" in q1_grammar.rules
        assert "orderby" in q1_grammar.rules
        query_text = q1_grammar["query"].alternatives[0].text()
        assert "$[groupby]" in query_text and "$[orderby]" in query_text

    def test_derived_table_descended(self):
        grammar = extract_grammar(QUERIES[7])
        assert any(rule.name.startswith("d1_") for rule in grammar)

    def test_derived_table_kept_opaque_when_disabled(self):
        grammar = extract_grammar(QUERIES[7], ExtractionOptions(descend_derived=False))
        assert not any(rule.name.startswith("d1_") for rule in grammar)

    def test_split_tables_option(self):
        grammar = extract_grammar("select a from t1, t2, t3 where t1.x = t2.x",
                                  ExtractionOptions(split_tables=True))
        assert len(grammar["l_table"].alternatives) == 3

    @pytest.mark.parametrize("query_id", query_ids())
    def test_all_tpch_grammars_validate(self, query_id):
        grammar = extract_grammar(QUERIES[query_id])
        assert validate(grammar).ok

    def test_generated_queries_parse(self, q1_grammar):
        from repro.core import QueryRenderer, enumerate_templates

        renderer = QueryRenderer(q1_grammar)
        templates = enumerate_templates(q1_grammar, limit=50)
        for template in list(templates)[:20]:
            query = renderer.render(template)
            parse_select(query.sql)

    def test_space_of_simple_query(self):
        grammar = extract_grammar("select a, b, c from t where a = 1")
        report = space_report(grammar)
        # projections: non-empty subsets of 3 = 7; filter optional = x2
        assert report.space == 14


@given(columns=st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4,
                        unique=True),
       filters=st.integers(min_value=0, max_value=3))
@settings(max_examples=25, deadline=None)
def test_extractor_space_matches_closed_form(columns, filters):
    """Property: projections and AND-filters produce the expected space size."""
    where = ""
    if filters:
        where = " where " + " and ".join(f"x{i} = {i}" for i in range(filters))
    sql = f"select {', '.join(columns)} from t{where}"
    report = space_report(extract_grammar(sql))
    projections = 2 ** len(columns) - 1
    filter_space = 2 ** filters  # every subset of conjuncts, including none
    assert report.space == projections * filter_space
