"""Tests for the morsel-parallel execution subsystem.

Covers the shared worker pool (``engine/parallel.py``), morsel range
partitioning, serial-vs-parallel result parity on edge cases the fuzzer is
unlikely to hit (NULL group keys, empty inputs, distinct aggregates, HAVING
after the partial-state merge), worker trace lanes, the thread-safety of the
identity memos under concurrent execution, and the driver-side timing
fidelity flagging (``extras["concurrent_workers"]``).
"""

from __future__ import annotations

import random
import threading

import numpy as np
import pytest

from repro.analytics.profiles import profile_report
from repro.driver import BatchRunner, DriverConfig, InProcessClient
from repro.engine import ColumnEngine, Database, EngineOptions
from repro.engine.parallel import (
    THREAD_PREFIX,
    chunk_ranges,
    get_pool,
    pool_size,
    run_tasks,
    shutdown_pool,
    survivor_rows,
)
from repro.engine.storage.memo import IdentityMemo
from repro.platform.service import PlatformService


def _column_engine(database: Database, workers: int) -> ColumnEngine:
    return ColumnEngine(database, options=EngineOptions(workers=workers))


@pytest.fixture(scope="module")
def parallel_db() -> Database:
    """Many small chunks, NULLs in both a group key and an aggregate input."""
    database = Database("parallel-unit", chunk_rows=32)
    database.create_table("sales", [("id", "int"), ("region", "str"),
                                    ("amount", "float"), ("qty", "int")])
    rng = random.Random(20260807)
    rows = []
    for index in range(1000):
        region = rng.choice(["north", "south", "east", "west", None])
        amount = None if index % 97 == 0 else round(rng.uniform(1, 500), 2)
        rows.append((index, region, amount, rng.randrange(1, 9)))
    database.insert_rows("sales", rows)
    return database


# ---------------------------------------------------------------------------
# the shared pool
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_pool_grows_and_never_shrinks(self):
        shutdown_pool()
        assert pool_size() == 0
        get_pool(2)
        assert pool_size() == 2
        get_pool(4)
        assert pool_size() == 4
        get_pool(2)  # smaller request reuses the bigger pool
        assert pool_size() == 4
        shutdown_pool()
        assert pool_size() == 0

    def test_run_tasks_preserves_order(self):
        results = run_tasks(4, [lambda value=value: value * value
                                for value in range(16)])
        assert results == [value * value for value in range(16)]

    def test_run_tasks_single_task_runs_inline(self):
        names = run_tasks(8, [lambda: threading.current_thread().name])
        assert names == [threading.main_thread().name] or \
            not names[0].startswith(THREAD_PREFIX)

    def test_run_tasks_serial_workers_run_inline(self):
        names = run_tasks(1, [lambda: threading.current_thread().name
                              for _ in range(4)])
        assert all(not name.startswith(THREAD_PREFIX) for name in names)

    def test_run_tasks_on_worker_thread_runs_inline(self):
        """Nested fan-out from a pool thread must not starve the pool."""
        def outer():
            inner = run_tasks(4, [lambda: threading.current_thread().name
                                  for _ in range(3)])
            return threading.current_thread().name, inner

        outer_name, inner_names = get_pool(2).submit(outer).result()
        assert outer_name.startswith(THREAD_PREFIX)
        assert inner_names == [outer_name] * 3

    def test_run_tasks_propagates_exceptions(self):
        def boom():
            raise ValueError("morsel failure")

        with pytest.raises(ValueError, match="morsel failure"):
            run_tasks(4, [boom, lambda: 1])


# ---------------------------------------------------------------------------
# morsel range partitioning
# ---------------------------------------------------------------------------


class TestMorselRanges:
    def test_tiles_all_chunks_without_survivors(self):
        ranges = chunk_ranges(10, None, 4)
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        for (_, stop, _), (start, _, _) in zip(ranges, ranges[1:]):
            assert stop == start
        pieces = np.concatenate([piece for _, _, piece in ranges])
        assert pieces.tolist() == list(range(10))
        assert all(len(piece) > 0 for _, _, piece in ranges)

    def test_partitions_survivors_within_ranges(self):
        survivors = np.array([1, 2, 5, 8, 9], dtype=np.int64)
        ranges = chunk_ranges(10, survivors, 3)
        pieces = np.concatenate([piece for _, _, piece in ranges])
        assert pieces.tolist() == survivors.tolist()
        for start, stop, piece in ranges:
            assert len(piece) > 0
            assert piece.min() >= start and piece.max() < stop

    def test_more_workers_than_survivors(self):
        survivors = np.array([3, 7], dtype=np.int64)
        ranges = chunk_ranges(10, survivors, 8)
        assert len(ranges) == 2
        assert [piece.tolist() for _, _, piece in ranges] == [[3], [7]]

    def test_no_survivors_collapses_to_one_range(self):
        survivors = np.array([], dtype=np.int64)
        ranges = chunk_ranges(5, survivors, 4)
        assert len(ranges) == 1
        start, stop, piece = ranges[0]
        assert (start, stop) == (0, 5) and len(piece) == 0

    def test_survivor_rows_concatenates_chunk_rows(self):
        starts = np.array([0, 17, 34], dtype=np.int64)
        counts = np.array([17, 17, 8], dtype=np.int64)
        rows = survivor_rows(np.array([0, 2], dtype=np.int64), starts, counts)
        assert rows.tolist() == list(range(17)) + list(range(34, 42))

    def test_survivor_rows_empty(self):
        rows = survivor_rows(np.array([], dtype=np.int64),
                             np.array([0], dtype=np.int64),
                             np.array([5], dtype=np.int64))
        assert rows.dtype == np.int64 and len(rows) == 0


# ---------------------------------------------------------------------------
# serial vs parallel parity on the hard edges
# ---------------------------------------------------------------------------

EDGE_QUERIES = [
    "select count(*) from sales where amount > 100",
    "select region, count(*) as n, sum(qty) as q from sales "
    "where amount > 50 group by region order by n desc, region",
    "select region, avg(amount) as a from sales group by region "
    "having count(*) > 150 order by region",
    "select count(*) as n, sum(amount) as s, min(amount) as lo, "
    "max(amount) as hi from sales where id < 0",
    "select count(distinct region) as r, count(distinct qty) as q from sales "
    "where amount > 10",
    "select qty, sum(distinct qty) as s, avg(distinct amount) as a "
    "from sales group by qty order by qty",
    "select min(region) as lo, max(region) as hi from sales where qty > 2",
    "select qty % 3 as bucket, count(*) as n from sales "
    "where id >= 13 group by qty % 3 order by bucket",
]


class TestParallelParity:
    @pytest.mark.parametrize("sql", EDGE_QUERIES)
    def test_parallel_matches_serial(self, sql, parallel_db):
        serial = _column_engine(parallel_db, workers=1).execute(sql)
        parallel = _column_engine(parallel_db, workers=4).execute(sql)
        assert parallel.columns == serial.columns
        assert len(parallel.rows) == len(serial.rows)
        for expected, got in zip(serial.rows, parallel.rows):
            for want, have in zip(expected, got):
                if isinstance(want, float) and isinstance(have, float):
                    assert have == pytest.approx(want, rel=1e-9, abs=1e-12)
                else:
                    assert have == want, f"{sql}: {have!r} != {want!r}"

    def test_worker_lanes_recorded_in_trace(self, parallel_db):
        sql = "select region, count(*) as n from sales where amount > 50 " \
              "group by region order by n desc"
        result = _column_engine(parallel_db, workers=4).execute(sql, trace=True)
        scans = result.trace.find_all("scan")
        assert scans, "no scan span recorded"
        scan = scans[0]
        lanes = [child for child in scan.children if child.name == "worker"]
        assert len(lanes) > 1, "parallel scan did not fan out"
        assert scan.attributes.get("workers") == len(lanes)
        assert sum(lane.attributes["chunks_scanned"] for lane in lanes) == \
            scan.attributes["chunks_scanned"]
        assert sum(lane.rows_out for lane in lanes) == scan.rows_out
        for lane in lanes:
            assert lane.ended is not None and lane.ended >= lane.started

    def test_serial_trace_has_no_worker_lanes(self, parallel_db):
        sql = "select count(*) from sales where amount > 50"
        result = _column_engine(parallel_db, workers=1).execute(sql, trace=True)
        for span in result.trace.spans():
            assert all(child.name != "worker" for child in span.children)

    def test_parallel_counts_its_blocks(self, parallel_db):
        sql = "select count(*) from sales where amount > 50"
        result = _column_engine(parallel_db, workers=4).execute(sql, trace=True)
        counters = result.profile()["counters"]
        assert counters.get("parallel.blocks", 0) >= 1
        serial = _column_engine(parallel_db, workers=1).execute(sql, trace=True)
        assert serial.profile()["counters"].get("parallel.blocks", 0) == 0


# ---------------------------------------------------------------------------
# memo + storage thread-safety (concurrent queries on one engine)
# ---------------------------------------------------------------------------


class TestThreadSafety:
    def test_identity_memo_concurrent_hammer(self):
        memo = IdentityMemo(capacity=64)
        keys = [(object(), object()) for _ in range(128)]
        values = {id(key[0]): index for index, key in enumerate(keys)}
        errors: list[str] = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            for _ in range(3000):
                key = keys[rng.randrange(len(keys))]
                hit, value = memo.get(key)
                if hit and value != values[id(key[0])]:
                    errors.append(f"stale value {value!r} for key {key!r}")
                elif not hit:
                    memo.put(key, values[id(key[0])])

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(memo) <= 64

    def test_concurrent_queries_one_engine(self, parallel_db):
        """Eight driver threads sharing one engine (locked memos, shared
        columnar views, zone maps) must all see the serial answer."""
        engine = _column_engine(parallel_db, workers=2)
        sql = "select region, count(*) as n, sum(qty) as q from sales " \
              "where amount > 25 group by region order by region"
        expected = engine.execute(sql).rows
        failures: list[str] = []

        def worker() -> None:
            for _ in range(5):
                rows = engine.execute(sql).rows
                if rows != expected:
                    failures.append(f"{rows!r} != {expected!r}")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


# ---------------------------------------------------------------------------
# driver-side timing fidelity (satellite: concurrent_workers flagging)
# ---------------------------------------------------------------------------


@pytest.fixture()
def batch_platform():
    database = Database("fidelity-unit")
    database.create_table("t", [("id", "int"), ("price", "float")])
    database.insert_rows("t", [(index, float(index)) for index in range(64)])
    engine = ColumnEngine(database)

    service = PlatformService()
    owner = service.register_user("owner", "owner@example.org")
    contributor = service.register_user("driver", "driver@example.org")
    host = service.register_host("laptop")
    service.register_dbms(engine.name, engine.version)
    project = service.create_project(owner, "fidelity-demo")
    service.invite_contributor(owner, project, contributor)
    experiment = service.add_experiment(
        owner, project, "exp", "select sum(price) from t where id > 0",
        repeats=2, timeout_seconds=60.0)
    pool = service.build_pool(experiment, seed=5)
    pool.seed_baseline()
    pool.seed_random(4)
    service.enqueue_pool(owner, experiment, pool, dbms_label=engine.label,
                         host_name=host.name)
    return service, contributor, experiment, engine


class TestTimingFidelity:
    def _run(self, batch_platform, workers: int):
        service, contributor, experiment, engine = batch_platform
        config = DriverConfig(key=contributor.contributor_key, dbms=engine.label,
                              host="laptop", repeats=2, timeout=60.0,
                              batch_size=8, workers=workers)
        runner = BatchRunner(client=InProcessClient(service, contributor.contributor_key),
                             engine=engine, config=config)
        executed = runner.run_all(experiment.id)
        assert executed > 0
        return list(service.store.results(experiment.id))

    def test_concurrent_batches_are_stamped_and_flagged(self, batch_platform):
        records = self._run(batch_platform, workers=3)
        assert all(record.extras.get("concurrent_workers") == 3
                   for record in records)
        report = profile_report(records)
        summary = report.engines[records[0].dbms_label]
        assert summary.timing_compromised == len(records)
        # GIL-inflated wall clock stays out of the phase aggregates ...
        assert summary.phase_seconds == {}
        # ... while the exact counters are still aggregated.
        assert summary.profiled == len(records)
        assert any("timing_compromised=" in line for line in report.lines())

    def test_serial_batches_are_not_flagged(self, batch_platform):
        records = self._run(batch_platform, workers=1)
        assert all("concurrent_workers" not in record.extras
                   for record in records)
        report = profile_report(records)
        summary = report.engines[records[0].dbms_label]
        assert summary.timing_compromised == 0
        assert summary.phase_seconds
        assert not any("timing_compromised=" in line for line in report.lines())
