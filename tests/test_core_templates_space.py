"""Tests for template enumeration, space statistics and query rendering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    QueryRenderer,
    enumerate_templates,
    parse_grammar,
    space_report,
)
from repro.core.normalize import normalize
from repro.core.space import template_completions
from repro.core.templates import TemplateGenerator
from repro.errors import RenderError, SpaceLimitExceeded


class TestTemplateEnumeration:
    def test_figure1_template_count(self, figure1_grammar):
        enumeration = enumerate_templates(figure1_grammar)
        # (count | 1..4 columns) x (with/without filter) = 10 templates
        assert len(enumeration) == 10
        assert not enumeration.truncated

    def test_templates_are_distinct_signatures(self, figure1_grammar):
        enumeration = enumerate_templates(figure1_grammar)
        signatures = {template.signature for template in enumeration}
        assert len(signatures) == len(enumeration)

    def test_at_most_once_bounds_repetition(self):
        grammar = parse_grammar(
            "q:\n    ${l_a} ${rep}*\nrep:\n    , ${l_a}\nl_a:\n    x\n    y\n")
        enumeration = enumerate_templates(grammar)
        # one or two slots of l_a; never three because only two literals exist
        sizes = sorted(template.size() for template in enumeration)
        assert sizes == [1, 2]

    def test_optional_reference_doubles_templates(self):
        base = parse_grammar("q:\n    ${l_a}\nl_a:\n    x\n")
        with_optional = parse_grammar("q:\n    ${l_a} $[extra]\nextra:\n    ${l_b}\n"
                                      "l_a:\n    x\nl_b:\n    y\n")
        assert len(enumerate_templates(with_optional)) == 2 * len(enumerate_templates(base))

    def test_limit_truncates(self, figure1_grammar):
        enumeration = enumerate_templates(figure1_grammar, limit=3)
        assert enumeration.truncated
        assert len(enumeration) == 3
        assert enumeration.count_label().startswith(">")

    def test_strict_limit_raises(self, figure1_grammar):
        with pytest.raises(SpaceLimitExceeded):
            TemplateGenerator(figure1_grammar, limit=3, strict=True).enumerate()

    def test_template_text_contains_slots(self, figure1_grammar):
        enumeration = enumerate_templates(figure1_grammar)
        assert any("${l_count}" in template.text() for template in enumeration)

    def test_unknown_start_rule_rejected(self, figure1_grammar):
        generator = TemplateGenerator(figure1_grammar)
        with pytest.raises(Exception):
            generator.enumerate(start="nope")


class TestSpaceReport:
    def test_figure1_space(self, figure1_grammar):
        report = space_report(figure1_grammar)
        assert report.tags == 7
        assert report.templates == 10
        # (count + C(4,1..4) column subsets) x 2 filter choices = 32 queries
        assert report.space == 32

    def test_completions_match_render_all(self, figure1_grammar):
        normalized = normalize(figure1_grammar)
        enumeration = enumerate_templates(figure1_grammar)
        renderer = QueryRenderer(figure1_grammar)
        for template in enumeration:
            rendered = list(renderer.render_all(template))
            assert len(rendered) == template_completions(template, normalized)

    def test_space_labels_for_truncated_grammar(self, figure1_grammar):
        report = space_report(figure1_grammar, limit=2)
        assert report.truncated
        assert report.space_label() == "-"

    def test_as_row_format(self, figure1_grammar):
        name, tags, templates, space = space_report(figure1_grammar).as_row()
        assert name == "figure1" and tags == 7
        assert templates == "10" and space == "32"


class TestRendering:
    def test_render_random_is_valid_assignment(self, figure1_grammar):
        import random

        renderer = QueryRenderer(figure1_grammar)
        template = max(enumerate_templates(figure1_grammar).templates,
                       key=lambda item: item.size())
        query = renderer.render(template, rng=random.Random(5))
        assert len(query.assignment) == template.size()
        assert len({literal.key for literal in query.assignment}) == template.size()

    def test_render_rejects_wrong_class(self, figure1_grammar):
        renderer = QueryRenderer(figure1_grammar)
        enumeration = enumerate_templates(figure1_grammar)
        template = next(t for t in enumeration if t.size() == 2)
        literals = normalize(figure1_grammar).literals_by_rule["l_filter"]
        with pytest.raises(RenderError):
            renderer.render(template, [literals[0], literals[0]])

    def test_render_rejects_duplicate_literal(self, figure1_grammar):
        renderer = QueryRenderer(figure1_grammar)
        template = next(t for t in enumerate_templates(figure1_grammar)
                        if t.slot_counts().get("l_column") == 2)
        literal = normalize(figure1_grammar).literals_by_rule["l_column"][0]
        table = normalize(figure1_grammar).literals_by_rule["l_tables"][0]
        with pytest.raises(RenderError):
            renderer.render(template, [literal, literal, table])

    def test_query_key_ignores_order_of_same_class_literals(self, figure1_grammar):
        renderer = QueryRenderer(figure1_grammar)
        template = next(t for t in enumerate_templates(figure1_grammar)
                        if t.slot_counts().get("l_column") == 2
                        and "l_filter" not in t.slot_counts())
        columns = normalize(figure1_grammar).literals_by_rule["l_column"]
        table = normalize(figure1_grammar).literals_by_rule["l_tables"][0]
        first = renderer.render(template, [columns[0], columns[1], table])
        second = renderer.render(template, [columns[1], columns[0], table])
        assert first.key == second.key

    def test_sample_returns_unique_queries(self, figure1_grammar):
        import random

        renderer = QueryRenderer(figure1_grammar)
        template = max(enumerate_templates(figure1_grammar).templates,
                       key=lambda item: item.size())
        sample = renderer.sample(template, 3, rng=random.Random(3))
        assert len({query.key for query in sample}) == len(sample)

    def test_rendered_sql_is_parseable(self, figure1_grammar):
        from repro.sqlparser import parse_select

        renderer = QueryRenderer(figure1_grammar)
        for template in enumerate_templates(figure1_grammar):
            for query in renderer.render_all(template):
                parse_select(query.sql)


@given(columns=st.integers(min_value=1, max_value=6),
       with_filter=st.booleans())
@settings(max_examples=20, deadline=None)
def test_space_grows_with_literal_count(columns, with_filter):
    """Property: more literals -> strictly larger query space (Figure 1 family)."""
    literals = "\n".join(f"    col{i}" for i in range(columns))
    filter_rule = "l_filter:\n    WHERE col0 = 1\n" if with_filter else ""
    filter_ref = " $[l_filter]" if with_filter else ""
    source = (f"query:\n    SELECT ${{projection}} FROM t{filter_ref}\n"
              f"projection:\n    ${{l_column}} ${{columnlist}}*\n"
              f"columnlist:\n    , ${{l_column}}\n"
              f"l_column:\n{literals}\n" + filter_rule)
    report = space_report(parse_grammar(source))
    expected_projections = 2 ** columns - 1
    expected = expected_projections * (2 if with_filter else 1)
    assert report.space == expected
