"""Exhaustive Kleene three-valued-logic truth tables, both engines.

Every unary/binary boolean combination over {TRUE, FALSE, NULL} is driven
through the four positions a predicate can appear in -- WHERE filter,
projection, HAVING, and CASE condition -- and checked against a Python
reference implementation of the Kleene tables, for the row *and* the column
engine under the full toggle matrix.  This pins the PR's headline fix: a
bare ``NOT (expr)`` over a NULL operand used to differ between the engines
(ROADMAP "Three-valued NOT").
"""

from __future__ import annotations

import itertools

import pytest

from repro.engine import ColumnEngine, Database, EngineOptions, RowEngine

#: the full storage/kernel toggle matrix (compile_expressions,
#: selection_vectors, zone_maps, dictionary_encoding).
ALL_TOGGLES = list(itertools.product([False, True], repeat=4))

#: the kernel toggles alone (the storage toggles cannot affect projection /
#: HAVING / CASE positions, which run after the scan).
KERNEL_TOGGLES = list(itertools.product([False, True], repeat=2))

#: the nine (a, b) value combinations; 1 encodes TRUE, 0 FALSE, None NULL
#: (through the predicate ``a = 1`` / ``b = 1``).
COMBOS = list(itertools.product([1, 0, None], repeat=2))


def _truth(value):
    """Three-valued truth of the encoded column value under ``col = 1``."""
    return None if value is None else (value == 1)


def k_not(a):
    return None if a is None else (not a)


def k_and(a, b):
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def k_or(a, b):
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


#: every boolean shape exercised, as (sql-template, reference-fn) pairs.
#: ``{A}`` / ``{B}`` expand to the base predicates per position.
EXPRESSIONS = [
    ("not {A}", lambda a, b: k_not(a)),
    ("not (not {A})", lambda a, b: k_not(k_not(a))),
    ("{A} and {B}", k_and),
    ("{A} or {B}", k_or),
    ("not ({A} and {B})", lambda a, b: k_not(k_and(a, b))),
    ("not ({A} or {B})", lambda a, b: k_not(k_or(a, b))),
    ("(not {A}) or {B}", lambda a, b: k_or(k_not(a), b)),
    ("{A} and (not {B})", lambda a, b: k_and(a, k_not(b))),
]


def _options(compile_expressions, selection_vectors, zone_maps=True,
             dictionary_encoding=True):
    return EngineOptions(compile_expressions=compile_expressions,
                         selection_vectors=selection_vectors,
                         zone_maps=zone_maps,
                         dictionary_encoding=dictionary_encoding)


@pytest.fixture(scope="module")
def truth_db() -> Database:
    """One row per (a, b) combination; small chunks to exercise zone maps."""
    database = Database("kleene", chunk_rows=4)
    database.create_table("tv", [("id", "int"), ("a", "int"), ("b", "int")])
    database.insert_rows("tv", [
        (index + 1, a, b) for index, (a, b) in enumerate(COMBOS)
    ])
    return database


def _engines(database, toggles):
    for combo in toggles:
        options = _options(*combo)
        yield RowEngine(database, options=options), combo
        yield ColumnEngine(database, options=options), combo


class TestFilterPosition:
    @pytest.mark.parametrize("template,reference", EXPRESSIONS,
                             ids=[sql for sql, _ in EXPRESSIONS])
    def test_truth_table_in_where(self, template, reference, truth_db):
        predicate = template.format(A="(a = 1)", B="(b = 1)")
        expected = [
            (index + 1,) for index, (a, b) in enumerate(COMBOS)
            if reference(_truth(a), _truth(b)) is True  # UNKNOWN drops the row
        ]
        sql = f"select id from tv where {predicate} order by id"
        for engine, combo in _engines(truth_db, ALL_TOGGLES):
            result = engine.execute(sql)
            assert result.rows == expected, \
                f"{engine.strategy()} {combo}: {predicate}"


class TestProjectionPosition:
    @pytest.mark.parametrize("template,reference", EXPRESSIONS,
                             ids=[sql for sql, _ in EXPRESSIONS])
    def test_truth_table_projected(self, template, reference, truth_db):
        expression = template.format(A="(a = 1)", B="(b = 1)")
        expected = [
            (index + 1, reference(_truth(a), _truth(b)))
            for index, (a, b) in enumerate(COMBOS)
        ]
        sql = f"select id, {expression} as verdict from tv order by id"
        for engine, combo in _engines(truth_db, KERNEL_TOGGLES):
            result = engine.execute(sql)
            assert result.rows == expected, \
                f"{engine.strategy()} {combo}: {expression}"


class TestHavingPosition:
    """Per-id groups: min(col) over the single row keeps the NULL, so the
    aggregate-position predicates hit the same nine combinations."""

    @pytest.mark.parametrize("template,reference", EXPRESSIONS,
                             ids=[sql for sql, _ in EXPRESSIONS])
    def test_truth_table_in_having(self, template, reference, truth_db):
        predicate = template.format(A="(min(a) = 1)", B="(min(b) = 1)")
        expected = [
            (index + 1,) for index, (a, b) in enumerate(COMBOS)
            if reference(_truth(a), _truth(b)) is True
        ]
        sql = f"select id from tv group by id having {predicate} order by id"
        for engine, combo in _engines(truth_db, KERNEL_TOGGLES):
            result = engine.execute(sql)
            assert result.rows == expected, \
                f"{engine.strategy()} {combo}: {predicate}"


class TestCasePosition:
    @pytest.mark.parametrize("template,reference", EXPRESSIONS,
                             ids=[sql for sql, _ in EXPRESSIONS])
    def test_truth_table_in_case(self, template, reference, truth_db):
        predicate = template.format(A="(a = 1)", B="(b = 1)")
        expected = [
            (index + 1, 1 if reference(_truth(a), _truth(b)) is True else 0)
            for index, (a, b) in enumerate(COMBOS)  # UNKNOWN takes the ELSE
        ]
        sql = (f"select id, case when {predicate} then 1 else 0 end as branch "
               f"from tv order by id")
        for engine, combo in _engines(truth_db, KERNEL_TOGGLES):
            result = engine.execute(sql)
            assert result.rows == expected, \
                f"{engine.strategy()} {combo}: {predicate}"


class TestScalarKleeneOperands:
    """NULL literals inside the connectives (no column involved at all)."""

    @pytest.mark.parametrize("sql,expected", [
        ("select count(*) from tv where null and 1 = 2", 0),   # U AND F = F
        ("select count(*) from tv where null or 1 = 1", 9),    # U OR T = T
        ("select count(*) from tv where not null", 0),         # NOT U = U
        ("select count(*) from tv where null or 1 = 2", 0),    # U OR F = U
    ])
    def test_null_literal_connectives(self, sql, expected, truth_db):
        for engine, combo in _engines(truth_db, KERNEL_TOGGLES):
            assert engine.execute(sql).scalar() == expected, \
                f"{engine.strategy()} {combo}: {sql}"
