"""Differential query fuzzer: row-vs-column parity under random queries.

A seeded generator produces ~200 random queries -- filters with nested
NOT/AND/OR over NULL-heavy literals, IN/BETWEEN/LIKE (negations included),
IS NULL, arithmetic and CASE projections, aggregates with GROUP BY/HAVING,
and equi-joins over nullable keys -- against a small database whose every
column carries NULLs.  Each query is executed by the row and the column
engine under the full EngineOptions toggle matrix (deduplicated by the
options each engine actually consumes) and the result multisets must match
the interpreted row engine exactly.

Determinism: the corpus derives from a fixed seed, so a failure always
reproduces under the same iteration index (printed in the assertion
message).  ``FUZZ_ITERATIONS`` overrides the corpus size -- CI's smoke step
runs 50, the tier-1 suite the full 200.
"""

from __future__ import annotations

import datetime
import itertools
import os
import random

import numpy as np
import pytest

from repro.engine import ColumnEngine, Database, EngineOptions, RowEngine

FUZZ_SEED = 20260730
FUZZ_ITERATIONS = int(os.environ.get("FUZZ_ITERATIONS", "200"))

#: the full toggle matrix (compile_expressions, selection_vectors,
#: zone_maps, dictionary_encoding, null_masks) -- including the legacy
#: object-array decode baseline, which must stay semantically identical.
ALL_TOGGLES = list(itertools.product([False, True], repeat=5))


def _options(compile_expressions, selection_vectors, zone_maps,
             dictionary_encoding, null_masks=True, workers=1) -> EngineOptions:
    return EngineOptions(compile_expressions=compile_expressions,
                         selection_vectors=selection_vectors,
                         zone_maps=zone_maps,
                         dictionary_encoding=dictionary_encoding,
                         null_masks=null_masks,
                         workers=workers)


# ---------------------------------------------------------------------------
# data
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fuzz_db() -> Database:
    """Two small NULL-heavy tables; odd chunk size forces chunk boundaries.

    The first chunk of ``a.x`` is entirely NULL, so zone-map refutation runs
    against an all-NULL chunk in almost every generated filter.
    """
    rng = random.Random(FUZZ_SEED ^ 0x5EED)
    database = Database("fuzz", chunk_rows=17)
    database.create_table("a", [("id", "int"), ("x", "int"), ("y", "float"),
                                ("s", "str"), ("d", "date")])
    words = ["alpha", "beta", "gamma", "delta", "abba", "axle", "box", "ibex"]
    start = datetime.date(2020, 1, 1)
    rows = []
    for index in range(90):
        x = None if index < 17 or rng.random() < 0.3 else rng.randrange(0, 40)
        y = None if rng.random() < 0.3 else rng.randrange(0, 160) / 4.0
        s = None if rng.random() < 0.3 else rng.choice(words)
        d = None if rng.random() < 0.3 else \
            (start + datetime.timedelta(days=rng.randrange(0, 300))).isoformat()
        rows.append((index + 1, x, y, s, d))
    database.insert_rows("a", rows)

    database.create_table("b", [("id", "int"), ("a_id", "int"), ("v", "int"),
                                ("t", "str")])
    rows = []
    for index in range(45):
        a_id = None if rng.random() < 0.25 else rng.randrange(1, 91)
        v = None if rng.random() < 0.3 else rng.randrange(0, 25)
        t = None if rng.random() < 0.3 else rng.choice(words)
        rows.append((index + 1, a_id, v, t))
    database.insert_rows("b", rows)
    return database


# ---------------------------------------------------------------------------
# query generator
# ---------------------------------------------------------------------------


class QueryGenerator:
    """Deterministic random SQL over the fuzz schema.

    Stays inside the dialect both engines share bit-for-bit: no division or
    modulo (numpy and Python disagree on division-by-zero faulting), date
    columns only in comparison position, numeric values small enough that
    ``int64`` cannot overflow.
    """

    NUM_COLS = ["a.id", "a.x"]
    FLOAT_COLS = ["a.y"]
    STR_COL = "a.s"
    DATE_COL = "a.d"
    PATTERNS = ["a%", "%a", "_e%", "ab_a", "%x%", "ibex"]
    WORDS = ["alpha", "beta", "gamma", "delta", "abba", "axle", "box", "ibex"]

    def __init__(self, rng: random.Random):
        self.rng = rng

    # -- literals ------------------------------------------------------------

    def _int_literal(self) -> str:
        if self.rng.random() < 0.2:
            return "null"  # NULL-heavy literals are the point of the corpus
        return str(self.rng.randrange(-5, 45))

    def _float_literal(self) -> str:
        if self.rng.random() < 0.2:
            return "null"
        return f"{self.rng.randrange(0, 160) / 4.0}"

    def _str_literal(self) -> str:
        if self.rng.random() < 0.2:
            return "null"
        return f"'{self.rng.choice(self.WORDS)}'"

    def _date_literal(self) -> str:
        day = datetime.date(2020, 1, 1) + datetime.timedelta(
            days=self.rng.randrange(0, 300))
        return f"date '{day.isoformat()}'"

    # -- predicates ----------------------------------------------------------

    def predicate(self, depth: int = 2, joined: bool = False) -> str:
        roll = self.rng.random()
        if depth <= 0 or roll < 0.35:
            return self._leaf(joined)
        if roll < 0.55:
            return f"not ({self.predicate(depth - 1, joined)})"
        connective = self.rng.choice(["and", "or"])
        return (f"({self.predicate(depth - 1, joined)}) {connective} "
                f"({self.predicate(depth - 1, joined)})")

    def _leaf(self, joined: bool) -> str:
        choices = [self._num_cmp, self._num_cmp, self._between, self._in_list,
                   self._is_null, self._like, self._str_cmp, self._date_cmp,
                   self._col_cmp]
        if joined:
            choices.append(self._b_cmp)
        return self.rng.choice(choices)()

    def _num_col(self) -> str:
        if self.rng.random() < 0.3:
            return self.FLOAT_COLS[0]
        return self.rng.choice(self.NUM_COLS)

    def _cmp_op(self) -> str:
        return self.rng.choice(["=", "<>", "<", "<=", ">", ">="])

    def _num_cmp(self) -> str:
        column = self._num_col()
        literal = self._float_literal() if column == "a.y" else self._int_literal()
        return f"{column} {self._cmp_op()} {literal}"

    def _col_cmp(self) -> str:
        return f"a.x {self._cmp_op()} a.id"

    def _b_cmp(self) -> str:
        return f"b.v {self._cmp_op()} {self._int_literal()}"

    def _between(self, ) -> str:
        negated = "not " if self.rng.random() < 0.4 else ""
        low, high = sorted([self.rng.randrange(-5, 45) for _ in range(2)])
        bounds = [str(low), str(high)]
        if self.rng.random() < 0.25:
            bounds[self.rng.randrange(2)] = "null"
        return f"a.x {negated}between {bounds[0]} and {bounds[1]}"

    def _in_list(self) -> str:
        negated = "not " if self.rng.random() < 0.4 else ""
        if self.rng.random() < 0.4:
            items = [self._str_literal() for _ in range(self.rng.randrange(1, 4))]
            return f"{self.STR_COL} {negated}in ({', '.join(items)})"
        items = [self._int_literal() for _ in range(self.rng.randrange(1, 5))]
        return f"a.x {negated}in ({', '.join(items)})"

    def _is_null(self) -> str:
        column = self.rng.choice(self.NUM_COLS + self.FLOAT_COLS
                                 + [self.STR_COL, self.DATE_COL])
        negated = "not " if self.rng.random() < 0.4 else ""
        return f"{column} is {negated}null"

    def _like(self) -> str:
        negated = "not " if self.rng.random() < 0.4 else ""
        return f"{self.STR_COL} {negated}like '{self.rng.choice(self.PATTERNS)}'"

    def _str_cmp(self) -> str:
        operator = self.rng.choice(["=", "<>"])
        return f"{self.STR_COL} {operator} {self._str_literal()}"

    def _date_cmp(self) -> str:
        return f"{self.DATE_COL} {self._cmp_op()} {self._date_literal()}"

    # -- projections ---------------------------------------------------------

    def projection(self) -> str:
        roll = self.rng.random()
        if roll < 0.25:
            return self.rng.choice(["a.id", "a.x", "a.y", "a.s"])
        if roll < 0.45:
            left = self._num_col()
            operator = self.rng.choice(["+", "-", "*"])
            return f"{left} {operator} {self._small_term()}"
        if roll < 0.6:
            return self.rng.choice([
                "abs(a.x - 7)", "length(a.s)", "upper(a.s)", "lower(a.s)",
                "coalesce(a.x, -1)", "- a.x", "a.s || '!'",
            ])
        if roll < 0.8:
            return (f"case when {self.predicate(1)} then {self._small_term()} "
                    f"else {self._small_term()} end")
        return f"({self.predicate(1)})"

    def _small_term(self) -> str:
        if self.rng.random() < 0.5:
            return str(self.rng.randrange(0, 9))
        return self.rng.choice(["a.x", "a.id"])

    # -- full queries --------------------------------------------------------

    def query(self) -> str:
        roll = self.rng.random()
        if roll < 0.45:
            return self._filter_query()
        if roll < 0.75:
            return self._aggregate_query()
        return self._join_query()

    def _filter_query(self) -> str:
        items = ", ".join(["a.id"] + [self.projection()
                                      for _ in range(self.rng.randrange(0, 3))])
        distinct = "distinct " if self.rng.random() < 0.15 else ""
        return f"select {distinct}{items} from a where {self.predicate(3)}"

    def _aggregate_query(self) -> str:
        aggregates = ["count(*)", "count(a.x)", "sum(a.x)", "sum(a.y)",
                      "min(a.x)", "max(a.y)", "avg(a.y)", "min(a.s)",
                      "count(distinct a.s)"]
        items = [self.rng.choice(aggregates)
                 for _ in range(self.rng.randrange(1, 4))]
        where = f" where {self.predicate(2)}" if self.rng.random() < 0.7 else ""
        if self.rng.random() < 0.55:
            key = self.rng.choice(["a.s", "a.x"])
            having = ""
            if self.rng.random() < 0.5:
                having = f" having {self._having_predicate()}"
            return (f"select {key}, {', '.join(items)} from a{where} "
                    f"group by {key}{having}")
        return f"select {', '.join(items)} from a{where}"

    def _having_predicate(self) -> str:
        leaves = [
            f"count(*) {self._cmp_op()} {self.rng.randrange(0, 6)}",
            f"sum(a.x) {self._cmp_op()} {self._int_literal()}",
            f"min(a.y) {self._cmp_op()} {self._float_literal()}",
        ]
        first = self.rng.choice(leaves)
        roll = self.rng.random()
        if roll < 0.4:
            return f"not ({first})"
        if roll < 0.7:
            second = self.rng.choice(leaves)
            connective = self.rng.choice(["and", "or"])
            return f"({first}) {connective} ({second})"
        return first

    def _join_query(self) -> str:
        items = ", ".join(["a.id", "b.id"] + self.rng.sample(
            ["a.x", "a.s", "b.v", "b.t"], self.rng.randrange(1, 3)))
        return (f"select {items} from a, b "
                f"where a.id = b.a_id and ({self.predicate(2, joined=True)})")


# ---------------------------------------------------------------------------
# differential harness
# ---------------------------------------------------------------------------


def _canonical(rows) -> list[tuple]:
    """Engine-independent result multiset: python scalars, rounded, sorted."""
    out = []
    for row in rows:
        values = []
        for value in row:
            if isinstance(value, np.generic):
                value = value.item()
            if isinstance(value, bool):
                pass
            elif isinstance(value, float):
                value = round(value, 6)
                if value == int(value):
                    value = int(value)  # 10.0 (bincount) == 10 (python sum)
            values.append(value)
        out.append(tuple(values))
    out.sort(key=repr)
    return out


def _assert_trace_invariants(database: Database, result, context: str) -> None:
    """Structural invariants every execution trace must satisfy.

    * the root span reports exactly the rows the query returned,
    * every span is closed and nests strictly within its parent's window,
    * scan spans over base tables account for every storage chunk:
      ``chunks_scanned + chunks_skipped == total chunks``.
    """
    trace = result.trace
    assert trace is not None, f"{context}: tracing requested but absent"
    assert trace.root.rows_out == len(result.rows), \
        f"{context}: root span rows_out != result rows"
    for span in trace.spans():
        assert span.ended is not None, f"{context}: span {span.name} never closed"
        for child in span.children:
            assert child.started >= span.started, \
                f"{context}: span {child.name} starts before parent {span.name}"
            assert child.ended is not None and child.ended <= span.ended, \
                f"{context}: span {child.name} outlives parent {span.name}"
    for span in trace.find_all("scan"):
        scanned = span.attributes.get("chunks_scanned")
        skipped = span.attributes.get("chunks_skipped")
        table = str(span.attributes.get("source", "")).split(" ")[0]
        if scanned is None or skipped is None or table not in database:
            continue
        total = len(database.storage(table).chunks)
        assert scanned + skipped == total, \
            f"{context}: scan of {table} covers {scanned}+{skipped} != {total} chunks"
    # morsel-parallel operators: per-worker lane attributes must sum back to
    # the operator span's totals (chunk accounting and row counts alike).
    for span in trace.spans():
        lanes = [child for child in span.children if child.name == "worker"]
        if not lanes or span.name not in ("scan", "filter"):
            continue
        assert sum(lane.rows_out or 0 for lane in lanes) == span.rows_out, \
            f"{context}: {span.name} worker lanes do not sum to rows_out"
        if span.name == "scan":
            lane_scanned = sum(lane.attributes.get("chunks_scanned", 0)
                               for lane in lanes)
            lane_skipped = sum(lane.attributes.get("chunks_skipped", 0)
                               for lane in lanes)
            assert lane_scanned == span.attributes.get("chunks_scanned"), \
                f"{context}: worker lanes scanned {lane_scanned} chunks, " \
                f"span says {span.attributes.get('chunks_scanned')}"
            assert lane_skipped == span.attributes.get("chunks_skipped"), \
                f"{context}: worker lanes skipped {lane_skipped} chunks, " \
                f"span says {span.attributes.get('chunks_skipped')}"


def _assert_parity(database: Database, sql: str, label: str) -> None:
    reference = RowEngine(
        database, options=_options(False, False, True, True)).execute(sql)
    expected = _canonical(reference.rows)
    seen: set[tuple] = set()
    for toggles in ALL_TOGGLES:
        for workers in (1, 4):
            if workers > 1 and not toggles[1]:
                # morsel parallelism rides on the selection-vector path; the
                # materialising path ignores the knob, so skip the duplicate.
                continue
            options = _options(*toggles, workers=workers)
            engines = [ColumnEngine(database, options=options)]
            if workers == 1:
                engines.insert(0, RowEngine(database, options=options))
            for engine in engines:
                effective = (engine.strategy(), toggles[0]) \
                    if engine.strategy() == "row" \
                    else (engine.strategy(), *toggles, workers)
                if effective in seen:
                    continue
                seen.add(effective)
                result = engine.execute(sql, trace=True)
                config = (f"{engine.strategy()} compile={toggles[0]} "
                          f"sel={toggles[1]} zones={toggles[2]} dict={toggles[3]} "
                          f"masks={toggles[4]} workers={workers}")
            assert result.columns == reference.columns, \
                f"{label} [{config}] columns differ on: {sql}"
            assert _canonical(result.rows) == expected, \
                f"{label} [{config}] rows differ on: {sql}"
            _assert_trace_invariants(database, result,
                                     f"{label} [{config}] on: {sql}")


def test_differential_fuzz_parity(fuzz_db):
    rng = random.Random(FUZZ_SEED)
    generator = QueryGenerator(rng)
    for iteration in range(FUZZ_ITERATIONS):
        sql = generator.query()
        _assert_parity(fuzz_db, sql, f"iteration {iteration}")


def test_corpus_is_deterministic():
    first = QueryGenerator(random.Random(FUZZ_SEED))
    second = QueryGenerator(random.Random(FUZZ_SEED))
    corpus_a = [first.query() for _ in range(25)]
    corpus_b = [second.query() for _ in range(25)]
    assert corpus_a == corpus_b
