"""Tests for the grammar DSL, normalisation, validation and dialects."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DialectCatalog,
    apply_dialect,
    normalize,
    parse_grammar,
    serialize_grammar,
    validate,
)
from repro.core.dsl import FIGURE1_GRAMMAR, parse_alternative
from repro.core.model import Reference, Text
from repro.core.validate import check
from repro.errors import DialectError, GrammarSyntaxError, GrammarValidationError


class TestDSLParsing:
    def test_figure1_has_seven_rules(self, figure1_grammar):
        assert len(figure1_grammar) == 7

    def test_start_rule_is_first_rule(self, figure1_grammar):
        assert figure1_grammar.start == "query"

    def test_lexical_rules_detected(self, figure1_grammar):
        names = {rule.name for rule in figure1_grammar.lexical_rules()}
        assert names == {"l_tables", "l_column", "l_count", "l_filter"}

    def test_tag_count_counts_literals(self, figure1_grammar):
        assert figure1_grammar.tag_count() == 7

    def test_references_parsed_with_modifiers(self):
        alternative = parse_alternative("SELECT ${a} $[b] ${c}*")
        references = alternative.references()
        assert [ref.name for ref in references] == ["a", "b", "c"]
        assert references[1].optional and not references[1].repeated
        assert references[2].repeated and not references[2].optional

    def test_text_fragments_preserved(self):
        alternative = parse_alternative("WHERE ${x} AND 1=1")
        kinds = [type(part) for part in alternative.parts]
        assert kinds == [Text, Reference, Text]

    def test_comments_and_blank_lines_ignored(self):
        grammar = parse_grammar("a:\n    ${l_b}  # trailing comment\n\nl_b:\n    foo\n")
        assert len(grammar) == 2

    def test_duplicate_rule_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            parse_grammar("a:\n    x\na:\n    y\n")

    def test_alternative_before_rule_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            parse_grammar("    orphan alternative\n")

    def test_empty_source_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            parse_grammar("   \n# only a comment\n")

    def test_unknown_start_rule_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            parse_grammar("a:\n    x\n", start="missing")

    def test_dialect_section_attaches_to_rule(self):
        grammar = parse_grammar(
            "q:\n    ${l_limit}\nl_limit:\n    LIMIT 10\nl_limit@mssql:\n    TOP 10\n")
        assert "mssql" in grammar["l_limit"].dialects

    def test_dialect_section_before_rule_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            parse_grammar("l_x@monetdb:\n    foo\nl_x:\n    bar\n")


class TestSerialisation:
    def test_round_trip_preserves_structure(self, figure1_grammar):
        text = serialize_grammar(figure1_grammar)
        reparsed = parse_grammar(text)
        assert [rule.name for rule in reparsed] == [rule.name for rule in figure1_grammar]
        assert reparsed.tag_count() == figure1_grammar.tag_count()

    @given(st.lists(st.sampled_from(["a", "b", "c", "l_x", "l_y"]), min_size=1,
                    max_size=4, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_rule_names(self, names):
        source = "".join(f"{name}:\n    token_{name}\n" for name in names)
        grammar = parse_grammar(source)
        assert [rule.name for rule in parse_grammar(serialize_grammar(grammar))] == names


class TestNormalisation:
    def test_lexical_vs_structural_split(self, figure1_grammar):
        normalized = normalize(figure1_grammar)
        assert normalized.lexical == {"l_tables", "l_column", "l_count", "l_filter"}
        assert "query" in normalized.structural

    def test_reachability_from_start(self, figure1_grammar):
        normalized = normalize(figure1_grammar)
        assert normalized.reachable["query"] == set(figure1_grammar.rules)

    def test_missing_rule_raises_in_strict_mode(self):
        grammar = parse_grammar("a:\n    ${missing}\n")
        with pytest.raises(GrammarValidationError):
            normalize(grammar, strict=True)

    def test_missing_rule_tolerated_in_lenient_mode(self):
        grammar = parse_grammar("a:\n    ${missing}\n")
        normalized = normalize(grammar, strict=False)
        assert "a" in normalized.structural


class TestValidation:
    def test_figure1_is_valid(self, figure1_grammar):
        report = validate(figure1_grammar)
        assert report.ok
        assert report.summary() == "grammar is valid"

    def test_missing_rule_reported(self):
        report = validate(parse_grammar("a:\n    ${missing}\n"))
        assert not report.ok
        assert "missing" in report.missing_rules

    def test_dead_rule_reported(self):
        report = validate(parse_grammar("a:\n    ${l_b}\nl_b:\n    x\nunused:\n    y\n"))
        assert "unused" in report.dead_rules

    def test_duplicate_literaccording_warning(self):
        report = validate(parse_grammar("a:\n    ${l_b}\nl_b:\n    x\n    x\n"))
        assert report.ok
        assert any("duplicate literal" in warning for warning in report.warnings)

    def test_check_raises_on_errors(self):
        with pytest.raises(GrammarValidationError):
            check(parse_grammar("a:\n    ${missing}\n"))

    def test_check_returns_normalized_grammar(self, figure1_grammar):
        normalized = check(figure1_grammar)
        assert normalized.tag_count() == 7


class TestDialects:
    def test_apply_dialect_replaces_lexical_alternatives(self):
        grammar = parse_grammar(
            "q:\n    SELECT 1 ${l_limit}\nl_limit:\n    LIMIT 10\nl_limit@mssql:\n    TOP 10\n")
        specialised = apply_dialect(grammar, "mssql")
        assert specialised["l_limit"].alternatives[0].text() == "TOP 10"

    def test_apply_unknown_dialect_rejected(self):
        grammar = parse_grammar(
            "q:\n    ${l_x}\nl_x:\n    a\nl_x@monetdb:\n    b\n")
        with pytest.raises(DialectError):
            apply_dialect(grammar, "oracle")

    def test_apply_none_returns_same_grammar(self, figure1_grammar):
        assert apply_dialect(figure1_grammar, None) is figure1_grammar

    def test_default_catalog_has_engine_dialects(self):
        catalog = DialectCatalog.default()
        assert {"generic", "rowstore", "columnstore"} <= set(catalog.names())

    def test_catalog_rewrite_applies_substitutions(self):
        catalog = DialectCatalog.default()
        catalog.get("generic").substitutions["<>"] = "!="
        assert catalog.rewrite("a <> b", "generic") == "a != b"

    def test_unknown_dialect_lookup_rejected(self):
        with pytest.raises(DialectError):
            DialectCatalog.default().get("nosuch")

    def test_figure1_source_constant_parses(self):
        assert parse_grammar(FIGURE1_GRAMMAR).start == "query"
