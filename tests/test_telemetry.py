"""End-to-end platform telemetry: trace propagation, structured logging,
latency histograms, the flight recorder, and stitched task timelines."""

import io
import json

import pytest

from repro.analytics import (
    profiles_by_trace,
    read_span_log,
    stitch_timelines,
    timeline_lines,
    timeline_report,
)
from repro.driver import BatchRunner, DriverConfig, InProcessClient
from repro.engine import ColumnEngine, Database
from repro.obs import (
    FlightRecorder,
    JsonLogger,
    MetricsRegistry,
    SpanContext,
    SpanRecorder,
    TelemetryConfig,
    current_context,
    parse_log_lines,
    parse_traceparent,
    use_context,
)
from repro.platform import (
    FaultConfig,
    FaultInjector,
    FlakyEngine,
    PlatformService,
    UnreliableClient,
)
from repro.platform.models import TaskStatus
from repro.platform.webapp import create_wsgi_app


# ---------------------------------------------------------------------------
# traceparent propagation primitives
# ---------------------------------------------------------------------------


class TestTraceparent:
    def test_roundtrip(self):
        context = SpanContext("ab" * 16, "cd" * 8)
        parsed = parse_traceparent(context.to_traceparent())
        assert parsed == context

    def test_child_keeps_trace_changes_span(self):
        context = SpanContext("ab" * 16, "cd" * 8)
        child = context.child()
        assert child.trace_id == context.trace_id
        assert child.span_id != context.span_id

    @pytest.mark.parametrize("header", [
        None, "", "garbage",
        "00-short-cdcdcdcdcdcdcdcd-01",                     # bad widths
        "00-" + "gg" * 16 + "-" + "cd" * 8 + "-01",         # non-hex
        "00-" + "00" * 16 + "-" + "cd" * 8 + "-01",         # all-zero trace
        "00-" + "ab" * 16 + "-" + "00" * 8 + "-01",         # all-zero span
        "00-" + "ab" * 16 + "-" + "cd" * 8,                 # missing flags
    ])
    def test_malformed_headers_degrade_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_ambient_context_nests_and_restores(self):
        outer = SpanContext("ab" * 16, "cd" * 8)
        assert current_context() is None
        with use_context(outer):
            assert current_context() == outer
            with use_context(outer.child()):
                assert current_context().trace_id == outer.trace_id
                assert current_context().span_id != outer.span_id
            assert current_context() == outer
        assert current_context() is None


# ---------------------------------------------------------------------------
# structured logging
# ---------------------------------------------------------------------------


class TestJsonLogger:
    def test_records_are_json_lines_with_component(self):
        registry = MetricsRegistry()
        root = JsonLogger(registry=registry)
        root.bind("service").info("tasks.enqueued", count=3)
        root.bind("driver").warning("client.retry", attempt=1)
        records = parse_log_lines(root.stream.getvalue())
        assert [record["component"] for record in records] == ["service", "driver"]
        assert records[0]["event"] == "tasks.enqueued"
        assert records[0]["count"] == 3
        assert all("ts" in record for record in records)
        # the registry counted levels and events for the derived rates.
        assert registry.counter("log.records.info").value == 1
        assert registry.counter("log.records.warning").value == 1
        assert registry.counter("log.events.client.retry").value == 1

    def test_ambient_trace_context_is_stamped(self):
        logger = JsonLogger(component="test")
        context = SpanContext("ab" * 16, "cd" * 8)
        with use_context(context):
            logger.info("with.context")
            logger.info("explicit.wins", trace_id="override")
        records = parse_log_lines(logger.stream.getvalue())
        assert records[0]["trace_id"] == context.trace_id
        assert records[0]["span_id"] == context.span_id
        assert records[1]["trace_id"] == "override"

    def test_bound_loggers_share_one_stream(self):
        root = JsonLogger()
        child = root.bind("webapp")
        assert child.stream is root.stream
        child.error("boom")
        assert "boom" in root.stream.getvalue()


# ---------------------------------------------------------------------------
# webapp middleware: histograms, responses, server spans
# ---------------------------------------------------------------------------


def _call_app(app, path, method="GET", headers=None, body=None):
    raw = json.dumps(body).encode() if body is not None else b""
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": "",
        "CONTENT_LENGTH": str(len(raw)),
        "wsgi.input": io.BytesIO(raw),
    }
    for name, value in (headers or {}).items():
        environ["HTTP_" + name.upper().replace("-", "_")] = value
    captured = {}

    def start_response(status, response_headers):
        captured["status"] = status

    payload = json.loads(b"".join(app(environ, start_response)).decode())
    return captured["status"], payload


class TestWebappTelemetry:
    def test_request_observes_latency_histogram_and_status_counter(self):
        service = PlatformService()
        app = create_wsgi_app(service)
        status, payload = _call_app(app, "/api/ping")
        assert status.startswith("200")
        summary = service.metrics.histogram(
            "http.request_seconds./api/ping").summary()
        assert summary["count"] == 1
        assert service.metrics.counter("http.responses.2xx").value == 1

    def test_unknown_paths_share_the_unmatched_bucket(self):
        service = PlatformService()
        app = create_wsgi_app(service)
        _call_app(app, "/api/garbage-1")
        _call_app(app, "/api/garbage-2")
        summary = service.metrics.histogram(
            "http.request_seconds.unmatched").summary()
        assert summary["count"] == 2
        names = set(service.metrics.snapshot()["histograms"])
        assert not any("garbage" in name for name in names)

    def test_incoming_traceparent_continues_the_trace(self):
        service = PlatformService()
        logger = JsonLogger()
        app = create_wsgi_app(service, logger=logger)
        caller = SpanContext("ab" * 16, "cd" * 8)
        _call_app(app, "/api/ping",
                  headers={"Traceparent": caller.to_traceparent()})
        spans = service.spans.spans(caller.trace_id)
        assert [span["name"] for span in spans] == ["http"]
        assert spans[0]["parent_span_id"] == caller.span_id
        assert spans[0]["attributes"]["endpoint"] == "/api/ping"
        assert spans[0]["attributes"]["status"] == 200
        records = parse_log_lines(logger.stream.getvalue())
        assert records[-1]["event"] == "http.request"
        assert records[-1]["trace_id"] == caller.trace_id

    def test_disabled_telemetry_records_no_spans(self):
        service = PlatformService(telemetry=TelemetryConfig.disabled())
        app = create_wsgi_app(service)
        _call_app(app, "/api/ping")
        assert len(service.spans) == 0
        assert not service.flight.enabled


# ---------------------------------------------------------------------------
# trace continuity across fault paths
# ---------------------------------------------------------------------------


def _service_with_queue(logger=None, telemetry=None, max_attempts=3):
    service = PlatformService(logger=logger, telemetry=telemetry)
    owner = service.register_user("owner", "owner@example.org")
    contributor = service.register_user("worker", "worker@example.org")
    service.register_dbms("columnstore", "1.0")
    service.register_host("laptop")
    project = service.create_project(owner, "telemetry-demo")
    service.invite_contributor(owner, project, contributor)
    experiment = service.add_experiment(
        owner, project, "exp", "select sum(price) from t where id > 0",
        repeats=1, timeout_seconds=60.0, max_attempts=max_attempts)
    pool = service.build_pool(experiment, seed=3)
    pool.seed_baseline()
    service.enqueue_pool(owner, experiment, pool, dbms_label="columnstore-1.0",
                         host_name="laptop")
    return service, owner, contributor, experiment


def _flaky_database():
    database = Database("telemetry-unit")
    database.create_table("t", [("id", "int"), ("price", "float")])
    database.insert_rows("t", [(1, 10.0), (2, 20.0)])
    return database


class TestTraceContinuity:
    def test_trace_id_minted_at_enqueue_and_stable_across_retry(self):
        logger = JsonLogger()
        service, owner, contributor, experiment = _service_with_queue(logger=logger)
        task = service.next_task(contributor, experiment)
        trace_id = task.trace_id
        assert trace_id and len(trace_id) == 32
        # attempt 1 fails -> the task goes back to pending under the SAME trace.
        service.submit_result(contributor, task, times=[], error="boom",
                              attempt=task.attempts)
        task = service.next_task(contributor, experiment)
        assert task.trace_id == trace_id
        assert task.attempts == 2
        service.submit_result(contributor, task, times=[0.1],
                              attempt=task.attempts)
        assert task.status == TaskStatus.DONE.value

        spans = service.spans.spans(trace_id)
        names = [span["name"] for span in spans]
        assert names.count("claim") == 2
        assert [span["attributes"]["attempt"] for span in spans
                if span["name"] == "claim"] == [1, 2]
        submits = [span["attributes"] for span in spans if span["name"] == "submit"]
        assert [attrs["outcome"] for attrs in submits] == ["retried", "done"]
        # the structured log tells the same story under the same trace id.
        events = parse_log_lines(logger.stream.getvalue())
        retried = [record for record in events if record["event"] == "task.retried"]
        assert retried and retried[0]["trace_id"] == trace_id
        assert retried[0]["reason"] == "error_result"

    def test_dedup_replay_is_annotated_on_the_trace(self):
        service, owner, contributor, experiment = _service_with_queue()
        inner = InProcessClient(service, contributor.contributor_key)
        task = inner.next_tasks(experiment.id, count=1)[0]
        # duplicate delivery (faults.py injector): recorded once, and the
        # replay leaves a dedup-annotated submit span on the task's trace.
        client = UnreliableClient(
            inner, FaultInjector(FaultConfig(duplicate=1.0), seed=1))
        client.submit_result(task["id"], times=[0.1], error=None,
                             load_averages={}, extras={},
                             idempotency_key="k" * 32, attempt=task["attempts"])
        assert len(service.store.results(experiment.id)) == 1
        submits = [span for span in service.spans.spans(task["trace_id"])
                   if span["name"] == "submit"]
        assert [span["attributes"].get("dedup") for span in submits] == [False, True]
        assert submits[1]["attributes"]["outcome"] == "dedup"

    def test_dead_lettered_task_flight_entry_records_last_error(self):
        logger = JsonLogger()
        service, owner, contributor, experiment = _service_with_queue(
            logger=logger, max_attempts=1)
        task = service.next_task(contributor, experiment)
        trace_id = task.trace_id
        # the lease expires with the retry budget spent -> dead letter.
        task.assigned_at -= task.timeout_seconds + 1
        service.store.update("tasks", task)
        swept = service.expire_stuck_tasks(experiment)
        assert [item.status for item in swept] == [TaskStatus.DEAD_LETTER.value]

        entries = service.flight.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["trace_id"] == trace_id
        assert entry["outcome"] == "dead_letter"
        assert "lease expired" in entry["last_error"]
        span_names = [span["name"] for span in entry["spans"]]
        assert "claim" in span_names and "sweep" in span_names
        events = parse_log_lines(logger.stream.getvalue())
        dead = [record for record in events
                if record["event"] == "task.dead_lettered"]
        assert dead and dead[0]["trace_id"] == trace_id

    def test_flaky_engine_failures_keep_one_trace_per_task(self):
        service, owner, contributor, experiment = _service_with_queue(
            max_attempts=2)
        engine = FlakyEngine(ColumnEngine(_flaky_database()),
                             FaultInjector(FaultConfig(fail_task=1.0), seed=9))
        config = DriverConfig(key=contributor.contributor_key,
                              dbms="columnstore-1.0", host="laptop",
                              repeats=1, retries=0, trace_tasks=True)
        runner = BatchRunner(
            client=InProcessClient(service, contributor.contributor_key),
            engine=engine, config=config)
        runner.run_all(experiment.id)
        task = service.store.tasks(experiment.id)[0]
        assert task.status == TaskStatus.DEAD_LETTER.value
        spans = service.spans.spans(task.trace_id)
        execute_errors = [span["attributes"].get("error")
                          for span in spans if span["name"] == "driver.execute"]
        assert len(execute_errors) == 2  # one per attempt, same trace id
        assert all("injected fault" in error for error in execute_errors)
        assert service.flight.entries()[0]["outcome"] == "dead_letter"


# ---------------------------------------------------------------------------
# flight recorder retention
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_failures_always_kept_successes_compete_on_duration(self):
        recorder = FlightRecorder(capacity=2, slow_task_seconds=1.0)
        assert recorder.record(1, "t1", "dead_letter", duration=0.01) is not None
        assert recorder.record(2, "t2", "done", duration=0.5) is None  # fast
        assert recorder.record(3, "t3", "done", duration=1.5) is not None
        assert recorder.record(4, "t4", "done", duration=3.0) is not None
        assert recorder.record(5, "t5", "done", duration=1.2) is None  # evicted
        outcomes = [(entry["task"], entry["outcome"])
                    for entry in recorder.entries()]
        assert outcomes == [(1, "dead_letter"), (4, "done"), (3, "done")]

    def test_disabled_recorder_is_a_noop(self):
        recorder = FlightRecorder(capacity=0)
        assert not recorder.enabled
        assert recorder.record(1, "t1", "dead_letter", duration=9.0) is None
        assert len(recorder) == 0

    def test_jsonl_sink_feeds_the_timeline_reader(self, tmp_path):
        sink = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(capacity=4, slow_task_seconds=0.0,
                                  sink_path=str(sink))
        spans = [{"name": "claim", "trace_id": "ab" * 16, "span_id": "cd" * 8,
                  "parent_span_id": None, "start": 1.0, "end": 1.1,
                  "attributes": {"attempt": 1}}]
        recorder.record(7, "ab" * 16, "dead_letter", duration=2.0, spans=spans,
                        last_error="boom")
        loaded = read_span_log(sink)
        assert [record["span_id"] for record in loaded] == ["cd" * 8]
        timelines = stitch_timelines(span_sources=[loaded])
        assert timelines[0].trace_id == "ab" * 16
        assert timelines[0].attempts == 1


# ---------------------------------------------------------------------------
# the stitched end-to-end timeline (the acceptance scenario)
# ---------------------------------------------------------------------------


class TestStitchedTimeline:
    def _run_with_retry(self):
        """Enqueue one task, fault-inject a failed first attempt, then accept."""
        logger = JsonLogger()
        service, owner, contributor, experiment = _service_with_queue(
            logger=logger)
        engine = ColumnEngine(_flaky_database())
        config = DriverConfig(key=contributor.contributor_key,
                              dbms="columnstore-1.0", host="laptop",
                              repeats=1, retries=0, trace_tasks=True)
        # attempt 1: an injected execution fault -> error result -> retry.
        flaky = FlakyEngine(engine, FaultInjector(FaultConfig(fail_task=1.0),
                                                  seed=9))
        failing = BatchRunner(
            client=InProcessClient(service, contributor.contributor_key),
            engine=flaky, config=config, logger=logger)
        assert failing.run_batch(experiment.id, count=1) == 1
        # attempt 2: the healthy engine delivers the accepted result.
        healing = BatchRunner(
            client=InProcessClient(service, contributor.contributor_key),
            engine=engine, config=config, logger=logger)
        assert healing.run_batch(experiment.id, count=1) == 1
        return service, experiment, [failing, healing]

    def test_clean_fast_submission_keeps_spans_client_side(self):
        """Adaptive shipping: an uneventful first-attempt run ships no spans.

        The submitted extras still carry the trace id (analytics join on
        it), the driver's recorder still holds the spans locally, but the
        wire payload and the result store stay lean; only failed, retried
        or slow executions ship their span records (see the retry tests,
        whose server-side stitching depends on exactly that).
        """
        service, owner, contributor, experiment = _service_with_queue()
        engine = ColumnEngine(_flaky_database())
        config = DriverConfig(key=contributor.contributor_key,
                              dbms="columnstore-1.0", host="laptop",
                              repeats=1, retries=0, trace_tasks=True)
        runner = BatchRunner(
            client=InProcessClient(service, contributor.contributor_key),
            engine=engine, config=config)
        assert runner.run_batch(experiment.id, count=1) == 1

        record = service.store.results(experiment.id)[0]
        task = service.store.task(record.task_id)
        assert record.extras["trace_id"] == task.trace_id
        assert "spans" not in record.extras
        # the driver kept the task's spans locally.
        names = [span["name"] for span in runner.spans.spans(task.trace_id)]
        assert "driver.execute" in names and "engine.query" in names

    def test_single_trace_covers_enqueue_retry_and_acceptance(self):
        service, experiment, runners = self._run_with_retry()
        tasks = service.store.tasks(experiment.id)
        assert len(tasks) == 1
        task = tasks[0]
        assert task.status == TaskStatus.DONE.value and task.attempts == 2

        results = service.store.results(experiment.id)
        timelines = stitch_timelines(
            tasks=tasks, results=results,
            span_sources=[service.spans] + [runner.spans for runner in runners],
            profiles=profiles_by_trace(results))
        assert len(timelines) == 1
        timeline = timelines[0]
        assert timeline.trace_id == task.trace_id
        assert timeline.task_id == task.id
        assert timeline.outcome == "done"
        assert timeline.attempts == 2

        names = timeline.span_names()
        assert names.count("claim") == 2          # both claim attempts
        assert names.count("driver.execute") == 2  # failed + successful run
        assert "engine.query" in names             # the engine trace nests in
        submits = [span["attributes"]["outcome"] for span in timeline.spans
                   if span["name"] == "submit"]
        assert submits == ["retried", "done"]
        # the engine tree hangs under the driver's execute span.
        engine_roots = [span for span in timeline.spans
                        if span["name"] == "engine.query"]
        execute_ids = {span["span_id"] for span in timeline.spans
                       if span["name"] == "driver.execute"}
        assert engine_roots and all(span["parent_span_id"] in execute_ids
                                    for span in engine_roots)
        # derived phases: queue wait and execution are always measurable here.
        assert timeline.phases["queue_wait"] >= 0.0
        assert timeline.phases["execute"] > 0.0
        assert timeline.phases["submit"] >= 0.0
        # the engine profile joined on the same trace id.
        assert timeline.profile and timeline.profile["trace_id"] == task.trace_id

    def test_report_and_renderer_round_trip(self, tmp_path):
        service, experiment, runners = self._run_with_retry()
        tasks = service.store.tasks(experiment.id)
        results = service.store.results(experiment.id)
        timelines = stitch_timelines(tasks=tasks, results=results,
                                     span_sources=[service.spans])
        report = timeline_report(timelines)
        assert report["tasks"] == 1
        assert set(report["phase_totals"]) >= {"execute", "queue_wait"}
        # the artifact is valid JSON end to end.
        path = tmp_path / "timeline.json"
        path.write_text(json.dumps(report))
        assert json.loads(path.read_text())["tasks"] == 1
        rendered = "\n".join(timeline_lines(timelines))
        assert f"trace {timelines[0].trace_id[:12]}" in rendered
        assert "driver.execute" in rendered

    def test_driver_span_log_export(self, tmp_path):
        sink = tmp_path / "spans.jsonl"
        logger = JsonLogger()
        service, owner, contributor, experiment = _service_with_queue(
            logger=logger)
        config = DriverConfig(key=contributor.contributor_key,
                              dbms="columnstore-1.0", host="laptop",
                              repeats=1, retries=0, trace_tasks=True,
                              span_log=str(sink))
        runner = BatchRunner(
            client=InProcessClient(service, contributor.contributor_key),
            engine=ColumnEngine(_flaky_database()), config=config)
        runner.run_all(experiment.id)
        written = read_span_log(sink)
        assert written
        timelines = stitch_timelines(span_sources=[written])
        assert timelines and "driver.execute" in timelines[0].span_names()


# ---------------------------------------------------------------------------
# derived metrics and the profile join
# ---------------------------------------------------------------------------


class TestDerivedMetrics:
    def test_rates_derive_from_log_counters(self):
        registry = MetricsRegistry()
        logger = JsonLogger(registry=registry)
        registry.counter("tasks.dispatched").inc(10)
        registry.counter("tasks.enqueued").inc(8)
        for _ in range(2):
            logger.warning("task.retried", task=1)
        logger.error("task.dead_lettered", task=2)
        derived = registry.snapshot()["derived"]
        assert derived["tasks.retry_rate"] == pytest.approx(0.2)
        assert derived["tasks.dead_letter_rate"] == pytest.approx(1 / 8)

    def test_gauges_surface_in_snapshot(self):
        service, owner, contributor, experiment = _service_with_queue()
        service.expire_stuck_tasks(experiment)
        snapshot = service.metrics.snapshot()
        assert snapshot["gauges"]["queue.depth"] == 1.0
        assert snapshot["gauges"]["queue.oldest_lease_seconds"] == 0.0


class TestProfilesByTrace:
    def test_joins_profiles_on_trace_id(self):
        records = [
            {"extras": {"trace_id": "a" * 32,
                        "profile": {"trace_id": "a" * 32, "rows": 4}}},
            {"extras": {"profile": {"rows": 2}}},  # untraced: skipped
            {"extras": {"trace_id": "b" * 32}},    # traced, no profile
        ]
        joined = profiles_by_trace(records)
        assert joined["a" * 32]["rows"] == 4
        assert joined["b" * 32] == {}
        assert len(joined) == 2


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------


class TestCLI:
    def test_metrics_from_store_file(self, tmp_path, capsys):
        from repro.cli.main import main
        from repro.platform import Store
        from repro.platform.models import Task

        path = str(tmp_path / "queue.db")
        store = Store(path)
        store.insert("tasks", Task(experiment_id=1, query_sql="select 1",
                                   query_key="k", dbms_label="d", host_name="h"))
        store.close()
        assert main(["metrics", "--store", path]) == 0
        output = capsys.readouterr().out
        assert "queue.pending" in output and "results.stored" in output

    def test_metrics_requires_a_source(self, capsys):
        from repro.cli.main import main

        assert main(["metrics"]) == 2

    def test_timeline_renders_a_flight_log(self, tmp_path, capsys):
        from repro.cli.main import main

        recorder = FlightRecorder(capacity=4, slow_task_seconds=0.0,
                                  sink_path=str(tmp_path / "flight.jsonl"))
        spans = [{"name": "claim", "trace_id": "ab" * 16, "span_id": "cd" * 8,
                  "parent_span_id": None, "start": 1.0, "end": 1.2,
                  "attributes": {"attempt": 1}}]
        recorder.record(3, "ab" * 16, "dead_letter", duration=2.0, spans=spans)
        artifact = tmp_path / "timeline.json"
        assert main(["timeline", "--flight-log",
                     str(tmp_path / "flight.jsonl"),
                     "--json", str(artifact)]) == 0
        output = capsys.readouterr().out
        assert "claim" in output
        assert json.loads(artifact.read_text())["tasks"] == 1
