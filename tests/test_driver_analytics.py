"""Tests for the experiment driver, the data generators, analytics and reports."""

import pytest

from repro.analytics import (
    component_report,
    differential,
    experiment_history,
    grammar_view,
    pool_view,
    speedup_report,
)
from repro.data import generate_airtraffic, generate_ssb, generate_tpch
from repro.driver import DriverConfig, InProcessClient, load_config, measure_query
from repro.engine import ColumnEngine, Database
from repro.errors import ConfigError
from repro.reports import PAPER_TABLE2, table1_rows, table1_text, table2_rows, table2_text
from repro.reports.tpc_results import observations
from repro.workflow import run_demo_scenario


# ---------------------------------------------------------------------------
# data generators
# ---------------------------------------------------------------------------


class TestGenerators:
    def test_tpch_deterministic(self):
        first = generate_tpch(scale_factor=0.001, seed=1)
        second = generate_tpch(scale_factor=0.001, seed=1)
        assert first["lineitem"][:5] == second["lineitem"][:5]
        assert first.keys() == second.keys()

    def test_tpch_referential_integrity(self):
        tables = generate_tpch(scale_factor=0.001)
        order_keys = {row[0] for row in tables["orders"]}
        assert all(row[0] in order_keys for row in tables["lineitem"])
        nation_keys = {row[0] for row in tables["nation"]}
        assert all(row[3] in nation_keys for row in tables["customer"])

    def test_tpch_scales_with_factor(self):
        small = generate_tpch(scale_factor=0.001)
        larger = generate_tpch(scale_factor=0.005)
        assert len(larger["orders"]) > len(small["orders"])

    def test_ssb_star_schema(self):
        tables = generate_ssb(scale_factor=0.001)
        assert set(tables) == {"date_dim", "customer_dim", "supplier_dim", "part_dim",
                               "lineorder"}
        customer_keys = {row[0] for row in tables["customer_dim"]}
        assert all(row[2] in customer_keys for row in tables["lineorder"])

    def test_airtraffic_shape(self):
        tables = generate_airtraffic(flights=500)
        assert len(tables["flights"]) == 500
        airports = {row[0] for row in tables["airports"]}
        assert all(row[3] in airports and row[4] in airports for row in tables["flights"])

    def test_generators_populate_engine(self):
        from repro.data import populate_airtraffic, populate_ssb

        database = Database("mixed")
        populate_ssb(database, scale_factor=0.001)
        populate_airtraffic(database, flights=200)
        engine = ColumnEngine(database)
        assert engine.execute("select count(*) from lineorder").scalar() >= 200
        delayed = engine.execute(
            "select carrier_code, avg(arrival_delay) as delay from flights "
            "where cancelled = 0 group by carrier_code order by delay desc limit 3")
        assert len(delayed.rows) == 3


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


class TestDriver:
    def test_config_file_round_trip(self, tmp_path):
        config_path = tmp_path / "driver.ini"
        config_path.write_text(
            "[sqalpel]\nserver = http://localhost:1\nkey = abc\nproject = p\n"
            "experiment = 3\n\n[target]\ndbms = columnstore-1.0\nhost = laptop\n"
            "repeats = 7\ntimeout = 12.5\n")
        config = load_config(config_path)
        assert config.key == "abc" and config.repeats == 7
        assert config.timeout == pytest.approx(12.5)
        assert config.experiment == 3

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            DriverConfig(key="", dbms="x", host="y")
        with pytest.raises(ConfigError):
            DriverConfig(key="k", dbms="x", host="y", repeats=0)

    def test_missing_config_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_config(tmp_path / "absent.ini")

    def test_measure_query_repeats_and_load(self, column_engine):
        outcome = measure_query(column_engine, "select count(*) from lineitem", repeats=3)
        assert len(outcome.times) == 3
        assert outcome.best <= max(outcome.times)
        assert not outcome.failed
        assert outcome.extras["engine"] == column_engine.label

    def test_measure_query_captures_errors(self, column_engine):
        outcome = measure_query(column_engine, "select nosuchcolumn from lineitem", repeats=2)
        assert outcome.failed and outcome.times == []


# ---------------------------------------------------------------------------
# end-to-end demo + analytics
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def demo_summary():
    return run_demo_scenario(scale_factor=0.0005, pool_size=8, repeats=1, seed=3)


class TestWorkflowAndAnalytics:
    def test_demo_executes_queue(self, demo_summary):
        assert demo_summary.executed_tasks == len(demo_summary.pool) * 2
        assert demo_summary.service.queue_status(demo_summary.experiment)["done"] \
            == demo_summary.executed_tasks

    def test_speedup_report_covers_pool(self, demo_summary):
        report = demo_summary.speedup
        assert report is not None and len(report.points) >= 1
        low, high = report.spread()
        assert low <= high
        assert all(point.factor > 0 for point in report.points)

    def test_component_report_finds_terms(self, demo_summary):
        report = demo_summary.components
        assert report.dominant_term() is not None
        assert report.projection is None or report.projection.shape[1] <= 2

    def test_history_nodes_and_edges(self, demo_summary):
        history = demo_summary.history
        assert len(history.nodes) == len(demo_summary.pool)
        assert all(node.color for node in history.nodes)
        parents = {edge.parent_sequence for edge in history.edges}
        assert parents <= {node.sequence for node in history.nodes}

    def test_differential_between_two_entries(self, demo_summary):
        entries = demo_summary.pool.entries()
        diff = differential(demo_summary.pool, entries[0], entries[-1])
        assert diff.diff_lines, "expected a non-empty diff"
        assert diff.summary_rows()

    def test_views(self, demo_summary):
        from repro.core import parse_grammar

        grammar = parse_grammar(demo_summary.experiment.grammar_text)
        page = grammar_view(demo_summary.experiment.baseline_sql, grammar)
        assert page["rules"] > 3 and page["tags"] > 5
        pool_page = pool_view(demo_summary.pool)
        assert pool_page["size"] == len(demo_summary.pool)
        assert sum(pool_page["by_origin"].values()) == len(demo_summary.pool)

    def test_speedup_report_empty_without_measurements(self, q1_pool):
        assert speedup_report(q1_pool, "A", "B").points == []
        assert component_report(q1_pool, "A").contributions == []
        assert experiment_history(q1_pool, "A").measured_nodes() == []


# ---------------------------------------------------------------------------
# reports (Table 1 / Table 2)
# ---------------------------------------------------------------------------


class TestReports:
    def test_table1_matches_paper_rows(self):
        rows = {name: count for name, count, _ in table1_rows()}
        assert rows["TPC-C"] == 368
        assert rows["TPC-E"] == 77
        assert rows["TPC-DI"] == 0
        assert len(rows) == 14

    def test_table1_observations(self):
        facts = observations()
        assert facts["benchmarks_without_any_report"] == 4
        assert facts["max_reports_single_benchmark"] == 368

    def test_table1_text_renders(self):
        text = table1_text()
        assert "TPC-H SF-30000" in text

    def test_table2_rows_for_small_queries(self):
        rows = {name: (tags, templates, space)
                for name, tags, templates, space in table2_rows(limit=2000,
                                                                query_ids=[1, 6, 13, 14])}
        assert set(rows) == {"Q1", "Q6", "Q13", "Q14"}
        # Q6 and Q14 are tiny, Q1 is two orders of magnitude larger: the
        # paper's qualitative finding.
        assert int(rows["Q1"][2]) > 50 * int(rows["Q6"][2])

    def test_table2_text_includes_paper_columns(self):
        text = table2_text(limit=500, query_ids=[6, 14])
        assert "paper-templates" in text and "Q6" in text

    def test_paper_reference_table_complete(self):
        assert set(PAPER_TABLE2) == set(range(1, 23))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCLI:
    def test_table1_command(self, capsys):
        from repro.cli import main

        assert main(["table1"]) == 0
        assert "TPC-C" in capsys.readouterr().out

    def test_grammar_and_space_commands(self, tmp_path, capsys):
        from repro.cli import main

        sql_file = tmp_path / "q.sql"
        sql_file.write_text("select a, b from t where a = 1")
        assert main(["grammar", str(sql_file)]) == 0
        assert "l_project" in capsys.readouterr().out
        assert main(["space", str(sql_file)]) == 0
        assert "templates=" in capsys.readouterr().out

    def test_table2_command_subset(self, capsys):
        from repro.cli import main

        assert main(["table2", "--limit", "500", "--queries", "6,14"]) == 0
        output = capsys.readouterr().out
        assert "Q6" in output and "Q14" in output
