"""Transports the driver uses to talk to the platform.

Two interchangeable clients implement the same small protocol (`next_task`,
`next_tasks`, `submit_result`, `submit_results`, `results`) -- the plural
forms are the batched pipeline used by
:class:`repro.driver.runner.BatchRunner`, claiming N tasks and delivering N
results per round trip:

* :class:`HTTPClient` talks JSON over HTTP to a deployed
  :class:`repro.platform.webapp.PlatformServer` -- the remote-contributor
  setup of the paper, and
* :class:`InProcessClient` calls a :class:`PlatformService` directly -- used
  by tests, benchmarks and single-machine experiments.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Protocol

from repro.errors import TransportError
from repro.platform.models import Experiment, Task
from repro.platform.service import PlatformService


class PlatformClient(Protocol):
    """Protocol shared by the HTTP and in-process transports."""

    def next_task(self, experiment_id: int, dbms: str | None = None) -> dict | None: ...

    def next_tasks(self, experiment_id: int, count: int = 1,
                   dbms: str | None = None) -> list[dict]: ...

    def submit_result(self, task_id: int, times: list[float], error: str | None,
                      load_averages: dict, extras: dict) -> dict: ...

    def submit_results(self, results: list[dict]) -> list[dict]: ...

    def results(self, experiment_id: int) -> list[dict]: ...


class HTTPClient:
    """JSON-over-HTTP transport (the remote ``sqalpel.py`` setup)."""

    def __init__(self, base_url: str, contributor_key: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.contributor_key = contributor_key
        self.timeout = timeout

    # -- raw helpers -------------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict | list:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(url, data=data, method=method)
        request.add_header("Content-Type", "application/json")
        request.add_header("X-Sqalpel-Key", self.contributor_key)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            raise TransportError(f"{method} {path} failed with {exc.code}: {detail}") from exc
        except urllib.error.URLError as exc:
            raise TransportError(f"cannot reach the platform at {url}: {exc}") from exc

    def ping(self) -> dict:
        return self._request("GET", "/api/ping")

    # -- protocol ------------------------------------------------------------------

    def next_task(self, experiment_id: int, dbms: str | None = None) -> dict | None:
        payload = {"experiment": experiment_id}
        if dbms:
            payload["dbms"] = dbms
        response = self._request("POST", "/api/task", payload)
        return response.get("task")

    def next_tasks(self, experiment_id: int, count: int = 1,
                   dbms: str | None = None) -> list[dict]:
        payload = {"experiment": experiment_id, "count": count}
        if dbms:
            payload["dbms"] = dbms
        response = self._request("POST", "/api/tasks", payload)
        return response.get("tasks", [])

    def submit_result(self, task_id: int, times: list[float], error: str | None,
                      load_averages: dict, extras: dict) -> dict:
        payload = {
            "task": task_id,
            "times": times,
            "error": error,
            "load_averages": load_averages,
            "extras": extras,
        }
        response = self._request("POST", "/api/result", payload)
        return response.get("result", {})

    def submit_results(self, results: list[dict]) -> list[dict]:
        response = self._request("POST", "/api/results/batch", {"results": results})
        return response.get("results", [])

    def results(self, experiment_id: int) -> list[dict]:
        return self._request("GET", f"/api/results?experiment={experiment_id}")


class InProcessClient:
    """Direct transport over a :class:`PlatformService` instance."""

    def __init__(self, service: PlatformService, contributor_key: str):
        self.service = service
        self.contributor_key = contributor_key

    def _contributor(self):
        return self.service.authenticate(self.contributor_key)

    def _experiment(self, experiment_id: int) -> Experiment:
        return self.service.store.experiment(experiment_id)

    def next_task(self, experiment_id: int, dbms: str | None = None) -> dict | None:
        task = self.service.next_task(self._contributor(), self._experiment(experiment_id),
                                      dbms_label=dbms)
        return task.to_dict() if task is not None else None

    def next_tasks(self, experiment_id: int, count: int = 1,
                   dbms: str | None = None) -> list[dict]:
        tasks = self.service.next_tasks(self._contributor(),
                                        self._experiment(experiment_id),
                                        limit=count, dbms_label=dbms)
        return [task.to_dict() for task in tasks]

    def submit_result(self, task_id: int, times: list[float], error: str | None,
                      load_averages: dict, extras: dict) -> dict:
        task: Task = self.service.store.task(task_id)
        result = self.service.submit_result(self._contributor(), task, times=times,
                                            error=error, load_averages=load_averages,
                                            extras=extras)
        return result.to_dict()

    def submit_results(self, results: list[dict]) -> list[dict]:
        records = self.service.submit_results(self._contributor(), list(results))
        return [record.to_dict() for record in records]

    def results(self, experiment_id: int) -> list[dict]:
        experiment = self._experiment(experiment_id)
        viewer = self._contributor()
        return [record.to_dict() for record in self.service.results(experiment, viewer=viewer)]
