"""Transports the driver uses to talk to the platform.

Two interchangeable clients implement the same small protocol (`next_task`,
`next_tasks`, `submit_result`, `submit_results`, `results`) -- the plural
forms are the batched pipeline used by
:class:`repro.driver.runner.BatchRunner`, claiming N tasks and delivering N
results per round trip:

* :class:`HTTPClient` talks JSON over HTTP to a deployed
  :class:`repro.platform.webapp.PlatformServer` -- the remote-contributor
  setup of the paper, and
* :class:`InProcessClient` calls a :class:`PlatformService` directly -- used
  by tests, benchmarks and single-machine experiments.

:class:`HTTPClient` retries transient failures (connection errors, 5xx, 429)
with exponential backoff and *decorrelated jitter* (:class:`RetryPolicy`),
honouring a ``Retry-After`` header when the server sends one.  Retrying a
``POST`` is safe because result submissions carry client-generated
idempotency keys: a request whose response was lost replays the original
record server-side instead of inserting a duplicate.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import TransportError
from repro.obs import (
    NULL_LOGGER,
    JsonLogger,
    MetricsRegistry,
    SpanContext,
    current_context,
    new_span_id,
    new_trace_id,
)
from repro.platform.models import Experiment, Task
from repro.platform.service import PlatformService

#: HTTP statuses worth retrying: the platform is overloaded or restarting,
#: not rejecting the request.
TRANSIENT_HTTP_STATUSES = frozenset({429, 500, 502, 503, 504})


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for transient transport failures.

    ``attempts`` counts *retries* after the first try.  Delays follow the
    decorrelated-jitter scheme: each sleep is drawn uniformly from
    ``[base_delay, 3 * previous_sleep]`` and capped at ``max_delay``, which
    spreads retry storms without the synchronised waves plain exponential
    backoff produces.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    retry_statuses: frozenset = field(default_factory=lambda: TRANSIENT_HTTP_STATUSES)

    def next_delay(self, previous: float, rng: random.Random) -> float:
        """The next decorrelated-jitter sleep given the ``previous`` one."""
        return min(self.max_delay,
                   rng.uniform(self.base_delay, max(previous, self.base_delay) * 3))


def _retry_after_seconds(exc: urllib.error.HTTPError) -> float | None:
    """Parse a numeric ``Retry-After`` header (None when absent/unparseable)."""
    raw = exc.headers.get("Retry-After") if exc.headers is not None else None
    if raw is None:
        return None
    try:
        return max(0.0, float(raw))
    except ValueError:  # an HTTP-date; fall back to the backoff schedule
        return None


class PlatformClient(Protocol):
    """Protocol shared by the HTTP and in-process transports."""

    def next_task(self, experiment_id: int, dbms: str | None = None) -> dict | None: ...

    def next_tasks(self, experiment_id: int, count: int = 1,
                   dbms: str | None = None) -> list[dict]: ...

    def submit_result(self, task_id: int, times: list[float], error: str | None,
                      load_averages: dict, extras: dict,
                      idempotency_key: str | None = None,
                      attempt: int | None = None) -> dict | None: ...

    def submit_results(self, results: list[dict]) -> list[dict | None]: ...

    def results(self, experiment_id: int) -> list[dict]: ...


class HTTPClient:
    """JSON-over-HTTP transport (the remote ``sqalpel.py`` setup).

    Transient failures -- ``URLError`` (the platform is unreachable) and the
    HTTP statuses in ``retry.retry_statuses`` -- are retried per
    :class:`RetryPolicy`; pass ``retry=None`` to fail fast.  ``metrics``
    (optional) counts every performed retry under ``client.retries``.
    ``rng`` seeds the jitter for deterministic tests.
    """

    def __init__(self, base_url: str, contributor_key: str, timeout: float = 30.0,
                 retry: RetryPolicy | None = RetryPolicy(),
                 metrics: MetricsRegistry | None = None,
                 rng: random.Random | None = None,
                 logger: JsonLogger | None = None):
        self.base_url = base_url.rstrip("/")
        self.contributor_key = contributor_key
        self.timeout = timeout
        self.retry = retry
        self.metrics = metrics
        self.log = (logger or NULL_LOGGER).bind("client")
        self._rng = rng or random.Random()

    # -- raw helpers -------------------------------------------------------------

    def _request_once(self, method: str, path: str, payload: dict | None,
                      context: SpanContext) -> dict | list:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(url, data=data, method=method)
        request.add_header("Content-Type", "application/json")
        request.add_header("X-Sqalpel-Key", self.contributor_key)
        request.add_header("Traceparent", context.to_traceparent())
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return json.loads(response.read().decode("utf-8"))

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict | list:
        policy = self.retry
        attempts = policy.attempts if policy is not None else 0
        delay = policy.base_delay if policy is not None else 0.0
        # one traceparent per logical request, continuing the ambient span
        # context when there is one (e.g. the driver executing a traced
        # task); retries reuse it, so the server-side ``http`` spans of
        # every attempt share a trace id.
        context = current_context() or SpanContext(new_trace_id(), new_span_id())
        for attempt in range(attempts + 1):
            try:
                return self._request_once(method, path, payload, context)
            except urllib.error.HTTPError as exc:
                detail = exc.read().decode("utf-8", errors="replace")
                transient = policy is not None and exc.code in policy.retry_statuses
                if not transient or attempt == attempts:
                    raise TransportError(
                        f"{method} {path} failed with {exc.code}: {detail}") from exc
                # the server knows best when it will recover; fall back to
                # decorrelated jitter when it does not say.
                retry_after = _retry_after_seconds(exc)
                delay = (min(retry_after, policy.max_delay)
                         if retry_after is not None
                         else policy.next_delay(delay, self._rng))
                self.log.warning("client.retry", method=method, path=path,
                                 status=exc.code, delay=delay,
                                 attempt=attempt + 1,
                                 trace_id=context.trace_id)
            except (urllib.error.URLError, TimeoutError) as exc:
                if policy is None or attempt == attempts:
                    raise TransportError(
                        f"cannot reach the platform at {self.base_url}{path}: {exc}"
                    ) from exc
                delay = policy.next_delay(delay, self._rng)
                self.log.warning("client.retry", method=method, path=path,
                                 error=str(exc), delay=delay,
                                 attempt=attempt + 1,
                                 trace_id=context.trace_id)
            if self.metrics is not None:
                self.metrics.counter("client.retries").inc()
            time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def ping(self) -> dict:
        return self._request("GET", "/api/ping")

    # -- protocol ------------------------------------------------------------------

    def next_task(self, experiment_id: int, dbms: str | None = None) -> dict | None:
        payload = {"experiment": experiment_id}
        if dbms:
            payload["dbms"] = dbms
        response = self._request("POST", "/api/task", payload)
        return response.get("task")

    def next_tasks(self, experiment_id: int, count: int = 1,
                   dbms: str | None = None) -> list[dict]:
        payload = {"experiment": experiment_id, "count": count}
        if dbms:
            payload["dbms"] = dbms
        response = self._request("POST", "/api/tasks", payload)
        return response.get("tasks", [])

    def submit_result(self, task_id: int, times: list[float], error: str | None,
                      load_averages: dict, extras: dict,
                      idempotency_key: str | None = None,
                      attempt: int | None = None) -> dict | None:
        payload = {
            "task": task_id,
            "times": times,
            "error": error,
            "load_averages": load_averages,
            "extras": extras,
            "idempotency_key": idempotency_key,
            "attempt": attempt,
        }
        response = self._request("POST", "/api/result", payload)
        return response.get("result")

    def submit_results(self, results: list[dict]) -> list[dict | None]:
        response = self._request("POST", "/api/results/batch", {"results": results})
        return response.get("results", [])

    def results(self, experiment_id: int) -> list[dict]:
        return self._request("GET", f"/api/results?experiment={experiment_id}")


class InProcessClient:
    """Direct transport over a :class:`PlatformService` instance."""

    def __init__(self, service: PlatformService, contributor_key: str):
        self.service = service
        self.contributor_key = contributor_key

    def _contributor(self):
        return self.service.authenticate(self.contributor_key)

    def _experiment(self, experiment_id: int) -> Experiment:
        return self.service.store.experiment(experiment_id)

    def next_task(self, experiment_id: int, dbms: str | None = None) -> dict | None:
        task = self.service.next_task(self._contributor(), self._experiment(experiment_id),
                                      dbms_label=dbms)
        return task.to_dict() if task is not None else None

    def next_tasks(self, experiment_id: int, count: int = 1,
                   dbms: str | None = None) -> list[dict]:
        tasks = self.service.next_tasks(self._contributor(),
                                        self._experiment(experiment_id),
                                        limit=count, dbms_label=dbms)
        return [task.to_dict() for task in tasks]

    def submit_result(self, task_id: int, times: list[float], error: str | None,
                      load_averages: dict, extras: dict,
                      idempotency_key: str | None = None,
                      attempt: int | None = None) -> dict | None:
        task: Task = self.service.store.task(task_id)
        result = self.service.submit_result(self._contributor(), task, times=times,
                                            error=error, load_averages=load_averages,
                                            extras=extras,
                                            idempotency_key=idempotency_key,
                                            attempt=attempt)
        return result.to_dict() if result is not None else None

    def submit_results(self, results: list[dict]) -> list[dict | None]:
        records = self.service.submit_results(self._contributor(), list(results))
        return [record.to_dict() if record is not None else None
                for record in records]

    def results(self, experiment_id: int) -> list[dict]:
        experiment = self._experiment(experiment_id)
        viewer = self._contributor()
        return [record.to_dict() for record in self.service.results(experiment, viewer=viewer)]
