"""Driver configuration.

"The experiment driver is locally controlled using a configuration file.  It
specifies the DBMS and host used in the experimental run and the project
contributed to.  Furthermore, it uses a separately supplied key to identify
the source of the results without disclosing the contributor's identity."

The configuration file uses INI syntax (``configparser``), e.g.::

    [sqalpel]
    server = http://127.0.0.1:8080
    key = 6f1f7...
    project = tpch-sf001
    experiment = 1

    [target]
    dbms = columnstore-1.0
    host = laptop
    repeats = 5
    timeout = 60
    batch_size = 8
    workers = 1
    engine_workers = 1
    retries = 4
    retry_delay = 0.05

``batch_size`` and ``workers`` drive the batched pipeline
(:class:`repro.driver.runner.BatchRunner`).  ``workers`` above 1 measures
tasks concurrently and therefore inflates the recorded wall-clock times
(GIL contention); keep it at 1 when the timings matter.  Batches measured
with ``workers`` above 1 carry ``extras["concurrent_workers"]`` so the
analytics side can flag them.  ``engine_workers`` is a different knob
entirely: it sets :attr:`repro.engine.engine.EngineOptions.workers`
(morsel-parallel execution inside the column engine) for locally-built
targets and does not compromise timing fidelity.  ``retries`` and
``retry_delay`` bound the runner's retry loop around failed platform round
trips (decorrelated-jitter backoff; submissions stay safe to retry because
they carry idempotency keys).

An optional ``[telemetry]`` section configures the driver's tracing::

    [telemetry]
    enabled = true
    trace_tasks = true
    span_capacity = 2048
    flight_capacity = 32
    slow_task_seconds = 1.0
    span_log = /tmp/driver-spans.jsonl
    flight_log = /tmp/flight.jsonl

``trace_tasks`` turns on per-task driver spans (claim/execute/submit plus
the engine's nested ``QueryTrace``); ``span_log`` appends every recorded
span as JSONL when a drain finishes, ready for
``analytics/timeline.py`` / the CLI ``timeline`` subcommand.  The
remaining knobs mirror :class:`repro.obs.TelemetryConfig` (shared with
the service's flight recorder).
"""

from __future__ import annotations

import configparser
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.obs import TelemetryConfig


@dataclass
class DriverConfig:
    """Validated driver configuration."""

    key: str
    dbms: str
    host: str
    server: str | None = None
    project: str | None = None
    experiment: int | None = None
    repeats: int = 5
    timeout: float = 60.0
    batch_size: int = 8
    workers: int = 1
    engine_workers: int = 1
    #: how many times the runner retries a failed platform round trip
    #: (claiming or submitting) before giving up on it; idempotency keys make
    #: retried submissions safe.  0 disables retries.
    retries: int = 4
    #: base delay of the decorrelated-jitter backoff between retries.
    retry_delay: float = 0.05
    #: record per-task driver spans (execute / submit / backoff, with the
    #: engine's QueryTrace nested under the execute span).
    trace_tasks: bool = False
    #: JSONL file the runner appends its recorded spans to after a drain.
    span_log: str | None = None
    #: shared telemetry knobs (span/flight capacities, slow threshold, sinks).
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.key:
            raise ConfigError("the contributor key is required")
        if not self.dbms:
            raise ConfigError("the target DBMS label is required")
        if not self.host:
            raise ConfigError("the host name is required")
        if self.repeats <= 0:
            raise ConfigError("repeats must be a positive integer")
        if self.timeout <= 0:
            raise ConfigError("timeout must be positive")
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be a positive integer")
        if self.workers <= 0:
            raise ConfigError("workers must be a positive integer")
        if self.engine_workers <= 0:
            raise ConfigError("engine_workers must be a positive integer")
        if self.retries < 0:
            raise ConfigError("retries must not be negative")
        if self.retry_delay < 0:
            raise ConfigError("retry_delay must not be negative")


def load_config(path: str | Path) -> DriverConfig:
    """Read and validate a driver configuration file."""
    parser = configparser.ConfigParser()
    read = parser.read(str(path))
    if not read:
        raise ConfigError(f"cannot read configuration file '{path}'")
    if "sqalpel" not in parser:
        raise ConfigError("the configuration must contain a [sqalpel] section")
    sqalpel = parser["sqalpel"]
    target = parser["target"] if "target" in parser else {}

    experiment_raw = sqalpel.get("experiment", "")
    try:
        experiment = int(experiment_raw) if experiment_raw else None
    except ValueError:
        raise ConfigError("experiment must be an integer id") from None

    try:
        repeats = int(target.get("repeats", "5"))
        timeout = float(target.get("timeout", "60"))
        batch_size = int(target.get("batch_size", "8"))
        workers = int(target.get("workers", "1"))
        engine_workers = int(target.get("engine_workers", "1"))
        retries = int(target.get("retries", "4"))
        retry_delay = float(target.get("retry_delay", "0.05"))
    except ValueError:
        raise ConfigError("repeats, batch_size, workers and retries must be "
                          "integers and timeout/retry_delay numbers") from None

    extras = {
        key: value
        for key, value in (parser["extras"].items() if "extras" in parser else [])
    }
    telemetry_section = dict(parser["telemetry"]) if "telemetry" in parser else {}
    try:
        telemetry = TelemetryConfig.from_mapping(telemetry_section)
    except ValueError:
        raise ConfigError("span_capacity/flight_capacity must be integers and "
                          "slow_task_seconds a number") from None
    trace_tasks = telemetry.enabled and str(
        telemetry_section.get("trace_tasks", "false")).strip().lower() \
        in ("1", "true", "yes", "on")
    return DriverConfig(
        key=sqalpel.get("key", ""),
        dbms=target.get("dbms", sqalpel.get("dbms", "")),
        host=target.get("host", sqalpel.get("host", "")),
        server=sqalpel.get("server") or None,
        project=sqalpel.get("project") or None,
        experiment=experiment,
        repeats=repeats,
        timeout=timeout,
        batch_size=batch_size,
        workers=workers,
        engine_workers=engine_workers,
        retries=retries,
        retry_delay=retry_delay,
        trace_tasks=trace_tasks,
        span_log=telemetry.span_log,
        telemetry=telemetry,
        extras=extras,
    )
