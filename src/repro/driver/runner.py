"""The driver's execution loop.

"Its basic interaction is to call the sqalpel webserver for a task from a
project/experiment pool, execute it, and report the findings. [...] By default
each experiment is run five times and the wall clock time for each step is
reported.  When available, the system load at the beginning and end of the
experimental run is kept around. [...] An open-ended key-value list structure
can be returned to keep system specific performance indicators for post
inspection."

Two drivers share :func:`measure_query`:

* :class:`ExperimentDriver` is the paper's one-task-at-a-time loop,
* :class:`BatchRunner` is the batched pipeline: it claims N tasks per round
  trip, prepares each distinct query's plan exactly once (plan-once/
  execute-many), optionally fans the measurements across a thread pool, and
  delivers the whole batch of results in a single submission.
"""

from __future__ import annotations

import os
import random
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.driver.client import PlatformClient, RetryPolicy
from repro.driver.config import DriverConfig
from repro.engine.engine import Engine
from repro.engine.plan import QueryPlan
from repro.errors import TransportError
from repro.obs import (
    NULL_LOGGER,
    JsonLogger,
    MetricsRegistry,
    QueryTrace,
    SpanContext,
    SpanRecorder,
    export_query_trace,
    new_span_id,
    use_context,
    write_span_log,
)
from repro.sqlparser import ast
from repro.sqlparser.printer import to_sql


def read_load_averages() -> dict:
    """Return the 1/5/15-minute CPU load averages (empty when unavailable)."""
    try:
        one, five, fifteen = os.getloadavg()
    except (AttributeError, OSError):  # pragma: no cover - non-POSIX platforms
        return {}
    return {"load1": one, "load5": five, "load15": fifteen}


@dataclass
class RunOutcome:
    """Measurements of one query executed by the driver."""

    sql: str
    times: list[float] = field(default_factory=list)
    error: str | None = None
    rows: int = 0
    load_before: dict = field(default_factory=dict)
    load_after: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    timed_out: bool = False
    #: engine span tree of the first repetition when tracing was requested.
    trace: QueryTrace | None = None

    @property
    def best(self) -> float | None:
        return min(self.times) if self.times else None

    @property
    def failed(self) -> bool:
        return self.error is not None


def measure_query(engine: Engine, query: "str | ast.Select | QueryPlan",
                  repeats: int = 5, timeout: float | None = None,
                  trace: bool = False) -> RunOutcome:
    """Run ``query`` ``repeats`` times on ``engine`` and collect execution times.

    The query is prepared (parsed and planned) exactly once; every repetition
    executes the prepared plan and reports :attr:`QueryResult.elapsed`, i.e.
    pure execution time -- planning is not double-counted into the timings.

    Errors are captured, not raised: a failing query is a first-class outcome
    in SQALPEL (it shows up as a yellow node in the experiment history).

    Timeout semantics: the budget is checked after each repetition, so one
    over-budget repetition is still *recorded* but flagged
    (``extras["timed_out"] = True``) and the remaining repetitions are
    skipped.  ``rows`` keeps the count of the last successful repetition even
    when a later repetition fails.

    ``trace=True`` records the engine's span tree (``QueryTrace``) for the
    *first* repetition only and attaches it as :attr:`RunOutcome.trace` --
    one traced repetition gives the timeline its operator breakdown while
    the remaining repetitions keep their timing fidelity.
    """
    if isinstance(query, str):
        sql = query
    elif isinstance(query, QueryPlan):
        sql = query.sql
    else:
        sql = to_sql(query)
    outcome = RunOutcome(sql=sql, load_before=read_load_averages())

    plan: QueryPlan | None = None
    try:
        plan = engine.prepare(query)
    except Exception as exc:
        outcome.error = f"{type(exc).__name__}: {exc}"

    profile: dict | None = None
    if plan is not None:
        for repetition in range(repeats):
            try:
                # pass ``trace`` only when tracing this repetition: stub
                # engines in tests (and any duck-typed engine) need not know
                # the keyword unless tracing is actually requested.
                if trace and repetition == 0:
                    result = engine.execute(plan, trace=True)
                else:
                    result = engine.execute(plan)
            except Exception as exc:
                outcome.error = f"{type(exc).__name__}: {exc}"
                break
            outcome.times.append(result.elapsed)
            outcome.rows = len(result.rows)
            profile = result.profile()
            if repetition == 0 and trace:
                outcome.trace = getattr(result, "trace", None)
            if timeout is not None and result.elapsed > timeout:
                outcome.timed_out = True
                break

    outcome.load_after = read_load_averages()
    outcome.extras = {
        "engine": engine.label,
        "strategy": engine.strategy(),
        "rows": outcome.rows,
        "options": engine.options.describe(),
    }
    if profile is not None:
        # compact per-query profile of the last repetition: phase timings,
        # scan efficiency and cache behaviour ride along with the submitted
        # result, so the platform's analytics can aggregate them.
        outcome.extras["profile"] = profile
    if outcome.timed_out:
        outcome.extras["timed_out"] = True
    return outcome


@dataclass
class ExperimentDriver:
    """Pulls tasks from the platform one at a time, runs them, reports back."""

    client: PlatformClient
    engine: Engine
    config: DriverConfig

    def run_once(self, experiment_id: int) -> dict | None:
        """Fetch and execute a single task; return the submitted result payload."""
        task = self.client.next_task(experiment_id, dbms=self.config.dbms)
        if task is None:
            return None
        outcome = measure_query(self.engine, task["query_sql"],
                                repeats=self.config.repeats,
                                timeout=self.config.timeout,
                                trace=self.config.trace_tasks)
        trace_id = task.get("trace_id")
        if trace_id:
            # the submitted extras (and the engine profile inside them) carry
            # the task's trace id so platform-side analytics can join them
            # to the stitched timeline instead of aggregating blind.
            outcome.extras["trace_id"] = trace_id
            profile = outcome.extras.get("profile")
            if isinstance(profile, dict):
                profile["trace_id"] = trace_id
        load = {"before": outcome.load_before, "after": outcome.load_after}
        submit_context = SpanContext(trace_id, new_span_id()) if trace_id else None
        with use_context(submit_context):
            return self.client.submit_result(
                task_id=task["id"],
                times=outcome.times,
                error=outcome.error,
                load_averages=load,
                extras=outcome.extras,
                idempotency_key=uuid.uuid4().hex,
                attempt=task.get("attempts"),
            )

    def run_all(self, experiment_id: int, max_tasks: int | None = None) -> int:
        """Drain the experiment's queue; return how many tasks were executed."""
        executed = 0
        while max_tasks is None or executed < max_tasks:
            submitted = self.run_once(experiment_id)
            if submitted is None:
                break
            executed += 1
        return executed


@dataclass
class BatchRunner:
    """The batched driver pipeline: claim N tasks, plan once, execute many.

    Per batch the runner

    1. claims up to ``config.batch_size`` tasks in one round trip,
    2. groups them by query text and prepares each distinct query's plan
       exactly once through the engine's plan cache,
    3. measures every task (``config.repeats`` repetitions of the prepared
       plan), optionally fanning tasks across ``config.workers`` threads,
    4. submits the whole batch of results in one round trip.

    ``workers > 1`` trades timing fidelity for throughput: concurrent
    in-process measurements contend for the GIL, inflating each other's
    wall-clock times.  Use it for correctness sweeps and smoke runs, keep
    the default of 1 worker whenever the timings feed a discriminative
    verdict.

    Fault tolerance: every platform round trip is retried up to
    ``config.retries`` times with decorrelated-jitter backoff
    (``config.retry_delay`` base).  Each measured outcome gets a fresh
    idempotency key *before* the first submission attempt and keeps it across
    retries, so a batch whose response was lost can be resubmitted blindly --
    the platform replays already-accepted entries instead of duplicating
    them.  When the whole batch keeps failing, the runner degrades to
    per-result submission so one poison entry (or an unlucky fault) cannot
    strand its batch-mates; results it ultimately cannot deliver are left to
    the platform's lease expiry to reschedule.  ``metrics`` (optional) counts
    ``client.retries``, ``client.batch_splits`` and ``client.gave_up``.

    Telemetry: with ``config.trace_tasks`` on, every task execution records
    driver-side spans into ``spans`` under the task's platform-minted trace
    id -- ``driver.execute`` (nesting the engine's ``QueryTrace`` from the
    first repetition), ``driver.submit``, and ``driver.backoff`` around
    retry sleeps.  The submitted extras always carry the trace id; the span
    records themselves ride along when the execution is worth server-side
    stitching (failed, retried, or slow -- see ``_ship_spans``), so the
    server can flight-record a complete timeline without every clean fast
    submission paying the shipping cost.
    ``logger`` (optional) makes retry/degradation decisions structured log
    events.
    """

    client: PlatformClient
    engine: Engine
    config: DriverConfig
    metrics: MetricsRegistry | None = None
    rng: random.Random = field(default_factory=random.Random)
    logger: JsonLogger | None = None
    spans: SpanRecorder | None = None

    def __post_init__(self) -> None:
        self.log = (self.logger or NULL_LOGGER).bind("driver")
        if self.spans is None and self.config.trace_tasks:
            self.spans = SpanRecorder(self.config.telemetry.span_capacity or 2048)

    def _count(self, name: str, amount: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _with_retries(self, call, operation: str = "",
                      trace_ids: tuple | list = ()):
        """Run ``call`` retrying ``TransportError`` with decorrelated jitter.

        Retry sleeps are recorded as ``driver.backoff`` spans on every trace
        id in ``trace_ids`` (the tasks whose delivery is waiting on the
        backoff), so stitched timelines show backoff waits as their own
        phase.
        """
        policy = RetryPolicy(attempts=self.config.retries,
                             base_delay=self.config.retry_delay)
        delay = policy.base_delay
        for attempt in range(policy.attempts + 1):
            try:
                return call()
            except TransportError as exc:
                if attempt == policy.attempts:
                    raise
                self._count("client.retries")
                delay = policy.next_delay(delay, self.rng)
                self.log.warning("client.retry", operation=operation or None,
                                 attempt=attempt + 1, delay=delay,
                                 error=str(exc))
                slept_at = time.time()
                time.sleep(delay)
                if self.spans is not None:
                    for trace_id in trace_ids:
                        self.spans.record("driver.backoff", trace_id,
                                          start=slept_at,
                                          operation=operation or None,
                                          attempt=attempt + 1, delay=delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def run_batch(self, experiment_id: int, count: int | None = None) -> int:
        """Claim and execute one batch; return how many tasks were executed."""
        batch_size = count if count is not None else self.config.batch_size
        tasks = self._with_retries(
            lambda: self.client.next_tasks(experiment_id, count=batch_size,
                                           dbms=self.config.dbms),
            operation="claim")
        if not tasks:
            return 0

        plans: dict[str, QueryPlan | None] = {}
        for task in tasks:
            sql = task["query_sql"]
            if sql not in plans:
                try:
                    plans[sql] = self.engine.prepare(sql)
                except Exception:
                    # leave the error to measure_query, which records it as a
                    # first-class failed outcome for this task.
                    plans[sql] = None

        def run(task: dict) -> RunOutcome:
            sql = task["query_sql"]
            prepared = plans.get(sql)
            started = time.time()
            outcome = measure_query(self.engine,
                                    prepared if prepared is not None else sql,
                                    repeats=self.config.repeats,
                                    timeout=self.config.timeout,
                                    trace=self.spans is not None)
            if self.spans is not None and task.get("trace_id"):
                execute_span = self.spans.record(
                    "driver.execute", task["trace_id"],
                    start=started, end=time.time(),
                    task=task.get("id"), attempt=task.get("attempts"),
                    rows=outcome.rows, repeats=len(outcome.times),
                    error=outcome.error)
                if outcome.trace is not None:
                    # the engine's whole span tree nests under this task's
                    # execute span: one trace id covers SQL parse -> morsel
                    # workers -> HTTP submit.
                    export_query_trace(outcome.trace, task["trace_id"],
                                       parent_span_id=execute_span["span_id"],
                                       recorder=self.spans)
            return outcome

        if self.config.workers > 1:
            with ThreadPoolExecutor(max_workers=self.config.workers) as pool:
                outcomes = list(pool.map(run, tasks))
            for outcome in outcomes:
                # concurrent measurements contend for the GIL; stamp every
                # outcome so the analytics side can flag the submission and
                # keep its timings out of fidelity-sensitive aggregates.
                outcome.extras["concurrent_workers"] = self.config.workers
        else:
            outcomes = [run(task) for task in tasks]

        for task, outcome in zip(tasks, outcomes):
            trace_id = task.get("trace_id")
            if not trace_id:
                continue
            # the submitted extras (and the engine profile inside them)
            # carry the task's trace id so platform-side analytics can join
            # engine stats to the stitched timeline; with tracing on, the
            # driver's span records for this task ride along too.
            outcome.extras["trace_id"] = trace_id
            profile = outcome.extras.get("profile")
            if isinstance(profile, dict):
                profile["trace_id"] = trace_id
            if self.spans is not None and self._ship_spans(task, outcome):
                outcome.extras["spans"] = self.spans.spans(trace_id)

        submissions = [
            {
                "task": task["id"],
                "times": outcome.times,
                "error": outcome.error,
                "load_averages": {"before": outcome.load_before,
                                  "after": outcome.load_after},
                "extras": outcome.extras,
                # one key per task *execution*, minted before the first
                # submission attempt and reused across retries.
                "idempotency_key": uuid.uuid4().hex,
                # echo the lease's attempt number so the platform can fence
                # out this submission if the lease was reassigned meanwhile.
                "attempt": task.get("attempts"),
            }
            for task, outcome in zip(tasks, outcomes)
        ]
        self._submit(submissions)
        return len(tasks)

    def _ship_spans(self, task: dict, outcome: RunOutcome) -> bool:
        """Whether this submission carries the driver's span records.

        Spans ride along when the task's story is worth server-side
        stitching -- a failure, a retried task, or an execution that
        cleared the slow-task threshold (the same cases the server's
        flight recorder retains).  The uneventful fast path keeps its
        spans client-side (still exportable via ``span_log``), so clean
        submissions stay lean on the wire and in the result store.
        """
        if outcome.error is not None:
            return True
        if (task.get("attempts") or 0) > 1:
            return True
        return sum(outcome.times) >= self.config.telemetry.slow_task_seconds

    def _trace_ids(self, submissions: list[dict]) -> list[str]:
        return [trace_id for trace_id in
                ((submission.get("extras") or {}).get("trace_id")
                 for submission in submissions) if trace_id]

    def _record_submit(self, submissions: list[dict], started: float,
                       mode: str) -> None:
        if self.spans is None:
            return
        ended = time.time()
        for submission in submissions:
            trace_id = (submission.get("extras") or {}).get("trace_id")
            if trace_id:
                self.spans.record("driver.submit", trace_id,
                                  start=started, end=ended,
                                  task=submission.get("task"),
                                  attempt=submission.get("attempt"), mode=mode)

    def _submit_context(self, submissions: list[dict]) -> "use_context":
        """Ambient span context for a submission round trip.

        A single-task submission inherits its task's trace id, so the
        ``traceparent`` the HTTP client stamps makes the server-side
        ``http`` span part of the task's own timeline; a multi-task batch
        gets request-level correlation only (the client mints a fresh id).
        """
        trace_ids = self._trace_ids(submissions)
        if len(submissions) == 1 and len(trace_ids) == 1:
            return use_context(SpanContext(trace_ids[0], new_span_id()))
        return use_context(None)

    def _submit(self, submissions: list[dict]) -> None:
        """Deliver ``submissions``, degrading from batch to per-result mode."""
        trace_ids = self._trace_ids(submissions)
        started = time.time()
        try:
            with self._submit_context(submissions):
                self._with_retries(
                    lambda: self.client.submit_results(submissions),
                    operation="submit", trace_ids=trace_ids)
            self._record_submit(submissions, started, "batch")
            return
        except TransportError:
            self._count("client.batch_splits")
            self.log.warning("client.batch_split", batch=len(submissions))
        # the batch round trip kept failing; isolate each result so the
        # deliverable ones land.  Keys stay the same, so entries that were
        # accepted by a processed-but-unacknowledged batch attempt are
        # replayed, not duplicated.
        for submission in submissions:
            started = time.time()
            try:
                with self._submit_context([submission]):
                    self._with_retries(
                        lambda entry=submission: self.client.submit_results([entry]),
                        operation="submit",
                        trace_ids=self._trace_ids([submission]))
                self._record_submit([submission], started, "single")
            except TransportError as exc:
                # undeliverable: the platform's lease expiry will reschedule
                # the task; losing the measurement is the contract here.
                self._count("client.gave_up")
                self.log.error("client.gave_up", task=submission.get("task"),
                               error=str(exc))

    def run_all(self, experiment_id: int, max_tasks: int | None = None) -> int:
        """Drain the experiment's queue batch by batch; return the task count.

        A batch whose *claim* round trip keeps failing ends the drain (the
        queue is unreachable, not empty); submission failures are absorbed
        per batch by :meth:`_submit`.
        """
        executed = 0
        while max_tasks is None or executed < max_tasks:
            remaining = None if max_tasks is None else max_tasks - executed
            count = (self.config.batch_size if remaining is None
                     else min(self.config.batch_size, remaining))
            try:
                ran = self.run_batch(experiment_id, count=count)
            except TransportError:
                self._count("client.claim_failures")
                self.log.error("client.claim_failed", experiment=experiment_id)
                break
            if ran == 0:
                break
            executed += ran
        self.export_spans()
        return executed

    def export_spans(self, path: str | None = None) -> int:
        """Append the recorded driver spans to a JSONL file.

        ``path`` defaults to ``config.span_log``; returns how many records
        were written (0 when tracing is off or no sink is configured).
        """
        sink = path or self.config.span_log
        if self.spans is None or not sink:
            return 0
        return write_span_log(sink, self.spans.spans())
