"""The driver's execution loop.

"Its basic interaction is to call the sqalpel webserver for a task from a
project/experiment pool, execute it, and report the findings. [...] By default
each experiment is run five times and the wall clock time for each step is
reported.  When available, the system load at the beginning and end of the
experimental run is kept around. [...] An open-ended key-value list structure
can be returned to keep system specific performance indicators for post
inspection."
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.driver.client import PlatformClient
from repro.driver.config import DriverConfig
from repro.engine.engine import Engine


def read_load_averages() -> dict:
    """Return the 1/5/15-minute CPU load averages (empty when unavailable)."""
    try:
        one, five, fifteen = os.getloadavg()
    except (AttributeError, OSError):  # pragma: no cover - non-POSIX platforms
        return {}
    return {"load1": one, "load5": five, "load15": fifteen}


@dataclass
class RunOutcome:
    """Measurements of one query executed by the driver."""

    sql: str
    times: list[float] = field(default_factory=list)
    error: str | None = None
    rows: int = 0
    load_before: dict = field(default_factory=dict)
    load_after: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def best(self) -> float | None:
        return min(self.times) if self.times else None

    @property
    def failed(self) -> bool:
        return self.error is not None


def measure_query(engine: Engine, sql: str, repeats: int = 5,
                  timeout: float | None = None) -> RunOutcome:
    """Run ``sql`` ``repeats`` times on ``engine`` and collect the wall-clock times.

    Errors are captured, not raised: a failing query is a first-class outcome
    in SQALPEL (it shows up as a yellow node in the experiment history).  When
    a single repetition exceeds ``timeout`` seconds the remaining repetitions
    are skipped.
    """
    outcome = RunOutcome(sql=sql, load_before=read_load_averages())
    for _ in range(repeats):
        started = time.perf_counter()
        try:
            result = engine.execute(sql)
        except Exception as exc:
            outcome.error = f"{type(exc).__name__}: {exc}"
            break
        elapsed = time.perf_counter() - started
        outcome.times.append(elapsed)
        outcome.rows = len(result.rows)
        if timeout is not None and elapsed > timeout:
            break
    outcome.load_after = read_load_averages()
    outcome.extras = {
        "engine": engine.label,
        "strategy": engine.strategy(),
        "rows": outcome.rows,
        "options": engine.options.describe(),
    }
    return outcome


@dataclass
class ExperimentDriver:
    """Pulls tasks from the platform, runs them on a local engine, reports back."""

    client: PlatformClient
    engine: Engine
    config: DriverConfig

    def run_once(self, experiment_id: int) -> dict | None:
        """Fetch and execute a single task; return the submitted result payload."""
        task = self.client.next_task(experiment_id, dbms=self.config.dbms)
        if task is None:
            return None
        outcome = measure_query(self.engine, task["query_sql"],
                                repeats=self.config.repeats,
                                timeout=self.config.timeout)
        load = {"before": outcome.load_before, "after": outcome.load_after}
        return self.client.submit_result(
            task_id=task["id"],
            times=outcome.times,
            error=outcome.error,
            load_averages=load,
            extras=outcome.extras,
        )

    def run_all(self, experiment_id: int, max_tasks: int | None = None) -> int:
        """Drain the experiment's queue; return how many tasks were executed."""
        executed = 0
        while max_tasks is None or executed < max_tasks:
            submitted = self.run_once(experiment_id)
            if submitted is None:
                break
            executed += 1
        return executed
