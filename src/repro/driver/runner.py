"""The driver's execution loop.

"Its basic interaction is to call the sqalpel webserver for a task from a
project/experiment pool, execute it, and report the findings. [...] By default
each experiment is run five times and the wall clock time for each step is
reported.  When available, the system load at the beginning and end of the
experimental run is kept around. [...] An open-ended key-value list structure
can be returned to keep system specific performance indicators for post
inspection."

Two drivers share :func:`measure_query`:

* :class:`ExperimentDriver` is the paper's one-task-at-a-time loop,
* :class:`BatchRunner` is the batched pipeline: it claims N tasks per round
  trip, prepares each distinct query's plan exactly once (plan-once/
  execute-many), optionally fans the measurements across a thread pool, and
  delivers the whole batch of results in a single submission.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.driver.client import PlatformClient
from repro.driver.config import DriverConfig
from repro.engine.engine import Engine
from repro.engine.plan import QueryPlan
from repro.sqlparser import ast
from repro.sqlparser.printer import to_sql


def read_load_averages() -> dict:
    """Return the 1/5/15-minute CPU load averages (empty when unavailable)."""
    try:
        one, five, fifteen = os.getloadavg()
    except (AttributeError, OSError):  # pragma: no cover - non-POSIX platforms
        return {}
    return {"load1": one, "load5": five, "load15": fifteen}


@dataclass
class RunOutcome:
    """Measurements of one query executed by the driver."""

    sql: str
    times: list[float] = field(default_factory=list)
    error: str | None = None
    rows: int = 0
    load_before: dict = field(default_factory=dict)
    load_after: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    timed_out: bool = False

    @property
    def best(self) -> float | None:
        return min(self.times) if self.times else None

    @property
    def failed(self) -> bool:
        return self.error is not None


def measure_query(engine: Engine, query: "str | ast.Select | QueryPlan",
                  repeats: int = 5, timeout: float | None = None) -> RunOutcome:
    """Run ``query`` ``repeats`` times on ``engine`` and collect execution times.

    The query is prepared (parsed and planned) exactly once; every repetition
    executes the prepared plan and reports :attr:`QueryResult.elapsed`, i.e.
    pure execution time -- planning is not double-counted into the timings.

    Errors are captured, not raised: a failing query is a first-class outcome
    in SQALPEL (it shows up as a yellow node in the experiment history).

    Timeout semantics: the budget is checked after each repetition, so one
    over-budget repetition is still *recorded* but flagged
    (``extras["timed_out"] = True``) and the remaining repetitions are
    skipped.  ``rows`` keeps the count of the last successful repetition even
    when a later repetition fails.
    """
    if isinstance(query, str):
        sql = query
    elif isinstance(query, QueryPlan):
        sql = query.sql
    else:
        sql = to_sql(query)
    outcome = RunOutcome(sql=sql, load_before=read_load_averages())

    plan: QueryPlan | None = None
    try:
        plan = engine.prepare(query)
    except Exception as exc:
        outcome.error = f"{type(exc).__name__}: {exc}"

    profile: dict | None = None
    if plan is not None:
        for _ in range(repeats):
            try:
                result = engine.execute(plan)
            except Exception as exc:
                outcome.error = f"{type(exc).__name__}: {exc}"
                break
            outcome.times.append(result.elapsed)
            outcome.rows = len(result.rows)
            profile = result.profile()
            if timeout is not None and result.elapsed > timeout:
                outcome.timed_out = True
                break

    outcome.load_after = read_load_averages()
    outcome.extras = {
        "engine": engine.label,
        "strategy": engine.strategy(),
        "rows": outcome.rows,
        "options": engine.options.describe(),
    }
    if profile is not None:
        # compact per-query profile of the last repetition: phase timings,
        # scan efficiency and cache behaviour ride along with the submitted
        # result, so the platform's analytics can aggregate them.
        outcome.extras["profile"] = profile
    if outcome.timed_out:
        outcome.extras["timed_out"] = True
    return outcome


@dataclass
class ExperimentDriver:
    """Pulls tasks from the platform one at a time, runs them, reports back."""

    client: PlatformClient
    engine: Engine
    config: DriverConfig

    def run_once(self, experiment_id: int) -> dict | None:
        """Fetch and execute a single task; return the submitted result payload."""
        task = self.client.next_task(experiment_id, dbms=self.config.dbms)
        if task is None:
            return None
        outcome = measure_query(self.engine, task["query_sql"],
                                repeats=self.config.repeats,
                                timeout=self.config.timeout)
        load = {"before": outcome.load_before, "after": outcome.load_after}
        return self.client.submit_result(
            task_id=task["id"],
            times=outcome.times,
            error=outcome.error,
            load_averages=load,
            extras=outcome.extras,
        )

    def run_all(self, experiment_id: int, max_tasks: int | None = None) -> int:
        """Drain the experiment's queue; return how many tasks were executed."""
        executed = 0
        while max_tasks is None or executed < max_tasks:
            submitted = self.run_once(experiment_id)
            if submitted is None:
                break
            executed += 1
        return executed


@dataclass
class BatchRunner:
    """The batched driver pipeline: claim N tasks, plan once, execute many.

    Per batch the runner

    1. claims up to ``config.batch_size`` tasks in one round trip,
    2. groups them by query text and prepares each distinct query's plan
       exactly once through the engine's plan cache,
    3. measures every task (``config.repeats`` repetitions of the prepared
       plan), optionally fanning tasks across ``config.workers`` threads,
    4. submits the whole batch of results in one round trip.

    ``workers > 1`` trades timing fidelity for throughput: concurrent
    in-process measurements contend for the GIL, inflating each other's
    wall-clock times.  Use it for correctness sweeps and smoke runs, keep
    the default of 1 worker whenever the timings feed a discriminative
    verdict.
    """

    client: PlatformClient
    engine: Engine
    config: DriverConfig

    def run_batch(self, experiment_id: int, count: int | None = None) -> int:
        """Claim and execute one batch; return how many tasks were executed."""
        batch_size = count if count is not None else self.config.batch_size
        tasks = self.client.next_tasks(experiment_id, count=batch_size,
                                       dbms=self.config.dbms)
        if not tasks:
            return 0

        plans: dict[str, QueryPlan | None] = {}
        for task in tasks:
            sql = task["query_sql"]
            if sql not in plans:
                try:
                    plans[sql] = self.engine.prepare(sql)
                except Exception:
                    # leave the error to measure_query, which records it as a
                    # first-class failed outcome for this task.
                    plans[sql] = None

        def run(task: dict) -> RunOutcome:
            sql = task["query_sql"]
            prepared = plans.get(sql)
            return measure_query(self.engine, prepared if prepared is not None else sql,
                                 repeats=self.config.repeats,
                                 timeout=self.config.timeout)

        if self.config.workers > 1:
            with ThreadPoolExecutor(max_workers=self.config.workers) as pool:
                outcomes = list(pool.map(run, tasks))
            for outcome in outcomes:
                # concurrent measurements contend for the GIL; stamp every
                # outcome so the analytics side can flag the submission and
                # keep its timings out of fidelity-sensitive aggregates.
                outcome.extras["concurrent_workers"] = self.config.workers
        else:
            outcomes = [run(task) for task in tasks]

        self.client.submit_results([
            {
                "task": task["id"],
                "times": outcome.times,
                "error": outcome.error,
                "load_averages": {"before": outcome.load_before,
                                  "after": outcome.load_after},
                "extras": outcome.extras,
            }
            for task, outcome in zip(tasks, outcomes)
        ])
        return len(tasks)

    def run_all(self, experiment_id: int, max_tasks: int | None = None) -> int:
        """Drain the experiment's queue batch by batch; return the task count."""
        executed = 0
        while max_tasks is None or executed < max_tasks:
            remaining = None if max_tasks is None else max_tasks - executed
            count = (self.config.batch_size if remaining is None
                     else min(self.config.batch_size, remaining))
            ran = self.run_batch(experiment_id, count=count)
            if ran == 0:
                break
            executed += ran
        return executed
