"""The experiment driver: the reproduction's ``sqalpel.py``.

"Once a sqalpel project is defined, people can use the sqalpel.py program to
contribute results using their own DBMS infrastructure.  This small Python
program contains the logic to call the web-server, requesting a query from
the pool and to report back the performance results."
"""

from repro.driver.config import DriverConfig, load_config
from repro.driver.client import HTTPClient, InProcessClient, RetryPolicy
from repro.driver.runner import BatchRunner, ExperimentDriver, RunOutcome, measure_query

__all__ = [
    "DriverConfig",
    "load_config",
    "HTTPClient",
    "InProcessClient",
    "RetryPolicy",
    "BatchRunner",
    "ExperimentDriver",
    "RunOutcome",
    "measure_query",
]
