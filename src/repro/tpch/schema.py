"""TPC-H schema description.

The schema is described as plain data (table -> ordered column/type pairs) so
it can be consumed both by the data generator (:mod:`repro.data.tpch`) and by
the engine catalog without a DDL round-trip.  ``create_schema`` registers the
eight tables on an engine catalog.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.engine.catalog import Catalog

#: Column definitions per table, in TPC-H column order.
#: Types are the engine's logical types: int, float, str, date.
TPCH_SCHEMA: dict[str, list[tuple[str, str]]] = {
    "region": [
        ("r_regionkey", "int"),
        ("r_name", "str"),
        ("r_comment", "str"),
    ],
    "nation": [
        ("n_nationkey", "int"),
        ("n_name", "str"),
        ("n_regionkey", "int"),
        ("n_comment", "str"),
    ],
    "supplier": [
        ("s_suppkey", "int"),
        ("s_name", "str"),
        ("s_address", "str"),
        ("s_nationkey", "int"),
        ("s_phone", "str"),
        ("s_acctbal", "float"),
        ("s_comment", "str"),
    ],
    "customer": [
        ("c_custkey", "int"),
        ("c_name", "str"),
        ("c_address", "str"),
        ("c_nationkey", "int"),
        ("c_phone", "str"),
        ("c_acctbal", "float"),
        ("c_mktsegment", "str"),
        ("c_comment", "str"),
    ],
    "part": [
        ("p_partkey", "int"),
        ("p_name", "str"),
        ("p_mfgr", "str"),
        ("p_brand", "str"),
        ("p_type", "str"),
        ("p_size", "int"),
        ("p_container", "str"),
        ("p_retailprice", "float"),
        ("p_comment", "str"),
    ],
    "partsupp": [
        ("ps_partkey", "int"),
        ("ps_suppkey", "int"),
        ("ps_availqty", "int"),
        ("ps_supplycost", "float"),
        ("ps_comment", "str"),
    ],
    "orders": [
        ("o_orderkey", "int"),
        ("o_custkey", "int"),
        ("o_orderstatus", "str"),
        ("o_totalprice", "float"),
        ("o_orderdate", "date"),
        ("o_orderpriority", "str"),
        ("o_clerk", "str"),
        ("o_shippriority", "int"),
        ("o_comment", "str"),
    ],
    "lineitem": [
        ("l_orderkey", "int"),
        ("l_partkey", "int"),
        ("l_suppkey", "int"),
        ("l_linenumber", "int"),
        ("l_quantity", "float"),
        ("l_extendedprice", "float"),
        ("l_discount", "float"),
        ("l_tax", "float"),
        ("l_returnflag", "str"),
        ("l_linestatus", "str"),
        ("l_shipdate", "date"),
        ("l_commitdate", "date"),
        ("l_receiptdate", "date"),
        ("l_shipinstruct", "str"),
        ("l_shipmode", "str"),
        ("l_comment", "str"),
    ],
}

#: Table names in a population-friendly order (referenced tables first).
TPCH_TABLES: tuple[str, ...] = (
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)

#: Base cardinality of every table at scale factor 1.0 (from the TPC-H spec).
TPCH_BASE_ROWS: dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}


def create_schema(catalog: "Catalog") -> None:
    """Register the eight TPC-H tables on ``catalog`` (without data)."""
    for table in TPCH_TABLES:
        catalog.create_table(table, TPCH_SCHEMA[table])
