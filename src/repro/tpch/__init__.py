"""TPC-H assets: schema definition and the 22 benchmark query texts.

The query texts are adapted to the SQL dialect supported by the built-in
parser and engines (the substitutions are purely syntactic: view definitions
are inlined as derived tables and vendor-specific top-N syntax is written as
``LIMIT``).  Validation-time parameter values are substituted for the random
parameters of the official specification, matching common practice when the
queries are used as fixed workloads.
"""

from repro.tpch.schema import TPCH_SCHEMA, TPCH_TABLES, create_schema
from repro.tpch.queries import QUERIES, query, query_ids

__all__ = [
    "TPCH_SCHEMA",
    "TPCH_TABLES",
    "create_schema",
    "QUERIES",
    "query",
    "query_ids",
]
