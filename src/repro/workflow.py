"""End-to-end workflow helpers.

The demo scenario of Section 5 walks through: define a project, convert a
baseline query into a grammar (Figure 5), build and grow the query pool
(Figure 6), queue the pool and let contributors run it with the driver,
inspect the experiment history (Figure 7) and the analytics pages
(Figures 2-4).  :func:`run_demo_scenario` performs exactly that loop on the
built-in engines and returns everything the figures need; examples, the CLI
``demo`` sub-command and the figure benchmarks all share it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytics import (
    ComponentReport,
    ExperimentHistory,
    SpeedupReport,
    TaskTimeline,
    component_report,
    experiment_history,
    profiles_by_trace,
    speedup_report,
    stitch_timelines,
)
from repro.data import populate_tpch
from repro.driver.client import InProcessClient
from repro.driver.config import DriverConfig
from repro.driver.runner import BatchRunner
from repro.engine import ColumnEngine, Database, Engine, RowEngine
from repro.obs import TelemetryConfig
from repro.platform.models import Experiment, Project, User
from repro.platform.service import PlatformService
from repro.pool.morph import Morpher
from repro.pool.pool import QueryPool
from repro.tpch import QUERIES

#: default baseline query of the demo: TPC-H Q1 (the paper's running example).
DEFAULT_BASELINE = QUERIES[1]


def build_tpch_database(scale_factor: float = 0.001, seed: int = 20190113) -> Database:
    """Create and populate a TPC-H database instance at ``scale_factor``."""
    database = Database(name=f"tpch-sf{scale_factor}")
    populate_tpch(database, scale_factor=scale_factor, seed=seed)
    return database


def build_engines(database: Database, workers: int = 1
                  ) -> tuple[RowEngine, ColumnEngine]:
    """The two default target systems over one database instance.

    ``workers`` > 1 enables morsel-parallel execution on the column engine
    (the row interpreter is the single-threaded baseline either way).
    """
    from repro.engine import EngineOptions

    column_options = EngineOptions(workers=workers)
    return RowEngine(database), ColumnEngine(database, options=column_options)


@dataclass
class DemoSummary:
    """Everything :func:`run_demo_scenario` produces."""

    service: PlatformService
    owner: User
    contributor: User
    project: Project
    experiment: Experiment
    pool: QueryPool
    engines: list[Engine] = field(default_factory=list)
    executed_tasks: int = 0
    speedup: SpeedupReport | None = None
    components: ComponentReport | None = None
    history: ExperimentHistory | None = None
    #: the service's metrics snapshot taken after the drain.
    metrics: dict | None = None
    #: per-task end-to-end timelines (only when telemetry was enabled).
    timelines: list[TaskTimeline] = field(default_factory=list)

    def describe(self) -> str:
        """A terse, printable account of the run."""
        lines = [
            f"project          : {self.project.name} ({self.project.visibility.value})",
            f"experiment       : {self.experiment.name}",
            f"pool size        : {len(self.pool)} queries "
            f"({len(self.pool.templates)} templates)",
            f"executed tasks   : {self.executed_tasks}",
            f"systems          : {', '.join(engine.label for engine in self.engines)}",
        ]
        for engine in self.engines:
            stats = engine.cache_stats()
            lines.append(
                f"plan cache       : {engine.label}: {stats['hits']} hits, "
                f"{stats['misses']} misses, "
                f"{stats['size']}/{stats['maxsize']} plans cached"
            )
        if self.engines:
            summary = self.engines[0].database.size_summary()
            rows = sum(entry["rows"] for entry in summary.values())
            encoded = sum(entry["encoded_bytes"] for entry in summary.values())
            raw = sum(entry["raw_bytes"] for entry in summary.values())
            ratio = (raw / encoded) if encoded else 1.0
            lines.append(
                f"storage          : {len(summary)} tables, {rows} rows, "
                f"{encoded / 1024:.0f} KiB encoded ({ratio:.2f}x compression)"
            )
        if self.speedup and self.speedup.points:
            spread = self.speedup.spread()
            lines.append(
                f"speedup spread   : {spread[0]:.2f}x .. {spread[1]:.2f}x "
                f"({self.speedup.baseline} vs {self.speedup.comparison})"
            )
        if self.components and self.components.dominant_term():
            lines.append(f"dominant term    : {self.components.dominant_term()}")
        if self.history:
            lines.append(
                f"history          : {len(self.history.nodes)} nodes, "
                f"{len(self.history.edges)} morph edges, "
                f"{len(self.history.error_nodes())} errors"
            )
        if self.metrics:
            counters = self.metrics.get("counters", {})
            derived = self.metrics.get("derived", {})
            lines.append(
                f"queue metrics    : {counters.get('tasks.enqueued', 0)} enqueued, "
                f"{counters.get('tasks.dispatched', 0)} dispatched, "
                f"retry_rate={derived.get('tasks.retry_rate', 0.0):.1%}"
            )
        if self.timelines:
            phase_totals: dict[str, float] = {}
            for timeline in self.timelines:
                for phase, seconds in timeline.phases.items():
                    phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
            phases = " ".join(f"{name}={seconds:.3f}s"
                              for name, seconds in sorted(phase_totals.items()))
            lines.append(
                f"telemetry        : {len(self.timelines)} task timelines ({phases})")
        return "\n".join(lines)


def run_experiment_on_engines(pool: QueryPool, engines: list[Engine], repeats: int = 3
                              ) -> None:
    """Measure every pool entry on every engine, recording into the pool.

    Measurement goes through :meth:`QueryPool.measure`, which prepares each
    query once per engine (plan cache) and times executions of the prepared
    plan only.
    """
    for engine in engines:
        pool.measure(engine, repeats=repeats)


def run_demo_scenario(baseline_sql: str = DEFAULT_BASELINE, scale_factor: float = 0.001,
                      pool_size: int = 12, repeats: int = 3, seed: int = 7,
                      use_platform_queue: bool = True,
                      workers: int = 1,
                      telemetry: TelemetryConfig | None = None) -> DemoSummary:
    """Run the full demo loop and return the collected artefacts.

    The loop mirrors Sections 5.3-5.6 of the paper: project + experiment
    definition, pool construction and morphing, queueing, driver-based result
    contribution for each registered DBMS, and the three analytics reports.

    ``telemetry`` (an enabled :class:`~repro.obs.TelemetryConfig`) switches
    on the end-to-end tracing pipeline: the service records server-side
    spans, the drivers trace each task's execution (engine ``QueryTrace``
    included) and the summary carries stitched per-task timelines plus a
    metrics snapshot.
    """
    database = build_tpch_database(scale_factor=scale_factor)
    row_engine, column_engine = build_engines(database, workers=workers)
    engines: list[Engine] = [row_engine, column_engine]
    tracing = telemetry is not None and telemetry.enabled

    service = PlatformService(telemetry=telemetry)
    owner = service.register_user("owner", "owner@example.org")
    contributor = service.register_user("contributor", "contributor@example.org")
    host = service.register_host("laptop", cpu="generic-x86", memory_gb=16, os="linux")
    dbms_entries = [
        service.register_dbms(engine.name, engine.version, dialect=engine.name,
                              description=engine.strategy())
        for engine in engines
    ]
    project = service.create_project(owner, "tpch-demo",
                                     synopsis="Discriminative benchmarking demo on TPC-H Q1",
                                     attribution="TPC-H (Transaction Processing Council)")
    service.invite_contributor(owner, project, contributor)
    experiment = service.add_experiment(owner, project, "q1-variants", baseline_sql,
                                        dbms=dbms_entries[0], host=host,
                                        repeats=repeats, timeout_seconds=120.0)

    pool = service.build_pool(experiment, seed=seed)
    pool.seed_baseline()
    pool.seed_random(max(pool_size // 3, 2))
    Morpher(pool, seed=seed).grow_to(pool_size)

    executed = 0
    runners: list[BatchRunner] = []
    if use_platform_queue:
        for engine in engines:
            service.enqueue_pool(owner, experiment, pool, dbms_label=engine.label,
                                 host_name=host.name)
        for engine in engines:
            config = DriverConfig(key=contributor.contributor_key, dbms=engine.label,
                                  host=host.name, repeats=repeats, timeout=120.0,
                                  batch_size=8, trace_tasks=tracing,
                                  telemetry=telemetry or TelemetryConfig())
            runner = BatchRunner(
                client=InProcessClient(service, contributor.contributor_key),
                engine=engine, config=config)
            runners.append(runner)
            executed += runner.run_all(experiment.id)
        _replay_results_into_pool(service, experiment, pool)
    else:
        run_experiment_on_engines(pool, engines, repeats=repeats)
        executed = len(pool) * len(engines)

    summary = DemoSummary(service=service, owner=owner, contributor=contributor,
                          project=project, experiment=experiment, pool=pool,
                          engines=engines, executed_tasks=executed)
    summary.speedup = speedup_report(pool, baseline=column_engine.label,
                                     comparison=row_engine.label)
    summary.components = component_report(pool, system=row_engine.label)
    summary.history = experiment_history(pool, system=row_engine.label)
    summary.metrics = service.metrics.snapshot()
    if tracing and use_platform_queue:
        results = service.store.results(experiment.id)
        summary.timelines = stitch_timelines(
            tasks=service.store.tasks(experiment.id),
            results=results,
            span_sources=[service.spans,
                          *(runner.spans for runner in runners
                            if runner.spans is not None)],
            profiles=profiles_by_trace(results))
    return summary


def _replay_results_into_pool(service: PlatformService, experiment, pool: QueryPool) -> None:
    """Copy the platform's stored results back onto the in-memory pool entries."""
    by_sql = {entry.sql: entry for entry in pool.entries()}
    for record in service.store.results(experiment.id):
        entry = by_sql.get(record.query_sql)
        if entry is None:
            continue
        pool.record(entry, record.dbms_label, record.best or 0.0, error=record.error,
                    repeats=record.times, metadata=record.extras)
