"""Table 1: publicly accessible TPC benchmark results.

The table is a snapshot of http://www.tpc.org/ taken by the authors (late
2018); it is static published data, reproduced here as a dataset plus a
report generator.  The paper's observation -- "the number of publicly
accessible results remains extremely low.  Just a few vendors go through the
rigorous process to obtain results for publication." -- is derivable from the
dataset (see ``observations``).
"""

from __future__ import annotations

#: benchmark -> (number of published reports, reporting systems)
TPC_BENCHMARK_REPORTS: dict[str, tuple[int, list[str]]] = {
    "TPC-C": (368, ["Oracle", "IBM DB2", "MS SQLserver", "Sybase", "SymfoWARE"]),
    "TPC-DI": (0, []),
    "TPC-DS": (1, ["Intel"]),
    "TPC-E": (77, ["MS SQLserver"]),
    "TPC-H <= SF-300": (252, ["MS SQLserver", "Oracle", "EXASOL", "Actian Vector 5.0",
                              "Sybase", "IBM DB2", "Informix", "Teradata", "Paraccel"]),
    "TPC-H SF-1000": (4, ["MS SQLserver"]),
    "TPC-H SF-3000": (6, ["MS SQLserver", "Actian Vector 5.0"]),
    "TPC-H SF-10000": (9, ["MS SQLserver"]),
    "TPC-H SF-30000": (1, ["MS SQLserver"]),
    "TPC-VMS": (0, []),
    "TPCx-BB": (4, ["Cloudera"]),
    "TPCx-HCI": (0, []),
    "TPCx-HS": (0, []),
    "TPCx-IoT": (1, ["Hbase"]),
}


def table1_rows() -> list[tuple[str, int, str]]:
    """Rows of Table 1: (benchmark, #reports, systems reported)."""
    return [
        (benchmark, reports, ", ".join(systems))
        for benchmark, (reports, systems) in TPC_BENCHMARK_REPORTS.items()
    ]


def table1_text() -> str:
    """A printable rendering of Table 1."""
    lines = [f"{'benchmark':<18} {'reports':>7}  systems reported"]
    lines.append("-" * 78)
    for benchmark, reports, systems in table1_rows():
        lines.append(f"{benchmark:<18} {reports:>7}  {systems}")
    return "\n".join(lines)


def observations() -> dict:
    """Quantitative backing for the paper's Table 1 discussion."""
    counts = [reports for reports, _ in TPC_BENCHMARK_REPORTS.values()]
    distinct_systems = {
        system
        for _, systems in TPC_BENCHMARK_REPORTS.values()
        for system in systems
    }
    return {
        "total_reports": sum(counts),
        "benchmarks": len(counts),
        "benchmarks_without_any_report": sum(1 for count in counts if count == 0),
        "distinct_reporting_systems": len(distinct_systems),
        "max_reports_single_benchmark": max(counts),
    }
