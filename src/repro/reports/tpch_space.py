"""Table 2: TPC-H query-space sizes.

"In [6] the TPC-H benchmark was revisited to assess how large the search
space becomes when the SQL queries are converted automatically into a sqalpel
grammar.  The number of queries derived from them vary widely [...] This
results in a combinatorial explosion of templates."

``table2_rows`` recomputes the row for every TPC-H query with this
reproduction's extractor and template counter; ``PAPER_TABLE2`` records the
numbers printed in the paper for side-by-side comparison in EXPERIMENTS.md.
Absolute counts differ (the extraction heuristics are not byte-identical),
but the qualitative shape -- orders-of-magnitude variation across queries and
several queries exceeding the hard template cap -- is reproduced.
"""

from __future__ import annotations

from repro.core import space_report
from repro.core.space import SpaceReport
from repro.sqlparser import extract_grammar
from repro.sqlparser.extract import ExtractionOptions
from repro.tpch import QUERIES

#: (templates, space) as printed in the paper's Table 2; ``None`` marks the
#: entries the paper leaves open because the >100K cap was hit.
PAPER_TABLE2: dict[int, tuple[object, object]] = {
    1: (40, 9207), 2: (58160, 6354837405), 3: (240, 29295), 4: (28, 81),
    5: (108, 96579), 6: (4, 15), 7: (">100K", None), 8: (480, 5478165),
    9: (1512, 3528441), 10: (384, 722925), 11: (162, 7203), 12: (8484, 162918),
    13: (16, 81), 14: (6, 21), 15: (40, 372), 16: (608, 25515), 17: (26, 81),
    18: (576, 43659), 19: (">100K", None), 20: (320, 3339), 21: (18464, 4255065),
    22: (156, 777),
}


def query_space(query_id: int, limit: int = 100_000) -> SpaceReport:
    """Space report of one TPC-H query under the given template cap."""
    grammar = extract_grammar(QUERIES[query_id], ExtractionOptions(name=f"Q{query_id}"))
    return space_report(grammar, name=f"Q{query_id}", limit=limit)


def table2_rows(limit: int = 100_000, query_ids: list[int] | None = None
                ) -> list[tuple[str, int, str, str]]:
    """Rows of Table 2: (query, tags, templates, space) for each TPC-H query."""
    selected = query_ids or sorted(QUERIES)
    return [query_space(query_id, limit=limit).as_row() for query_id in selected]


def table2_text(limit: int = 100_000, query_ids: list[int] | None = None) -> str:
    """A printable rendering of Table 2 with the paper's numbers alongside."""
    lines = [f"{'query':<6} {'tags':>5} {'templates':>10} {'space':>14} "
             f"{'paper-templates':>16} {'paper-space':>14}"]
    lines.append("-" * 72)
    for name, tags, templates, space in table2_rows(limit=limit, query_ids=query_ids):
        number = int(name[1:])
        paper_templates, paper_space = PAPER_TABLE2[number]
        lines.append(
            f"{name:<6} {tags:>5} {templates:>10} {space:>14} "
            f"{str(paper_templates):>16} {str(paper_space) if paper_space is not None else '-':>14}"
        )
    return "\n".join(lines)
