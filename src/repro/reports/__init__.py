"""Report builders for the paper's tables."""

from repro.reports.tpc_results import TPC_BENCHMARK_REPORTS, table1_rows, table1_text
from repro.reports.tpch_space import table2_rows, table2_text, PAPER_TABLE2

__all__ = [
    "TPC_BENCHMARK_REPORTS",
    "table1_rows",
    "table1_text",
    "table2_rows",
    "table2_text",
    "PAPER_TABLE2",
]
