"""The query pool.

Section 3.2: "In contrast to systems such as RAGS that only randomly
generates queries in a brute force manner, we use a query pool.  It is
populated with the baseline query and some queries constructed from randomly
choosen templates.  Once a collection has been defined, we can extend the
pool by morphing queries based on observed behavior."

A :class:`QueryPool` holds :class:`PoolEntry` objects: the concrete query, how
it came to be (seed / alter / expand / prune and its parent), and the
observed results per target system.  The pool guarantees uniqueness by the
query's canonical key ("The result is added to the pool unless it was already
known").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.model import Grammar
from repro.core.normalize import normalize
from repro.core.render import ConcreteQuery, QueryRenderer
from repro.core.templates import DEFAULT_TEMPLATE_LIMIT, TemplateGenerator
from repro.errors import SqalpelError
from repro.pool.guidance import Guidance


@dataclass
class Observation:
    """One measured execution of a pool entry on a target system."""

    system: str
    elapsed: float
    error: str | None = None
    repeats: list[float] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass
class PoolEntry:
    """One query in the pool plus its provenance and observations."""

    query: ConcreteQuery
    origin: str = "seed"          # seed | random | alter | expand | prune
    parent_key: tuple | None = None
    sequence: int = 0
    observations: list[Observation] = field(default_factory=list)

    @property
    def key(self) -> tuple:
        return self.query.key

    @property
    def sql(self) -> str:
        return self.query.sql

    def observed_systems(self) -> set[str]:
        return {observation.system for observation in self.observations}

    def best_time(self, system: str) -> float | None:
        """Fastest successful observation on ``system`` (None when unmeasured)."""
        times = [
            observation.elapsed
            for observation in self.observations
            if observation.system == system and not observation.failed
        ]
        return min(times) if times else None

    def has_error(self, system: str | None = None) -> bool:
        """True when any (or the given) system reported an error for this query."""
        return any(
            observation.failed
            and (system is None or observation.system == system)
            for observation in self.observations
        )


class QueryPool:
    """The set of candidate queries of one experiment."""

    def __init__(self, grammar: Grammar, template_limit: int = DEFAULT_TEMPLATE_LIMIT,
                 seed: int = 0):
        self.grammar = grammar
        self.normalized = normalize(grammar)
        self.renderer = QueryRenderer(self.normalized)
        self.rng = random.Random(seed)
        enumeration = TemplateGenerator(self.normalized, limit=template_limit).enumerate()
        self.templates = list(enumeration.templates)
        self.truncated = enumeration.truncated
        self._entries: dict[tuple, PoolEntry] = {}
        self._sequence = 0

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[PoolEntry]:
        return iter(self._entries.values())

    def __contains__(self, query: ConcreteQuery) -> bool:
        return query.key in self._entries

    def entries(self) -> list[PoolEntry]:
        """Entries in insertion order."""
        return list(self._entries.values())

    def entry(self, key: tuple) -> PoolEntry:
        return self._entries[key]

    # -- population ---------------------------------------------------------------

    def add(self, query: ConcreteQuery, origin: str = "seed",
            parent: PoolEntry | None = None) -> PoolEntry | None:
        """Add ``query`` unless it is already known; return the new entry (or None)."""
        if query.key in self._entries:
            return None
        entry = PoolEntry(
            query=query,
            origin=origin,
            parent_key=parent.key if parent is not None else None,
            sequence=self._sequence,
        )
        self._sequence += 1
        self._entries[query.key] = entry
        return entry

    def seed_baseline(self) -> PoolEntry:
        """Add the baseline query: the largest template filled with every literal.

        The baseline of an extracted grammar is the original user query; it
        corresponds to the template that uses every lexical class as often as
        the grammar allows.
        """
        if not self.templates:
            raise SqalpelError("the grammar produced no templates")
        baseline_template = max(self.templates, key=lambda template: template.size())
        assignment = []
        used: set[tuple[str, int]] = set()
        for slot in baseline_template.slots:
            pool = [
                literal
                for literal in self.normalized.literals_by_rule.get(slot.rule, [])
                if literal.key not in used
            ]
            literal = pool[0]
            used.add(literal.key)
            assignment.append(literal)
        query = self.renderer.render(baseline_template, assignment)
        entry = self.add(query, origin="seed")
        return entry if entry is not None else self._entries[query.key]

    def seed_random(self, count: int, guidance: Guidance | None = None) -> list[PoolEntry]:
        """Add up to ``count`` random queries from randomly chosen templates."""
        guidance = guidance or Guidance()
        added: list[PoolEntry] = []
        attempts = 0
        while len(added) < count and attempts < count * 20:
            attempts += 1
            template = self.rng.choice(self.templates)
            query = self.renderer.render(template, rng=self.rng)
            if not guidance.allows(query):
                continue
            entry = self.add(query, origin="random")
            if entry is not None:
                added.append(entry)
        return added

    # -- results -----------------------------------------------------------------------

    def record(self, entry: PoolEntry, system: str, elapsed: float,
               error: str | None = None, repeats: list[float] | None = None,
               metadata: dict | None = None) -> Observation:
        """Attach a measured observation to ``entry``."""
        observation = Observation(system=system, elapsed=elapsed, error=error,
                                  repeats=repeats or [], metadata=metadata or {})
        entry.observations.append(observation)
        return observation

    def measure(self, engine, repeats: int = 3, timeout: float | None = None,
                entries: list[PoolEntry] | None = None) -> list[Observation]:
        """Measure ``entries`` (default: all) on ``engine`` via prepared plans.

        Each entry's query is prepared once through the engine's plan cache
        and the prepared plan is executed ``repeats`` times, so the morph/
        re-measure cycle never re-parses or re-plans a query it has already
        seen.  Every outcome (including failures) is recorded as an
        :class:`Observation` on its entry.
        """
        from repro.driver.runner import measure_query

        observations: list[Observation] = []
        for entry in entries if entries is not None else self.entries():
            outcome = measure_query(engine, entry.sql, repeats=repeats, timeout=timeout)
            observations.append(
                self.record(entry, engine.label, outcome.best or 0.0,
                            error=outcome.error, repeats=outcome.times,
                            metadata=outcome.extras)
            )
        return observations

    # -- selections ----------------------------------------------------------------------

    def unmeasured(self, system: str) -> list[PoolEntry]:
        """Entries that have no observation yet for ``system``."""
        return [entry for entry in self if system not in entry.observed_systems()]

    def measured(self, system: str) -> list[PoolEntry]:
        """Entries with at least one successful observation on ``system``."""
        return [entry for entry in self if entry.best_time(system) is not None]

    def errors(self) -> list[PoolEntry]:
        """Entries for which any system reported an error."""
        return [entry for entry in self if entry.has_error()]

    def pick(self, rng: random.Random | None = None) -> PoolEntry:
        """Randomly pick an entry ("We randomly pick a query from the pool")."""
        rng = rng or self.rng
        return rng.choice(self.entries())

    def discriminative(self, system_a: str, system_b: str, top: int = 10
                       ) -> list[tuple[PoolEntry, float]]:
        """Entries ranked by |log speed ratio| between the two systems.

        These are the paper's *discriminative queries*: the ones whose
        relative performance between A and B deviates most from parity.
        """
        import math

        ranked: list[tuple[PoolEntry, float]] = []
        for entry in self:
            time_a = entry.best_time(system_a)
            time_b = entry.best_time(system_b)
            if not time_a or not time_b:
                continue
            ranked.append((entry, math.log(time_a / time_b)))
        ranked.sort(key=lambda pair: abs(pair[1]), reverse=True)
        return ranked[:top]
