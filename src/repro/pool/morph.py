"""Morphing strategies: alter, expand, prune (Section 3.2).

* **Alter** -- "We randomly pick a query from the pool and replace a literal.
  The result is added to the pool unless it was already known."
* **Expand** -- "We take a query from the pool and search for a template that
  is slightly larger."  The query's literal assignment is kept and extended
  with fresh literals for the additional slots.
* **Prune** -- "The reverse operation for expanding a query is to search for
  a template with slightly fewer lexical classes.  It is the preferred method
  to identify the contribution of sub-queries in highly complex queries."

The :class:`Morpher` drives the guided random walk: it repeatedly applies a
strategy (optionally restricted by :class:`~repro.pool.guidance.Guidance`) to
grow the pool, recording for every new entry which parent and action produced
it -- exactly the provenance the experiment-history figure (Figure 7) draws
as dashed, colour-coded edges.
"""

from __future__ import annotations

import enum
import random
from collections import Counter
from dataclasses import dataclass

from repro.core.render import ConcreteQuery
from repro.core.templates import Template
from repro.pool.guidance import Guidance
from repro.pool.pool import PoolEntry, QueryPool


class Strategy(enum.Enum):
    """The three morphing strategies of the paper."""

    ALTER = "alter"
    EXPAND = "expand"
    PRUNE = "prune"

    @classmethod
    def names(cls) -> list[str]:
        return [strategy.value for strategy in cls]


#: Colour coding used by the experiment-history figure (Figure 7): "The color
#: coding for alter, expand, and prune morphing is purple, green, and blue".
STRATEGY_COLORS = {
    Strategy.ALTER: "purple",
    Strategy.EXPAND: "green",
    Strategy.PRUNE: "blue",
    None: "grey",
}


@dataclass
class MorphAction:
    """Record of one successful morph: parent -> child via strategy."""

    strategy: Strategy
    parent: PoolEntry
    child: PoolEntry

    @property
    def color(self) -> str:
        return STRATEGY_COLORS[self.strategy]


class Morpher:
    """Applies morphing strategies to grow a :class:`QueryPool`."""

    def __init__(self, pool: QueryPool, guidance: Guidance | None = None,
                 seed: int | None = None):
        self.pool = pool
        self.guidance = guidance or Guidance()
        self.rng = random.Random(seed) if seed is not None else pool.rng
        self.actions: list[MorphAction] = []

    # -- public API -----------------------------------------------------------

    def step(self, strategy: Strategy | None = None) -> MorphAction | None:
        """Apply one morphing step; return the action or None when nothing new."""
        strategy = strategy or self._choose_strategy()
        if strategy is None:
            return None
        parent = self.pool.pick(self.rng)
        child_query = self._morph(parent, strategy)
        if child_query is None or not self.guidance.allows(child_query):
            return None
        entry = self.pool.add(child_query, origin=strategy.value, parent=parent)
        if entry is None:
            return None
        action = MorphAction(strategy=strategy, parent=parent, child=entry)
        self.actions.append(action)
        return action

    def run(self, steps: int, strategy: Strategy | None = None) -> list[MorphAction]:
        """Apply up to ``steps`` morphing steps, returning the successful ones."""
        performed: list[MorphAction] = []
        for _ in range(steps):
            action = self.step(strategy)
            if action is not None:
                performed.append(action)
        return performed

    def grow_to(self, target_size: int, max_attempts: int | None = None) -> list[MorphAction]:
        """Morph until the pool holds ``target_size`` entries (or attempts run out)."""
        attempts = max_attempts if max_attempts is not None else target_size * 25
        performed: list[MorphAction] = []
        while len(self.pool) < target_size and attempts > 0:
            attempts -= 1
            action = self.step()
            if action is not None:
                performed.append(action)
        return performed

    # -- strategy implementations ------------------------------------------------

    def _choose_strategy(self) -> Strategy | None:
        allowed = [
            strategy for strategy in Strategy
            if self.guidance.allows_strategy(strategy.value)
        ]
        if not allowed:
            return None
        return self.rng.choice(allowed)

    def _morph(self, parent: PoolEntry, strategy: Strategy) -> ConcreteQuery | None:
        if strategy is Strategy.ALTER:
            return self._alter(parent)
        if strategy is Strategy.EXPAND:
            return self._expand(parent)
        return self._prune(parent)

    def _alter(self, parent: PoolEntry) -> ConcreteQuery | None:
        """Replace one literal of the parent with another literal of the same class."""
        assignment = list(parent.query.assignment)
        if not assignment:
            return None
        position = self.rng.randrange(len(assignment))
        current = assignment[position]
        used = {literal.key for literal in assignment}
        candidates = [
            literal
            for literal in self.pool.normalized.literals_by_rule.get(current.rule, [])
            if literal.key not in used
        ]
        if not candidates:
            return None
        assignment[position] = self.rng.choice(candidates)
        return self.pool.renderer.render(parent.query.template, assignment)

    def _expand(self, parent: PoolEntry) -> ConcreteQuery | None:
        """Move the parent to a slightly larger template, keeping its literals."""
        template = self._neighbour_template(parent.query.template, larger=True)
        if template is None:
            return None
        return self._refit(parent, template)

    def _prune(self, parent: PoolEntry) -> ConcreteQuery | None:
        """Move the parent to a slightly smaller template, keeping shared literals."""
        template = self._neighbour_template(parent.query.template, larger=False)
        if template is None:
            return None
        return self._refit(parent, template)

    # -- helpers ---------------------------------------------------------------------

    def _neighbour_template(self, current: Template, larger: bool) -> Template | None:
        """Find a template whose slot multiset is a minimal super/subset of ``current``."""
        current_counts = current.slot_counts()
        candidates: list[tuple[int, Template]] = []
        for template in self.pool.templates:
            if template.signature == current.signature:
                continue
            counts = template.slot_counts()
            difference = self._containment_delta(counts, current_counts, larger)
            if difference is not None and difference > 0:
                candidates.append((difference, template))
        if not candidates:
            return None
        smallest = min(difference for difference, _ in candidates)
        closest = [template for difference, template in candidates if difference == smallest]
        return self.rng.choice(closest)

    @staticmethod
    def _containment_delta(counts: Counter, current: Counter, larger: bool) -> int | None:
        """Size delta when one multiset contains the other in the right direction."""
        bigger, smaller = (counts, current) if larger else (current, counts)
        for rule, amount in smaller.items():
            if bigger.get(rule, 0) < amount:
                return None
        return sum(bigger.values()) - sum(smaller.values())

    def _refit(self, parent: PoolEntry, template: Template) -> ConcreteQuery | None:
        """Fill ``template`` reusing the parent's literals where classes overlap."""
        available: dict[str, list] = {}
        for literal in parent.query.assignment:
            available.setdefault(literal.rule, []).append(literal)
        assignment = []
        used: set[tuple[str, int]] = set()
        for slot in template.slots:
            reuse = [
                literal for literal in available.get(slot.rule, [])
                if literal.key not in used
            ]
            if reuse:
                literal = reuse[0]
            else:
                fresh = [
                    literal
                    for literal in self.pool.normalized.literals_by_rule.get(slot.rule, [])
                    if literal.key not in used
                ]
                if not fresh:
                    return None
                literal = self.rng.choice(fresh)
            used.add(literal.key)
            assignment.append(literal)
        return self.pool.renderer.render(template, assignment)
