"""Query pool and morphing strategies (the guided random walk of Section 3.2)."""

from repro.pool.pool import PoolEntry, QueryPool
from repro.pool.morph import MorphAction, Morpher, Strategy
from repro.pool.guidance import Guidance

__all__ = [
    "PoolEntry",
    "QueryPool",
    "MorphAction",
    "Morpher",
    "Strategy",
    "Guidance",
]
