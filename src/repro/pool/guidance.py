"""Lexical-term guidance for pool expansion.

The demo's query-pool page offers "fine grained control [...] by explicitly
specifying what lexical terms should or should not be included in the queries
being generated.  This helps to avoid performing experiments where the
performance impact is already known from previous experiments."

A :class:`Guidance` object captures that control: include-terms that every
generated query must contain, exclude-terms that no generated query may
contain, and an optional restriction on which morphing strategies are active.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.render import ConcreteQuery


@dataclass
class Guidance:
    """Constraints steering pool expansion."""

    #: lexical terms (literal texts) every candidate query must include.
    include_terms: set[str] = field(default_factory=set)
    #: lexical terms no candidate query may include.
    exclude_terms: set[str] = field(default_factory=set)
    #: subset of strategy names to use; empty means all of alter/expand/prune.
    strategies: set[str] = field(default_factory=set)

    def allows(self, query: ConcreteQuery) -> bool:
        """Return True when ``query`` satisfies the include/exclude constraints."""
        terms = set(query.terms)
        if self.include_terms and not self.include_terms.issubset(terms):
            return False
        if self.exclude_terms and terms & self.exclude_terms:
            return False
        return True

    def allows_strategy(self, name: str) -> bool:
        """Return True when strategy ``name`` may be used under this guidance."""
        return not self.strategies or name in self.strategies

    def merged_with(self, other: "Guidance") -> "Guidance":
        """Combine two guidance objects (union of constraints)."""
        return Guidance(
            include_terms=self.include_terms | other.include_terms,
            exclude_terms=self.exclude_terms | other.exclude_terms,
            strategies=self.strategies | other.strategies,
        )

    def describe(self) -> dict:
        """Plain-dict form for storage in the platform."""
        return {
            "include_terms": sorted(self.include_terms),
            "exclude_terms": sorted(self.exclude_terms),
            "strategies": sorted(self.strategies),
        }

    @classmethod
    def from_dict(cls, payload: dict | None) -> "Guidance":
        """Inverse of :meth:`describe`."""
        payload = payload or {}
        return cls(
            include_terms=set(payload.get("include_terms", [])),
            exclude_terms=set(payload.get("exclude_terms", [])),
            strategies=set(payload.get("strategies", [])),
        )
