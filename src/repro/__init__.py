"""Reproduction of *SQALPEL: A database performance platform* (CIDR 2019).

The package is organised in layers:

* :mod:`repro.core` -- the query-space grammar (DSL, templates, space, rendering),
* :mod:`repro.sqlparser` -- SQL front-end and the query-to-grammar extractor,
* :mod:`repro.pool` -- the query pool and the alter/expand/prune morphing walk,
* :mod:`repro.engine` -- the relational engine substrate (row and column engines),
* :mod:`repro.data` -- deterministic data generators (TPC-H-, SSB-, airtraffic-style),
* :mod:`repro.tpch` -- TPC-H schema and the 22 query texts,
* :mod:`repro.platform` -- the performance repository (projects, queue, results, ACL, API),
* :mod:`repro.driver` -- the ``sqalpel.py`` experiment driver,
* :mod:`repro.analytics` -- the data series behind the demo's visual analytics,
* :mod:`repro.reports` -- Table 1 / Table 2 and figure report builders,
* :mod:`repro.cli` -- the ``repro-sqalpel`` command line tool.

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
