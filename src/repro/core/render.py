"""Rendering concrete queries from templates.

The final step of query generation "is injection of tokens that embody
predicates, expressions, and other text snippets" into the template's slots.
A :class:`ConcreteQuery` records both the rendered SQL text and the literal
assignment that produced it, so the analytics layer can later attribute cost
to individual lexical terms (Figure 2) and diff two variants (Figure 4).

Rendering honours the at-most-once rule: within one query a literal (that is,
one specific grammar line) is used for at most one slot.  Slots of the same
lexical class therefore receive *distinct* literals, and because order is
ignored the canonical key of a query sorts the chosen literals per class.
"""

from __future__ import annotations

import itertools
import random
import re
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.model import Grammar, Literal, Text
from repro.core.normalize import NormalizedGrammar, normalize
from repro.core.templates import Slot, Template
from repro.errors import RenderError

_WHITESPACE = re.compile(r"\s+")


@dataclass(frozen=True)
class ConcreteQuery:
    """A concrete query rendered from a template.

    Attributes
    ----------
    sql:
        The rendered SQL text (whitespace-normalised).
    template:
        The template the query was rendered from.
    assignment:
        The literal chosen for each slot, in slot order.
    """

    sql: str
    template: Template
    assignment: tuple[Literal, ...] = field(default_factory=tuple)

    @property
    def key(self) -> tuple:
        """Canonical identity of the query (order of same-class literals ignored)."""
        per_class: dict[str, list[tuple[str, int]]] = {}
        for literal in self.assignment:
            per_class.setdefault(literal.rule, []).append(literal.key)
        canonical = tuple(
            (rule, tuple(sorted(keys))) for rule, keys in sorted(per_class.items())
        )
        return (self.template.signature, canonical)

    @property
    def terms(self) -> tuple[str, ...]:
        """The lexical terms (literal texts) used by the query."""
        return tuple(literal.text for literal in self.assignment)

    def size(self) -> int:
        """Number of lexical components in the query."""
        return len(self.assignment)

    def uses(self, term: str) -> bool:
        """Return True when the query uses a literal whose text equals ``term``."""
        return any(literal.text == term for literal in self.assignment)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.sql


def _join_elements(template: Template, literals: Sequence[Literal]) -> str:
    """Splice ``literals`` into the template's slots and normalise whitespace."""
    rendered: list[str] = []
    slot_index = 0
    for element in template.elements:
        if isinstance(element, Text):
            rendered.append(element.value)
        else:
            rendered.append(literals[slot_index].text)
            slot_index += 1
    return _WHITESPACE.sub(" ", "".join(rendered)).strip()


class QueryRenderer:
    """Render templates of one grammar into concrete queries."""

    def __init__(self, grammar: Grammar | NormalizedGrammar):
        if isinstance(grammar, NormalizedGrammar):
            self._normalized = grammar
        else:
            self._normalized = normalize(grammar)

    # -- single renderings ----------------------------------------------------

    def render(self, template: Template,
               assignment: Sequence[Literal] | None = None,
               rng: random.Random | None = None) -> ConcreteQuery:
        """Render ``template`` with an explicit or randomly drawn assignment.

        With ``assignment=None`` a uniformly random valid assignment is drawn
        (distinct literals per class).  An explicit assignment must provide
        one literal per slot, in slot order, each of the slot's class, with no
        literal repeated.
        """
        slots = template.slots
        if assignment is None:
            assignment = self._random_assignment(template, rng or random.Random())
        if len(assignment) != len(slots):
            raise RenderError(
                f"template has {len(slots)} slots but {len(assignment)} literals were given"
            )
        used: set[tuple[str, int]] = set()
        for slot, literal in zip(slots, assignment):
            if literal.rule != slot.rule:
                raise RenderError(
                    f"slot of class '{slot.rule}' cannot hold literal of class "
                    f"'{literal.rule}'"
                )
            if literal.key in used:
                raise RenderError(
                    f"literal '{literal.text}' (line {literal.line}) used more than once"
                )
            used.add(literal.key)
        sql = _join_elements(template, list(assignment))
        return ConcreteQuery(sql=sql, template=template, assignment=tuple(assignment))

    def _random_assignment(self, template: Template, rng: random.Random) -> list[Literal]:
        chosen: list[Literal] = []
        used: set[tuple[str, int]] = set()
        for slot in template.slots:
            pool = [
                literal
                for literal in self._normalized.literals_by_rule.get(slot.rule, [])
                if literal.key not in used
            ]
            if not pool:
                raise RenderError(
                    f"not enough literals of class '{slot.rule}' to fill the template"
                )
            literal = rng.choice(pool)
            used.add(literal.key)
            chosen.append(literal)
        return chosen

    # -- exhaustive renderings --------------------------------------------------

    def render_all(self, template: Template, limit: int | None = None
                   ) -> Iterator[ConcreteQuery]:
        """Yield every distinct concrete query of ``template``.

        Completion sets are generated per lexical class as combinations (order
        ignored) and spliced into slots in a deterministic order, so the
        number of yielded queries equals
        :func:`repro.core.space.template_completions`.
        """
        slots = template.slots
        counts = template.slot_counts()
        per_class_choices: list[list[tuple[Literal, ...]]] = []
        class_order = sorted(counts)
        for rule_name in class_order:
            pool = self._normalized.literals_by_rule.get(rule_name, [])
            if counts[rule_name] > len(pool):
                return
            per_class_choices.append(
                [combo for combo in itertools.combinations(pool, counts[rule_name])]
            )
        produced = 0
        for selection in itertools.product(*per_class_choices):
            chosen = {rule: list(combo) for rule, combo in zip(class_order, selection)}
            assignment: list[Literal] = []
            cursor = {rule: 0 for rule in class_order}
            for slot in slots:
                assignment.append(chosen[slot.rule][cursor[slot.rule]])
                cursor[slot.rule] += 1
            yield self.render(template, assignment)
            produced += 1
            if limit is not None and produced >= limit:
                return

    def sample(self, template: Template, count: int,
               rng: random.Random | None = None) -> list[ConcreteQuery]:
        """Draw ``count`` random concrete queries (duplicates removed)."""
        rng = rng or random.Random()
        queries: dict[tuple, ConcreteQuery] = {}
        attempts = 0
        while len(queries) < count and attempts < count * 20:
            query = self.render(template, rng=rng)
            queries[query.key] = query
            attempts += 1
        return list(queries.values())


def render_template(grammar: Grammar, template: Template,
                    assignment: Sequence[Literal] | None = None,
                    rng: random.Random | None = None) -> ConcreteQuery:
    """Convenience wrapper: render one template of ``grammar``."""
    return QueryRenderer(grammar).render(template, assignment=assignment, rng=rng)
