"""Query-space statistics: the numbers behind Table 2 of the paper.

For a grammar the interesting sizes are

* **tags** -- the number of lexical literals ("tags") the grammar defines,
* **templates** -- the number of distinct templates derivable from it under
  the at-most-once rule (capped by the hard system limit), and
* **space** -- the number of concrete queries in the language, i.e. the sum
  over templates of the number of ways their slots can be filled with
  distinct literals.

Because order is ignored, a template with ``k`` slots of a lexical class that
defines ``n`` literals can be completed in ``C(n, k)`` ways; the completions
of different classes are independent, so a template contributes the product
of its per-class binomials and the space is the sum of those products.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

from repro.core.model import Grammar
from repro.core.normalize import NormalizedGrammar, normalize
from repro.core.templates import (
    DEFAULT_TEMPLATE_LIMIT,
    Template,
    TemplateEnumeration,
    TemplateGenerator,
)


@dataclass
class SpaceReport:
    """Space statistics of one grammar (one row of Table 2)."""

    name: str
    tags: int
    templates: int
    space: int
    truncated: bool = False
    limit: int = DEFAULT_TEMPLATE_LIMIT

    def template_label(self) -> str:
        """Template count formatted as the paper prints it (``>100K`` when capped)."""
        if self.truncated:
            return f">{self.limit // 1000}K" if self.limit >= 1000 else f">{self.limit}"
        return str(self.templates)

    def space_label(self) -> str:
        """Space size formatted as the paper prints it (``-`` when capped)."""
        return "-" if self.truncated else str(self.space)

    def as_row(self) -> tuple[str, int, str, str]:
        """Return (name, tags, templates, space) with paper-style formatting."""
        return (self.name, self.tags, self.template_label(), self.space_label())


def template_completions(template: Template, normalized: NormalizedGrammar) -> int:
    """Number of distinct concrete queries a single template expands into."""
    total = 1
    for rule_name, slots in template.slot_counts().items():
        available = normalized.literal_count(rule_name)
        total *= comb(available, slots)
    return total


def space_of(enumeration: TemplateEnumeration, normalized: NormalizedGrammar) -> int:
    """Total number of concrete queries covered by ``enumeration``.

    When the enumeration was truncated the value is a lower bound; callers
    should consult ``enumeration.truncated`` (the report helpers below do).
    """
    return sum(template_completions(template, normalized) for template in enumeration)


def space_report(grammar: Grammar, name: str | None = None,
                 limit: int = DEFAULT_TEMPLATE_LIMIT) -> SpaceReport:
    """Compute the (tags, templates, space) row for ``grammar``."""
    normalized = normalize(grammar)
    enumeration = TemplateGenerator(normalized, limit=limit).enumerate()
    return SpaceReport(
        name=name or grammar.name,
        tags=normalized.tag_count(),
        templates=len(enumeration),
        space=space_of(enumeration, normalized),
        truncated=enumeration.truncated,
        limit=limit,
    )
