"""Core SQALPEL contribution: the query-space grammar machinery.

The subpackage implements, from the bottom up:

* :mod:`repro.core.model` -- the grammar object model (rules, alternatives,
  references, lexical literals),
* :mod:`repro.core.dsl` -- the textual SQALPEL grammar language of Figure 1
  (parser and serialiser),
* :mod:`repro.core.normalize` -- the normalisation pass that separates lexical
  token rules from structural rules,
* :mod:`repro.core.validate` -- grammar validation (missing rules, dead rules,
  empty rules, duplicate literals),
* :mod:`repro.core.dialect` -- per-target dialect sections for lexical tokens,
* :mod:`repro.core.templates` -- recursive-descent template generation under
  the at-most-once literal rule,
* :mod:`repro.core.space` -- query-space statistics (tags, templates, space),
* :mod:`repro.core.render` -- injection of literal tokens into templates to
  obtain concrete queries.

The public names below form the stable API of the core layer.
"""

from repro.core.model import (
    Alternative,
    Grammar,
    Literal,
    Part,
    Reference,
    Rule,
    Text,
)
from repro.core.dsl import parse_grammar, serialize_grammar
from repro.core.normalize import NormalizedGrammar, normalize
from repro.core.validate import ValidationReport, validate
from repro.core.dialect import DialectCatalog, apply_dialect
from repro.core.templates import Template, TemplateGenerator, enumerate_templates
from repro.core.space import SpaceReport, space_report
from repro.core.render import ConcreteQuery, QueryRenderer, render_template

__all__ = [
    "Alternative",
    "Grammar",
    "Literal",
    "Part",
    "Reference",
    "Rule",
    "Text",
    "parse_grammar",
    "serialize_grammar",
    "NormalizedGrammar",
    "normalize",
    "ValidationReport",
    "validate",
    "DialectCatalog",
    "apply_dialect",
    "Template",
    "TemplateGenerator",
    "enumerate_templates",
    "SpaceReport",
    "space_report",
    "ConcreteQuery",
    "QueryRenderer",
    "render_template",
]
