"""Parser and serialiser for the textual SQALPEL grammar language.

The surface syntax follows Figure 1 of the paper::

    query:
        SELECT ${projection} FROM ${l_tables} $[l_filter]
    projection:
        ${l_count}
        ${l_column} ${columnlist}*
    l_tables:
        nation
    ...

* A rule starts with an identifier followed by ``:`` at the beginning of a
  line.  Everything indented below it (until the next rule header) is the list
  of alternatives, one per line.
* Inside an alternative, ``${name}`` is a mandatory reference, ``$[name]`` an
  optional reference and ``${name}*`` a repeated reference.  All other text is
  kept verbatim.
* A dialect section for a lexical rule is written as ``name@dialect:``; its
  alternatives replace the default ones when the grammar is specialised for
  that dialect (:func:`repro.core.dialect.apply_dialect`).
* ``#`` starts a comment that runs to the end of the line; blank lines are
  ignored.

:func:`parse_grammar` produces a :class:`repro.core.model.Grammar`;
:func:`serialize_grammar` renders a grammar back to this format so grammars
can be stored, edited by the project owner and re-parsed (the platform stores
grammars in this textual form).
"""

from __future__ import annotations

import re

from repro.core.model import Alternative, Grammar, Part, Reference, Rule, Text
from repro.errors import GrammarSyntaxError

_RULE_HEADER = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)(?:@(?P<dialect>[A-Za-z_][A-Za-z0-9_.\-]*))?\s*:\s*(?P<rest>.*)$"
)
_REFERENCE = re.compile(r"\$\{(?P<braced>[A-Za-z_][A-Za-z0-9_]*)\}(?P<star>\*)?|\$\[(?P<optional>[A-Za-z_][A-Za-z0-9_]*)\]")
_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _strip_comment(line: str) -> str:
    """Remove a ``#`` comment unless the ``#`` is part of a quoted string."""
    in_single = False
    in_double = False
    for index, char in enumerate(line):
        if char == "'" and not in_double:
            in_single = not in_single
        elif char == '"' and not in_single:
            in_double = not in_double
        elif char == "#" and not in_single and not in_double:
            return line[:index]
    return line


def parse_alternative(text: str, line: int = 0) -> Alternative:
    """Parse a single alternative body into its parts.

    The function is exposed for tests and for the extractor, which builds
    alternatives programmatically from SQL fragments but occasionally needs
    to re-parse template text.
    """
    parts: list[Part] = []
    position = 0
    for match in _REFERENCE.finditer(text):
        if match.start() > position:
            parts.append(Text(text[position:match.start()]))
        if match.group("optional") is not None:
            parts.append(Reference(match.group("optional"), optional=True))
        else:
            parts.append(
                Reference(match.group("braced"), repeated=match.group("star") is not None)
            )
        position = match.end()
    if position < len(text):
        parts.append(Text(text[position:]))
    if not parts:
        parts.append(Text(""))
    return Alternative(parts=parts, line=line)


def parse_grammar(source: str, name: str = "grammar", start: str | None = None) -> Grammar:
    """Parse SQALPEL grammar DSL text into a :class:`Grammar`.

    Parameters
    ----------
    source:
        The grammar text.
    name:
        A display name stored on the grammar (projects use the experiment name).
    start:
        Optional explicit start rule; defaults to the first rule defined.

    Raises
    ------
    GrammarSyntaxError
        For malformed rule headers, alternatives defined before any rule
        header, dialect sections of unknown rules, or an empty grammar.
    """
    grammar = Grammar(rules={}, start=None, name=name, source=source)
    current: Rule | None = None
    current_dialect: str | None = None

    for lineno, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line).rstrip()
        if not line.strip():
            continue

        indented = line[0] in (" ", "\t")
        header = None if indented else _RULE_HEADER.match(line.strip())

        if header is not None:
            rule_name = header.group("name")
            dialect = header.group("dialect")
            rest = header.group("rest").strip()
            if dialect:
                if rule_name not in grammar.rules:
                    raise GrammarSyntaxError(
                        f"dialect section '{rule_name}@{dialect}' appears before rule "
                        f"'{rule_name}' is defined",
                        line=lineno,
                    )
                current = grammar.rules[rule_name]
                current_dialect = dialect
                current.dialects.setdefault(dialect, [])
            else:
                if rule_name in grammar.rules:
                    raise GrammarSyntaxError(
                        f"rule '{rule_name}' is defined more than once", line=lineno
                    )
                current = Rule(name=rule_name, alternatives=[], line=lineno)
                current_dialect = None
                grammar.add_rule(current)
            if rest:
                _append_alternative(current, current_dialect, rest, lineno)
            continue

        if current is None:
            raise GrammarSyntaxError(
                "alternative found before any rule header", line=lineno
            )
        _append_alternative(current, current_dialect, line.strip(), lineno)

    if not grammar.rules:
        raise GrammarSyntaxError("the grammar does not define any rule")
    if start is not None:
        if start not in grammar.rules:
            raise GrammarSyntaxError(f"start rule '{start}' is not defined")
        grammar.start = start
    return grammar


def _append_alternative(rule: Rule, dialect: str | None, text: str, lineno: int) -> None:
    """Attach the alternative ``text`` to ``rule`` (or one of its dialect sections)."""
    alternative = parse_alternative(text, line=lineno)
    if dialect is None:
        rule.alternatives.append(alternative)
    else:
        rule.dialects[dialect].append(alternative)


def serialize_grammar(grammar: Grammar, indent: str = "    ") -> str:
    """Render ``grammar`` back to the textual DSL.

    The output is stable: rules come out in definition order, alternatives one
    per indented line, dialect sections directly after their base rule.
    Re-parsing the output yields an equivalent grammar (the round-trip
    property is covered by property-based tests).
    """
    lines: list[str] = []
    for rule in grammar:
        lines.append(f"{rule.name}:")
        for alternative in rule.alternatives:
            lines.append(f"{indent}{alternative.text()}")
        for dialect, alternatives in sorted(rule.dialects.items()):
            lines.append(f"{rule.name}@{dialect}:")
            for alternative in alternatives:
                lines.append(f"{indent}{alternative.text()}")
    return "\n".join(lines) + "\n"


def is_valid_rule_name(name: str) -> bool:
    """Return True when ``name`` is a legal rule identifier."""
    return bool(_IDENTIFIER.match(name))


#: The grammar of Figure 1 in the paper, used by examples, tests and benches.
FIGURE1_GRAMMAR = """\
query:
    SELECT ${projection} FROM ${l_tables} $[l_filter]
projection:
    ${l_count}
    ${l_column} ${columnlist}*
l_tables:
    nation
columnlist:
    , ${l_column}
l_column:
    n_nationkey
    n_name
    n_regionkey
    n_comment
l_count:
    count(*)
l_filter:
    WHERE n_name= 'BRAZIL'
"""
