"""Template generation by recursive descent.

A *template* is a sentence derived from the grammar in which every structural
rule has been expanded and only free text (SQL keywords, punctuation) and
references to lexical token classes remain.  Templates are the intermediate
product between the grammar and concrete queries: the final step
(:mod:`repro.core.render`) injects literal tokens into the template's slots.

Three rules from the paper shape the enumeration:

* **Recursive descent.**  "Generation of concrete sentences from the grammar
  is implemented with a straight-forward recursive descend algorithm.  This
  process stops when the parse tree only contains key words and references to
  lexical tokens."
* **Order is ignored.**  "Inspired by the observation that most query
  optimizers normalize expression lists internally, we can ignore order, too,
  in the query generation.  It suffices to count the lexical tokens during
  template generation."  Two derivations that use the same lexical classes
  the same number of times (and the same keyword skeleton) are therefore the
  same template.
* **At-most-once literals.**  "We enforce that the literal tokens are used at
  most once in a query."  A template may not request more slots of a lexical
  class than that class has literals, and repetition operators are bounded by
  the available literal budget instead of producing an infinite language.

Finally, "the number of query templates derived from a grammar is capped
using a hard system limit"; :data:`DEFAULT_TEMPLATE_LIMIT` is that limit and
enumeration either truncates (reporting ``truncated=True``) or raises
:class:`repro.errors.SpaceLimitExceeded` depending on the caller's choice.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.model import Alternative, Grammar, Part, Reference, Text
from repro.core.normalize import NormalizedGrammar, normalize
from repro.errors import GrammarError, SpaceLimitExceeded

#: The "hard system limit" on the number of templates derived from a grammar.
DEFAULT_TEMPLATE_LIMIT = 100_000

#: Safety bound on derivation depth, to catch pathological recursion that the
#: literal budget cannot bound (e.g. structural cycles without lexical rules
#: that slipped past validation).
MAX_DEPTH = 64

_WHITESPACE = re.compile(r"\s+")


@dataclass(frozen=True)
class Slot:
    """A placeholder for a literal of lexical class ``rule`` inside a template."""

    rule: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"${{{self.rule}}}"


#: Elements of a template: free text or a lexical slot.
Element = Text | Slot


@dataclass(frozen=True)
class Template:
    """A fully expanded query template.

    Attributes
    ----------
    elements:
        The text fragments and lexical slots in derivation order.
    signature:
        The canonical identity of the template: the sorted multiset of
        lexical classes used plus the normalised keyword skeleton.  Two
        derivations with equal signatures are the same template.
    """

    elements: tuple[Element, ...]
    signature: tuple

    @property
    def slots(self) -> tuple[Slot, ...]:
        """Lexical slots of the template in derivation order."""
        return tuple(element for element in self.elements if isinstance(element, Slot))

    def slot_counts(self) -> Counter:
        """Return how many slots of each lexical class the template has."""
        return Counter(slot.rule for slot in self.slots)

    def size(self) -> int:
        """Number of components (lexical slots) in the template.

        The experiment-history figure sizes its nodes by "the number of
        components in the query"; this is that number.
        """
        return len(self.slots)

    def text(self) -> str:
        """Render the template with ``${class}`` placeholders."""
        rendered = "".join(
            element.value if isinstance(element, Text) else str(element)
            for element in self.elements
        )
        return _WHITESPACE.sub(" ", rendered).strip()

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.text()


def _make_template(elements: list[Element]) -> Template:
    counts = Counter(
        element.rule for element in elements if isinstance(element, Slot)
    )
    skeleton = _WHITESPACE.sub(
        " ",
        " ".join(
            element.value.strip()
            for element in elements
            if isinstance(element, Text) and element.value.strip()
        ),
    ).strip()
    signature = (tuple(sorted(counts.items())), skeleton)
    return Template(elements=tuple(elements), signature=signature)


@dataclass
class TemplateEnumeration:
    """Outcome of enumerating the templates of a grammar."""

    templates: list[Template] = field(default_factory=list)
    truncated: bool = False
    limit: int = DEFAULT_TEMPLATE_LIMIT

    def __len__(self) -> int:
        return len(self.templates)

    def __iter__(self) -> Iterator[Template]:
        return iter(self.templates)

    def count_label(self) -> str:
        """Return the template count as the paper prints it (``>100K`` when capped)."""
        if self.truncated:
            return f">{self.limit // 1000}K" if self.limit >= 1000 else f">{self.limit}"
        return str(len(self.templates))


class TemplateGenerator:
    """Enumerate the templates of a grammar under the at-most-once rule.

    Parameters
    ----------
    grammar:
        The grammar (or an already-normalised grammar) to expand.
    limit:
        Hard cap on the number of *distinct* templates produced.
    strict:
        When True, exceeding the cap raises :class:`SpaceLimitExceeded`;
        when False (default) enumeration stops and the result is flagged
        as truncated, which is what the Table 2 reproduction needs for the
        ``>100K`` entries.
    """

    def __init__(self, grammar: Grammar | NormalizedGrammar,
                 limit: int = DEFAULT_TEMPLATE_LIMIT, strict: bool = False):
        if isinstance(grammar, NormalizedGrammar):
            self._normalized = grammar
        else:
            self._normalized = normalize(grammar)
        if limit <= 0:
            raise GrammarError("the template limit must be positive")
        self.limit = limit
        self.strict = strict

    # -- public API ---------------------------------------------------------

    def enumerate(self, start: str | None = None) -> TemplateEnumeration:
        """Enumerate distinct templates reachable from ``start`` (default: start rule)."""
        normalized = self._normalized
        origin = start or normalized.start
        if origin not in normalized.grammar:
            raise GrammarError(f"unknown start rule '{origin}'")

        budget = Counter(
            {name: normalized.literal_count(name) for name in normalized.lexical}
        )
        result = TemplateEnumeration(limit=self.limit)
        seen: set[tuple] = set()
        try:
            for elements, _used in self._expand_rule(origin, budget, depth=0):
                template = _make_template(elements)
                if template.signature in seen:
                    continue
                seen.add(template.signature)
                result.templates.append(template)
                if len(result.templates) >= self.limit:
                    result.truncated = True
                    if self.strict:
                        raise SpaceLimitExceeded(self.limit)
                    break
        except RecursionError as exc:  # pragma: no cover - defensive
            raise GrammarError("grammar recursion is too deep to expand") from exc
        return result

    # -- recursive descent ----------------------------------------------------

    def _expand_rule(self, name: str, budget: Counter, depth: int
                     ) -> Iterator[tuple[list[Element], Counter]]:
        """Yield (elements, used-literal-count) expansions of rule ``name``."""
        if depth > MAX_DEPTH:
            raise GrammarError(
                f"maximum derivation depth {MAX_DEPTH} exceeded while expanding "
                f"rule '{name}'"
            )
        normalized = self._normalized
        if normalized.is_lexical(name):
            if budget[name] >= 1:
                yield [Slot(name)], Counter({name: 1})
            return
        rule = normalized.rule(name)
        for alternative in rule.alternatives:
            yield from self._expand_parts(alternative.parts, budget, depth + 1)

    def _expand_parts(self, parts: list[Part], budget: Counter, depth: int
                      ) -> Iterator[tuple[list[Element], Counter]]:
        """Expand a sequence of parts left to right, threading the literal budget."""
        if not parts:
            yield [], Counter()
            return
        first, rest = parts[0], parts[1:]
        for head_elements, head_used in self._expand_part(first, budget, depth):
            remaining = budget - head_used
            for tail_elements, tail_used in self._expand_parts(rest, remaining, depth):
                yield head_elements + tail_elements, head_used + tail_used

    def _expand_part(self, part: Part, budget: Counter, depth: int
                     ) -> Iterator[tuple[list[Element], Counter]]:
        """Expand a single part (text, mandatory, optional or repeated reference)."""
        if isinstance(part, Text):
            yield [part], Counter()
            return
        if part.repeated:
            yield from self._expand_repeated(part.name, budget, depth, floor=None)
            return
        if part.optional:
            yield [], Counter()
        yield from self._expand_rule(part.name, budget, depth)

    def _expand_repeated(self, name: str, budget: Counter, depth: int,
                         floor: tuple | None) -> Iterator[tuple[list[Element], Counter]]:
        """Expand ``${name}*`` as zero or more budget-bounded repetitions.

        Because templates ignore order, repetitions are generated as a
        multiset: each successive repetition's signature must be >= the
        previous one (``floor``), which avoids enumerating every permutation
        of the same repetition set.
        """
        yield [], Counter()
        for elements, used in self._expand_rule(name, budget, depth):
            if not used:
                # A repetition that consumes no literal would repeat forever;
                # emit it once and stop.
                yield elements, used
                continue
            signature = tuple(sorted(used.items()))
            if floor is not None and signature < floor:
                continue
            remaining = budget - used
            for more_elements, more_used in self._expand_repeated(
                    name, remaining, depth, floor=signature):
                yield elements + more_elements, used + more_used


def enumerate_templates(grammar: Grammar, limit: int = DEFAULT_TEMPLATE_LIMIT,
                        strict: bool = False, start: str | None = None
                        ) -> TemplateEnumeration:
    """Convenience wrapper around :class:`TemplateGenerator`."""
    return TemplateGenerator(grammar, limit=limit, strict=strict).enumerate(start=start)
