"""Dialect handling for lexical token rules.

The paper: "It assumes that the systems being compared understand more-or-less
the same SQL dialect [...] Minor differences in syntax are easily accommodated
using dialect sections for the lexical tokens in the grammar specification."

A dialect section is written in the DSL as ``rule@dialect:`` followed by the
replacement alternatives.  :func:`apply_dialect` produces a new grammar in
which every rule that has a section for the requested dialect uses those
alternatives instead of the default ones.  The :class:`DialectCatalog` is a
small registry of known dialects with token-level rewrite helpers used by the
engines and the extractor (e.g. ``LIMIT n`` vs ``FETCH FIRST n ROWS ONLY``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import Alternative, Grammar, Rule
from repro.errors import DialectError


def apply_dialect(grammar: Grammar, dialect: str | None) -> Grammar:
    """Return a copy of ``grammar`` specialised for ``dialect``.

    When ``dialect`` is None the grammar is returned unchanged (not copied).
    Unknown dialects raise :class:`DialectError` unless no rule in the grammar
    declares any dialect section at all (in which case there is nothing to
    specialise and the grammar is returned as-is).
    """
    if dialect is None:
        return grammar
    declared = grammar.dialect_names()
    if declared and dialect not in declared:
        raise DialectError(
            f"dialect '{dialect}' is not declared by the grammar "
            f"(known dialects: {', '.join(sorted(declared)) or 'none'})"
        )

    specialised = Grammar(rules={}, start=None, name=grammar.name, source=grammar.source)
    for rule in grammar:
        alternatives = [
            Alternative(parts=list(alternative.parts), line=alternative.line)
            for alternative in rule.alternatives_for(dialect)
        ]
        specialised.add_rule(
            Rule(name=rule.name, alternatives=alternatives, line=rule.line, dialects={})
        )
    specialised.start = grammar.start
    return specialised


@dataclass
class DialectSpec:
    """Description of one SQL dialect understood by the tool chain."""

    name: str
    description: str = ""
    #: token-level textual substitutions applied to rendered queries,
    #: e.g. {"true": "1"} for engines without boolean literals.
    substitutions: dict[str, str] = field(default_factory=dict)
    #: how a row-count limit is expressed; ``{n}`` is replaced by the count.
    limit_syntax: str = "LIMIT {n}"
    #: string concatenation operator.
    concat_operator: str = "||"


@dataclass
class DialectCatalog:
    """Registry of dialects known to the platform.

    The platform's DBMS catalog references dialect names; the driver asks the
    catalog to rewrite rendered queries before shipping them to a target
    engine.
    """

    dialects: dict[str, DialectSpec] = field(default_factory=dict)

    def register(self, spec: DialectSpec) -> None:
        """Add or replace a dialect specification."""
        self.dialects[spec.name] = spec

    def get(self, name: str) -> DialectSpec:
        """Return the dialect ``name`` or raise :class:`DialectError`."""
        try:
            return self.dialects[name]
        except KeyError:
            raise DialectError(f"unknown dialect '{name}'") from None

    def names(self) -> list[str]:
        """Return the registered dialect names, sorted."""
        return sorted(self.dialects)

    def rewrite(self, sql: str, dialect: str) -> str:
        """Apply the token-level substitutions of ``dialect`` to ``sql``."""
        spec = self.get(dialect)
        rewritten = sql
        for source, target in spec.substitutions.items():
            rewritten = rewritten.replace(source, target)
        return rewritten

    @classmethod
    def default(cls) -> "DialectCatalog":
        """Return the catalog used throughout the reproduction.

        ``generic`` is the dialect of the built-in engines; ``rowstore`` and
        ``columnstore`` are aliases registered so projects can attach distinct
        dialect sections per engine even though the engines currently accept
        the same SQL subset.
        """
        catalog = cls()
        catalog.register(DialectSpec(name="generic", description="built-in engine dialect"))
        catalog.register(
            DialectSpec(
                name="rowstore",
                description="tuple-at-a-time reference engine",
            )
        )
        catalog.register(
            DialectSpec(
                name="columnstore",
                description="vectorised columnar engine",
            )
        )
        return catalog
