"""Grammar normalisation.

The paper (Section 3.1): "Internally, the grammar is normalized by making a
clear distinction between rules producing lexical tokens, only governing
alternative text snippets, and all others."

The normalised view classifies every rule as *lexical* or *structural*,
resolves which lexical classes are reachable from each structural rule, and
pre-computes the literal inventory used by the template generator and the
space counter.  Normalisation never mutates the input grammar; it produces a
:class:`NormalizedGrammar` wrapper that the rest of the core layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import Grammar, Literal, Rule
from repro.errors import GrammarValidationError


@dataclass
class NormalizedGrammar:
    """A read-only, classified view over a :class:`Grammar`.

    Attributes
    ----------
    grammar:
        The underlying grammar (not copied).
    lexical:
        Names of lexical token rules.
    structural:
        Names of structural rules.
    literals:
        All literals, in definition order.
    literals_by_rule:
        Literals grouped per lexical rule.
    reachable:
        For every rule, the set of rule names reachable from it (including
        itself) following references.
    reachable_lexical:
        For every rule, the set of *lexical* rule names reachable from it.
    """

    grammar: Grammar
    lexical: set[str] = field(default_factory=set)
    structural: set[str] = field(default_factory=set)
    literals: list[Literal] = field(default_factory=list)
    literals_by_rule: dict[str, list[Literal]] = field(default_factory=dict)
    reachable: dict[str, set[str]] = field(default_factory=dict)
    reachable_lexical: dict[str, set[str]] = field(default_factory=dict)

    # -- convenience accessors ---------------------------------------------

    @property
    def start(self) -> str:
        """Name of the start rule."""
        assert self.grammar.start is not None
        return self.grammar.start

    def is_lexical(self, name: str) -> bool:
        """Return True when ``name`` denotes a lexical token rule."""
        return name in self.lexical

    def rule(self, name: str) -> Rule:
        """Return the underlying rule object for ``name``."""
        return self.grammar[name]

    def literal_count(self, rule_name: str) -> int:
        """Return how many literal alternatives lexical rule ``rule_name`` has."""
        return len(self.literals_by_rule.get(rule_name, []))

    def tag_count(self) -> int:
        """Total number of lexical literals in the grammar (Table 2 "tag")."""
        return len(self.literals)

    def lexical_classes(self) -> list[str]:
        """Lexical rule names in definition order."""
        return [rule.name for rule in self.grammar if rule.name in self.lexical]


def normalize(grammar: Grammar, strict: bool = True) -> NormalizedGrammar:
    """Classify the rules of ``grammar`` and pre-compute reachability.

    Parameters
    ----------
    grammar:
        The grammar to normalise.
    strict:
        When True (the default) references to undefined rules raise
        :class:`GrammarValidationError`; when False they are recorded as
        unreachable lexical-free rules so :func:`repro.core.validate.validate`
        can report them as findings instead.
    """
    lexical: set[str] = set()
    structural: set[str] = set()
    for rule in grammar:
        if rule.is_lexical():
            lexical.add(rule.name)
        else:
            structural.add(rule.name)

    missing: list[str] = []
    for rule in grammar:
        for referenced in sorted(rule.referenced_names()):
            if referenced not in grammar:
                missing.append(
                    f"rule '{rule.name}' references undefined rule '{referenced}'"
                )
    if missing and strict:
        raise GrammarValidationError(missing)

    literals_by_rule: dict[str, list[Literal]] = {}
    literals: list[Literal] = []
    for rule in grammar:
        if rule.name in lexical:
            rule_literals = rule.literals()
            literals_by_rule[rule.name] = rule_literals
            literals.extend(rule_literals)

    reachable = {rule.name: _reachable_from(grammar, rule.name) for rule in grammar}
    reachable_lexical = {
        name: {target for target in targets if target in lexical}
        for name, targets in reachable.items()
    }

    return NormalizedGrammar(
        grammar=grammar,
        lexical=lexical,
        structural=structural,
        literals=literals,
        literals_by_rule=literals_by_rule,
        reachable=reachable,
        reachable_lexical=reachable_lexical,
    )


def _reachable_from(grammar: Grammar, origin: str) -> set[str]:
    """Return the set of rule names reachable from ``origin`` (including it)."""
    seen: set[str] = set()
    frontier = [origin]
    while frontier:
        name = frontier.pop()
        if name in seen or name not in grammar:
            continue
        seen.add(name)
        frontier.extend(grammar[name].referenced_names())
    return seen
