"""Grammar validation.

The paper: "the validity of the grammar is checked by looking for missing and
dead code rules."  The validator reports:

* **missing rules** -- referenced but never defined,
* **dead rules** -- defined but unreachable from the start rule,
* **empty rules** -- rules without any alternative,
* **empty lexical alternatives** -- literals whose text is blank,
* **left-recursive structural cycles that produce no lexical tokens** --
  cycles between structural rules that never reach a lexical rule can only
  generate empty or infinite derivations, so they are flagged,
* **duplicate literal texts inside one lexical rule** -- legal (the paper
  differentiates them by line number) but reported as a warning.

Findings are split into errors and warnings; :func:`validate` returns a
:class:`ValidationReport` and :func:`check` raises when errors are present,
which is the behaviour the platform uses when a project owner uploads a
grammar.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import Grammar
from repro.core.normalize import NormalizedGrammar, normalize
from repro.errors import GrammarValidationError


@dataclass
class ValidationReport:
    """Result of validating a grammar."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    missing_rules: list[str] = field(default_factory=list)
    dead_rules: list[str] = field(default_factory=list)
    empty_rules: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings do not fail validation)."""
        return not self.errors

    def summary(self) -> str:
        """Return a one-line human readable summary."""
        if self.ok and not self.warnings:
            return "grammar is valid"
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s): "
            + "; ".join(self.errors + self.warnings)
        )


def validate(grammar: Grammar) -> ValidationReport:
    """Validate ``grammar`` and return the findings without raising."""
    report = ValidationReport()
    normalized = normalize(grammar, strict=False)

    _check_missing(grammar, report)
    _check_empty(grammar, report)
    _check_dead(normalized, report)
    _check_unproductive_cycles(normalized, report)
    _check_duplicate_literals(normalized, report)
    return report


def check(grammar: Grammar) -> NormalizedGrammar:
    """Validate ``grammar`` and raise :class:`GrammarValidationError` on errors.

    Returns the normalised grammar on success so callers that validate before
    template generation do not normalise twice.
    """
    report = validate(grammar)
    if not report.ok:
        raise GrammarValidationError(report.errors)
    return normalize(grammar, strict=True)


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------


def _check_missing(grammar: Grammar, report: ValidationReport) -> None:
    for rule in grammar:
        for referenced in sorted(rule.referenced_names()):
            if referenced not in grammar:
                report.missing_rules.append(referenced)
                report.errors.append(
                    f"missing rule: '{referenced}' is referenced from '{rule.name}' "
                    "but never defined"
                )


def _check_empty(grammar: Grammar, report: ValidationReport) -> None:
    for rule in grammar:
        if not rule.alternatives:
            report.empty_rules.append(rule.name)
            report.errors.append(f"empty rule: '{rule.name}' has no alternatives")
            continue
        if rule.is_lexical():
            for alternative in rule.alternatives:
                if not alternative.text().strip():
                    report.errors.append(
                        f"empty literal: rule '{rule.name}' has a blank literal on "
                        f"line {alternative.line}"
                    )


def _check_dead(normalized: NormalizedGrammar, report: ValidationReport) -> None:
    grammar = normalized.grammar
    if grammar.start is None:
        return
    reachable = normalized.reachable.get(grammar.start, set())
    for rule in grammar:
        if rule.name not in reachable:
            report.dead_rules.append(rule.name)
            report.errors.append(
                f"dead rule: '{rule.name}' is not reachable from start rule "
                f"'{grammar.start}'"
            )


def _check_unproductive_cycles(normalized: NormalizedGrammar, report: ValidationReport) -> None:
    grammar = normalized.grammar
    for rule in grammar:
        if rule.name in normalized.lexical:
            continue
        reachable = normalized.reachable[rule.name]
        # A structural rule that participates in a cycle...
        in_cycle = any(
            rule.name in normalized.reachable[other]
            for other in reachable
            if other != rule.name and other in grammar
        )
        if not in_cycle:
            continue
        # ...is unproductive when no lexical rule is reachable from it.
        if not normalized.reachable_lexical[rule.name]:
            report.errors.append(
                f"unproductive cycle: rule '{rule.name}' is recursive but never "
                "reaches a lexical token rule"
            )


def _check_duplicate_literals(normalized: NormalizedGrammar, report: ValidationReport) -> None:
    for rule_name, literals in normalized.literals_by_rule.items():
        seen: dict[str, int] = {}
        for literal in literals:
            text = literal.text.strip()
            if text in seen:
                report.warnings.append(
                    f"duplicate literal: rule '{rule_name}' defines '{text}' on lines "
                    f"{seen[text]} and {literal.line}; they are treated as distinct "
                    "tokens (differentiated by line number)"
                )
            else:
                seen[text] = literal.line
