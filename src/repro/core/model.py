"""Object model for SQALPEL query-space grammars.

A grammar is a named set of :class:`Rule` objects.  Each rule has one or more
:class:`Alternative` bodies; an alternative is a sequence of :class:`Part`
objects which are either free text (:class:`Text`) or references to other
rules (:class:`Reference`).  References come in three flavours, mirroring the
EBNF-like encoding used by the paper (Figure 1):

* ``${name}``   -- a mandatory reference,
* ``$[name]``   -- an optional reference,
* ``${name}*``  -- a repeated reference (zero or more occurrences).

Rules whose every alternative consists purely of text are *lexical token
rules*: their alternatives are the literal tokens (predicates, column names,
expressions, ...) that are later injected into query templates.  By the
paper's convention such rules are named with an ``l_`` prefix, but the
normaliser (:mod:`repro.core.normalize`) classifies them structurally, so the
prefix is a convention rather than a requirement.

Every literal alternative carries the grammar line number it was defined on.
The paper differentiates repeated identical literals "by their line number in
the grammar"; the line number therefore acts as the literal's identity for the
at-most-once rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Text:
    """A free-text fragment of an alternative (SQL keywords, punctuation...)."""

    value: str

    def is_blank(self) -> bool:
        """Return True when the fragment contains only whitespace."""
        return not self.value.strip()

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Reference:
    """A reference to another grammar rule inside an alternative.

    Parameters
    ----------
    name:
        The referenced rule name.
    optional:
        True for ``$[name]`` references.
    repeated:
        True for ``${name}*`` references.
    """

    name: str
    optional: bool = False
    repeated: bool = False

    def marker(self) -> str:
        """Return the DSL surface syntax for this reference."""
        if self.optional:
            return f"$[{self.name}]"
        rendered = f"${{{self.name}}}"
        if self.repeated:
            rendered += "*"
        return rendered

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.marker()


# A part of an alternative is either free text or a reference.
Part = Text | Reference


@dataclass(frozen=True)
class Literal:
    """A lexical literal: one alternative of a lexical token rule.

    The pair ``(rule, line)`` identifies the literal.  Two textually identical
    literals defined on different grammar lines are distinct literals, exactly
    as in the paper ("they are simply differentiated by their line number in
    the grammar").
    """

    rule: str
    text: str
    line: int

    @property
    def key(self) -> tuple[str, int]:
        """Stable identity of the literal inside its grammar."""
        return (self.rule, self.line)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.text


@dataclass
class Alternative:
    """One production alternative of a grammar rule."""

    parts: list[Part]
    line: int = 0

    def references(self) -> list[Reference]:
        """Return the rule references appearing in this alternative, in order."""
        return [part for part in self.parts if isinstance(part, Reference)]

    def referenced_names(self) -> set[str]:
        """Return the set of rule names referenced by this alternative."""
        return {ref.name for ref in self.references()}

    def is_textual(self) -> bool:
        """Return True when the alternative contains no references at all."""
        return not self.references()

    def text(self) -> str:
        """Render the alternative back to its DSL surface form."""
        rendered: list[str] = []
        for part in self.parts:
            if isinstance(part, Text):
                rendered.append(part.value)
            else:
                rendered.append(part.marker())
        return "".join(rendered).strip()

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.text()


@dataclass
class Rule:
    """A named grammar rule with one or more alternatives.

    ``dialects`` optionally maps a dialect name (e.g. ``"monetdb"``) to an
    alternative list that replaces ``alternatives`` when the grammar is
    specialised for that dialect.  Dialect sections are only meaningful for
    lexical rules (the paper: "minor differences in syntax are easily
    accommodated using dialect sections for the lexical tokens").
    """

    name: str
    alternatives: list[Alternative] = field(default_factory=list)
    line: int = 0
    dialects: dict[str, list[Alternative]] = field(default_factory=dict)

    def is_lexical(self) -> bool:
        """Return True when every alternative is pure text (a token rule)."""
        return bool(self.alternatives) and all(
            alternative.is_textual() for alternative in self.alternatives
        )

    def referenced_names(self) -> set[str]:
        """Return every rule name referenced from any alternative."""
        names: set[str] = set()
        for alternative in self.alternatives:
            names |= alternative.referenced_names()
        return names

    def literals(self) -> list[Literal]:
        """Return the literals of a lexical rule (empty for structural rules)."""
        if not self.is_lexical():
            return []
        return [
            Literal(rule=self.name, text=alternative.text(), line=alternative.line)
            for alternative in self.alternatives
        ]

    def alternatives_for(self, dialect: str | None) -> list[Alternative]:
        """Return the alternatives to use for ``dialect`` (default when None)."""
        if dialect and dialect in self.dialects:
            return self.dialects[dialect]
        return self.alternatives


@dataclass
class Grammar:
    """A SQALPEL query-space grammar.

    The first rule defined in the source text is the *start rule* unless an
    explicit ``start`` name is given.  Iterating a grammar yields its rules in
    definition order.
    """

    rules: dict[str, Rule] = field(default_factory=dict)
    start: str | None = None
    name: str = "grammar"
    source: str = ""

    def __post_init__(self) -> None:
        if self.start is None and self.rules:
            self.start = next(iter(self.rules))

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules.values())

    def __len__(self) -> int:
        return len(self.rules)

    def __contains__(self, name: str) -> bool:
        return name in self.rules

    def __getitem__(self, name: str) -> Rule:
        return self.rules[name]

    # -- construction helpers ------------------------------------------------

    def add_rule(self, rule: Rule) -> None:
        """Add ``rule`` to the grammar, keeping the first rule as start rule."""
        self.rules[rule.name] = rule
        if self.start is None:
            self.start = rule.name

    @classmethod
    def from_rules(cls, rules: Iterable[Rule], start: str | None = None,
                   name: str = "grammar") -> "Grammar":
        """Build a grammar from an iterable of rules."""
        grammar = cls(rules={}, start=None, name=name)
        for rule in rules:
            grammar.add_rule(rule)
        if start is not None:
            grammar.start = start
        return grammar

    # -- queries ---------------------------------------------------------------

    def start_rule(self) -> Rule:
        """Return the start rule, raising ``KeyError`` when the grammar is empty."""
        if not self.start:
            raise KeyError("grammar has no start rule")
        return self.rules[self.start]

    def lexical_rules(self) -> list[Rule]:
        """Return the lexical token rules in definition order."""
        return [rule for rule in self if rule.is_lexical()]

    def structural_rules(self) -> list[Rule]:
        """Return the non-lexical rules in definition order."""
        return [rule for rule in self if not rule.is_lexical()]

    def literals(self) -> list[Literal]:
        """Return all lexical literals of the grammar in definition order."""
        found: list[Literal] = []
        for rule in self.lexical_rules():
            found.extend(rule.literals())
        return found

    def literal_counts(self) -> dict[str, int]:
        """Return, per lexical rule, the number of literal alternatives."""
        return {rule.name: len(rule.alternatives) for rule in self.lexical_rules()}

    def tag_count(self) -> int:
        """Return the total number of lexical literals ("tags") in the grammar."""
        return sum(len(rule.alternatives) for rule in self.lexical_rules())

    def dialect_names(self) -> set[str]:
        """Return every dialect name used by any rule of the grammar."""
        names: set[str] = set()
        for rule in self:
            names |= set(rule.dialects)
        return names
