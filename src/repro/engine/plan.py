"""The logical-plan intermediate representation shared by both engines.

Historically each executor re-derived the same analysis from the raw AST on
every execution: name resolution of the FROM bindings, classification of the
WHERE conjuncts into push-down / equi-join / residual sets, the greedy
equi-join-connected join order, and the output column names.  SQALPEL's
driver runs every pool query five-plus times per target system, so that work
was repeated on every single repetition.

This module factors the analysis into a *plan-once/execute-many* pipeline:

* :class:`Planner` walks a parsed SELECT once and produces a
  :class:`QueryPlan` -- one :class:`BlockPlan` per query block (the root
  SELECT plus every nested subquery), each holding the resolved scope
  columns, the classified predicates, the push-down assignment, the
  precomputed join schedule and the output names,
* :class:`RowExecutor` / :class:`ColumnExecutor` consume the shared plan and
  only perform the *physical* work (materialise, filter, join, aggregate),
* :class:`PlanCache` is a keyed LRU (normalised SQL text -> plan) that
  engines consult in :meth:`Engine.prepare`, so the driver's repetition loop
  and the pool's morph/re-measure cycle lex, parse and plan exactly once per
  distinct query.

The plan is *logical*: column positions inside intermediate frames still
differ between the row and column backends and are resolved at runtime; the
plan only fixes the decisions both backends share.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.engine.catalog import Catalog
from repro.engine.planner import (
    ClassifiedPredicates,
    ColumnInfo,
    Scope,
    classify_conjuncts,
    output_columns,
)
from repro.engine.storage.skipping import estimate_selectivity
from repro.errors import PlanError
from repro.sqlparser import ast
from repro.sqlparser.printer import to_sql

#: Equi-join conjunct as classified from the WHERE clause.
EquiJoin = tuple[ast.ColumnRef, ast.ColumnRef, ast.Expression]


def normalize_sql(sql: str) -> str:
    """Whitespace-collapsed cache key for a SQL text (case preserved).

    Whitespace inside single-quoted string literals is preserved -- two
    queries differing only inside a literal must never share a cache key.
    """
    parts: list[str] = []
    index, length = 0, len(sql)
    while index < length:
        char = sql[index]
        if char == "'":
            # copy the quoted literal verbatim ('' is an escaped quote)
            end = index + 1
            while end < length:
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        end += 2
                        continue
                    break
                end += 1
            parts.append(sql[index:min(end + 1, length)])
            index = end + 1
        elif char.isspace():
            if parts and parts[-1] != " ":
                parts.append(" ")
            index += 1
        else:
            parts.append(char)
            index += 1
    return "".join(parts).strip().rstrip("; ")


@dataclass(frozen=True)
class JoinStep:
    """One step of a block's join schedule.

    ``frame_index`` names the FROM item to bring in next; ``connecting`` are
    the equi-join conjuncts linking it to the frames joined so far (empty for
    the first step and for cross joins).
    """

    frame_index: int
    connecting: tuple[EquiJoin, ...] = ()


@dataclass
class BlockPlan:
    """The shared analysis of one SELECT block."""

    select: ast.Select
    #: the columns each FROM item contributes, in FROM order.
    item_columns: list[list[ColumnInfo]]
    #: all locally visible columns (concatenated item columns, FROM order).
    columns: list[ColumnInfo]
    #: WHERE conjuncts split into push-down / equi-join / residual sets.
    classified: ClassifiedPredicates
    #: push-down predicates keyed by binding ({} when push-down is disabled).
    pushdown: dict[str, list[ast.Expression]]
    #: predicates evaluated after all joins (includes the single-relation
    #: ones when push-down is disabled, preserving their evaluation order).
    residual: list[ast.Expression]
    #: greedy equi-join-connected join order over the FROM items.
    join_order: list[JoinStep]
    #: output column names, in projection order (stars expanded).
    output_names: list[str]
    #: True when the block needs the grouping/aggregation path.
    needs_aggregation: bool

    def describe(self) -> dict:
        """Compact, JSON-friendly description (used by ``Engine.explain``)."""
        return {
            "from_items": len(self.item_columns),
            "join_order": [step.frame_index for step in self.join_order],
            "pushdown": {binding: len(preds) for binding, preds in self.pushdown.items()},
            "equi_joins": len(self.classified.equi_joins),
            "residual": len(self.residual),
            "output": list(self.output_names),
            "aggregated": self.needs_aggregation,
        }


@dataclass
class QueryPlan:
    """A fully analysed query: the AST plus one :class:`BlockPlan` per block.

    Blocks are keyed by the identity of their ``ast.Select`` node; the plan
    keeps the root AST alive, so the keys stay stable for the plan's
    lifetime.  Plans are immutable once built and safe to share between the
    row and column backends and across driver worker threads.
    """

    select: ast.Select
    sql: str
    blocks: dict[int, BlockPlan]
    predicate_pushdown: bool = True
    #: compiled physical kernels keyed by (block id, flavour); populated
    #: lazily by the executors (see :meth:`kernels`) and therefore amortised
    #: by the plan cache exactly like the logical analysis itself.
    _kernels: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _kernels_lock: threading.Lock = field(default_factory=threading.Lock, init=False,
                                          repr=False, compare=False)

    def kernels(self, block: "BlockPlan", flavour: tuple, build):
        """Get-or-build the compiled kernels of ``block`` for ``flavour``.

        ``flavour`` distinguishes kernel families that cannot be shared (row
        vs column, overflow-guarded vs not).  ``build(block)`` runs at most
        once per (block, flavour) for the lifetime of the plan; the result is
        shared across executions and across driver worker threads.
        """
        key = (id(block.select),) + flavour
        found = self._kernels.get(key)
        if found is None:
            with self._kernels_lock:
                found = self._kernels.get(key)
                if found is None:
                    found = build(block)
                    self._kernels[key] = found
        return found

    def block(self, select: ast.Select) -> BlockPlan | None:
        """The plan of one query block (None when the block is unknown)."""
        return self.blocks.get(id(select))

    @property
    def root(self) -> BlockPlan:
        return self.blocks[id(self.select)]

    def describe(self) -> dict:
        return {
            "sql": self.sql,
            "blocks": len(self.blocks),
            "tables": [ref.name for ref in self.select.table_refs()],
            "root": self.root.describe(),
        }


class Planner:
    """Produces :class:`QueryPlan` objects from parsed SELECT statements.

    The planner owns every analysis decision both executors share: scope and
    binding resolution, conjunct classification, the push-down assignment
    (honouring the engine's ``predicate_pushdown`` option) and the greedy
    join order.  It is stateless across :meth:`plan` calls and therefore
    safe to share between threads.
    """

    def __init__(self, catalog: Catalog, predicate_pushdown: bool = True):
        self.catalog = catalog
        self.predicate_pushdown = predicate_pushdown

    # -- public API -----------------------------------------------------------

    def plan(self, select: ast.Select, sql_text: str | None = None) -> QueryPlan:
        """Analyse ``select`` (and every nested block) into a :class:`QueryPlan`."""
        blocks: dict[int, BlockPlan] = {}
        self._plan_block(select, None, blocks)
        root_scope = Scope(columns=list(blocks[id(select)].columns))
        # Safety net: plan any block the structured walk did not reach (an
        # exotic AST shape) with the root scope as its outer context.
        for node in select.walk():
            if isinstance(node, ast.Select) and id(node) not in blocks:
                self._plan_block(node, root_scope, blocks)
        return QueryPlan(select=select, sql=sql_text or to_sql(select), blocks=blocks,
                         predicate_pushdown=self.predicate_pushdown)

    def plan_block(self, select: ast.Select, outer_scope: Scope | None = None,
                   registry: dict[int, BlockPlan] | None = None) -> BlockPlan:
        """Plan a single block (used by executors for blocks outside a plan)."""
        return self._plan_block(select, outer_scope, registry if registry is not None else {})

    # -- block analysis ----------------------------------------------------------

    def _plan_block(self, select: ast.Select, outer_scope: Scope | None,
                    blocks: dict[int, BlockPlan]) -> BlockPlan:
        existing = blocks.get(id(select))
        if existing is not None:
            return existing
        item_columns = [self._item_columns(item, outer_scope, blocks)
                        for item in select.from_items]
        local_columns = [column for columns in item_columns for column in columns]
        scope = Scope(columns=local_columns, outer=outer_scope)
        classified = classify_conjuncts(select.where, scope)

        if self.predicate_pushdown:
            binding_tables = _binding_tables(select.from_items)
            pushdown = {
                binding: self._order_pushdown(binding, list(predicates), binding_tables)
                for binding, predicates in classified.single.items()
            }
            residual = list(classified.residual)
        else:
            pushdown = {}
            residual = [
                predicate
                for predicates in classified.single.values()
                for predicate in predicates
            ] + list(classified.residual)

        join_order = self._schedule_joins(item_columns, classified)
        joined_columns = [
            column
            for step in join_order
            for column in item_columns[step.frame_index]
        ]
        output_scope = Scope(columns=joined_columns or local_columns, outer=outer_scope)
        output_names = output_columns(select, output_scope)
        needs_aggregation = (bool(select.group_by) or select.having is not None
                             or select.has_aggregates())

        block = BlockPlan(
            select=select,
            item_columns=item_columns,
            columns=local_columns,
            classified=classified,
            pushdown=pushdown,
            residual=residual,
            join_order=join_order,
            output_names=output_names,
            needs_aggregation=needs_aggregation,
        )
        blocks[id(select)] = block

        # Subqueries inside expressions see the block's own columns as their
        # outer scope (they are evaluated against the joined frame).
        for expression in self._block_expressions(select):
            for subselect in _direct_subselects(expression):
                self._plan_block(subselect, scope, blocks)
        return block

    def _order_pushdown(self, binding: str, predicates: list[ast.Expression],
                        binding_tables: dict[str, str]) -> list[ast.Expression]:
        """Order one scan's push-down conjuncts by estimated selectivity.

        Consults the table statistics the storage layer binds on the catalog;
        without statistics (or with a single predicate) the textual order is
        preserved.  The sort is stable, so ties keep their original order and
        plans stay deterministic.
        """
        if len(predicates) < 2:
            return predicates
        table = binding_tables.get(binding)
        statistics = self.catalog.table_statistics(table) if table else None
        if statistics is None or not statistics.row_count:
            return predicates
        return sorted(predicates,
                      key=lambda predicate: estimate_selectivity(predicate, statistics))

    def _block_expressions(self, select: ast.Select) -> list[ast.Expression]:
        expressions: list[ast.Expression] = []
        if select.where is not None:
            expressions.append(select.where)
        if select.having is not None:
            expressions.append(select.having)
        for item in select.items:
            if not isinstance(item.expression, ast.Star):
                expressions.append(item.expression)
        expressions.extend(select.group_by)
        expressions.extend(order.expression for order in select.order_by)
        return expressions

    # -- FROM item columns -------------------------------------------------------

    def _item_columns(self, item: ast.TableExpression, outer_scope: Scope | None,
                      blocks: dict[int, BlockPlan]) -> list[ColumnInfo]:
        if isinstance(item, ast.TableRef):
            schema = self.catalog.table(item.name)
            return [
                ColumnInfo(binding=item.binding, name=column.name,
                           type_name=column.type_name)
                for column in schema.columns
            ]
        if isinstance(item, ast.SubqueryRef):
            # Derived tables see the enclosing block's *outer* scope, not the
            # enclosing block's own columns (mirroring execution order).
            inner = self._plan_block(item.subquery, outer_scope, blocks)
            return [
                ColumnInfo(binding=item.alias, name=name, type_name="str")
                for name in inner.output_names
            ]
        if isinstance(item, ast.Join):
            left = self._item_columns(item.left, outer_scope, blocks)
            right = self._item_columns(item.right, outer_scope, blocks)
            combined = left + right
            if item.condition is not None:
                condition_scope = Scope(columns=combined, outer=outer_scope)
                for subselect in _direct_subselects(item.condition):
                    self._plan_block(subselect, condition_scope, blocks)
            return combined
        raise PlanError(f"unsupported FROM item {type(item).__name__}")

    # -- join scheduling ---------------------------------------------------------

    def _schedule_joins(self, item_columns: list[list[ColumnInfo]],
                        classified: ClassifiedPredicates) -> list[JoinStep]:
        """Greedy join order: always bring in an equi-join-connected frame next."""
        if not item_columns:
            return []
        sets = [_ColumnSet(columns) for columns in item_columns]
        equi = list(classified.equi_joins)
        steps = [JoinStep(0)]
        current = _ColumnSet(list(item_columns[0]))
        remaining = list(range(1, len(item_columns)))
        while remaining:
            chosen = None
            for index in remaining:
                if _connecting(current, sets[index], equi):
                    chosen = index
                    break
            if chosen is None:
                chosen = remaining[0]
            remaining.remove(chosen)
            connecting = _connecting(current, sets[chosen], equi)
            for entry in connecting:
                equi.remove(entry)
            steps.append(JoinStep(chosen, tuple(connecting)))
            current = current.merged(sets[chosen])
        return steps


class _ColumnSet:
    """Static column-membership test mirroring frame position lookup."""

    def __init__(self, columns: list[ColumnInfo]):
        self.columns = columns
        self._qualified = {(column.binding.lower(), column.name.lower())
                           for column in columns}
        self._names = {column.name.lower() for column in columns}

    def has(self, ref: ast.ColumnRef) -> bool:
        if ref.table:
            return (ref.table.lower(), ref.name.lower()) in self._qualified
        return ref.name.lower() in self._names

    def merged(self, other: "_ColumnSet") -> "_ColumnSet":
        return _ColumnSet(self.columns + other.columns)


def _connecting(left: _ColumnSet, right: _ColumnSet,
                equi_joins: list[EquiJoin]) -> list[EquiJoin]:
    """Equi-joins linking ``left`` and ``right`` (either ref orientation)."""
    found = []
    for left_ref, right_ref, conjunct in equi_joins:
        if left.has(left_ref) and right.has(right_ref):
            found.append((left_ref, right_ref, conjunct))
        elif left.has(right_ref) and right.has(left_ref):
            found.append((left_ref, right_ref, conjunct))
    return found


def _binding_tables(items: list[ast.TableExpression]) -> dict[str, str]:
    """Map each FROM binding (lower-cased) to its base table name."""
    tables: dict[str, str] = {}

    def collect(item: ast.TableExpression) -> None:
        if isinstance(item, ast.TableRef):
            tables[item.binding.lower()] = item.name
        elif isinstance(item, ast.Join):
            collect(item.left)
            collect(item.right)

    for item in items:
        collect(item)
    return tables


def _direct_subselects(expression: ast.Expression) -> list[ast.Select]:
    """SELECT nodes nested directly in ``expression`` (not inside another SELECT)."""
    selects = [node for node in expression.walk() if isinstance(node, ast.Select)]
    direct: list[ast.Select] = []
    for candidate in selects:
        contained = any(
            other is not candidate and any(node is candidate for node in other.walk())
            for other in selects
        )
        if not contained:
            direct.append(candidate)
    return direct


# ---------------------------------------------------------------------------
# plan cache
# ---------------------------------------------------------------------------


@dataclass
class PlanCacheStats:
    """Hit/miss/eviction counters of a :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def describe(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "evictions": self.evictions}


class PlanCache:
    """Thread-safe LRU cache mapping normalised SQL keys to query plans.

    A ``maxsize`` of 0 (or less) disables caching entirely: every lookup is
    a miss and nothing is retained, which is what benchmarks use to compare
    cold planning against the plan-once/execute-many path.
    """

    def __init__(self, maxsize: int = 128):
        self.maxsize = maxsize
        self.stats = PlanCacheStats()
        self._plans: OrderedDict[str, QueryPlan] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def get(self, key: str) -> QueryPlan | None:
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.stats.misses += 1
                return None
            self._plans.move_to_end(key)
            self.stats.hits += 1
            return plan

    def put(self, key: str, plan: QueryPlan) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every cached plan and reset the counters."""
        with self._lock:
            self._plans.clear()
            self.stats = PlanCacheStats()

    def describe(self) -> dict:
        with self._lock:
            return {
                "size": len(self._plans),
                "maxsize": self.maxsize,
                "enabled": self.enabled,
                **self.stats.describe(),
            }
