"""Value types and coercion helpers shared by both engines.

The engines support four logical column types: ``int``, ``float``, ``str``
and ``date``.  Dates are held as :class:`datetime.date` objects in row
storage and as ``datetime64[D]`` arrays in column storage.  NULL is
represented by ``None`` (row side) / masked sentinel handling (column side);
comparisons involving NULL yield NULL, and predicates treat NULL as false,
which matches SQL's three-valued logic closely enough for the supported
dialect.
"""

from __future__ import annotations

import datetime
from typing import Any

from repro.errors import ExecutionError

#: Logical types understood by the catalog.
LOGICAL_TYPES = ("int", "float", "str", "date", "bool")

_EPOCH = datetime.date(1970, 1, 1)


def coerce_value(value: Any, type_name: str) -> Any:
    """Coerce ``value`` to logical type ``type_name`` (None passes through)."""
    if value is None:
        return None
    if type_name == "int":
        return int(value)
    if type_name == "float":
        return float(value)
    if type_name == "str":
        return str(value)
    if type_name == "bool":
        return bool(value)
    if type_name == "date":
        return to_date(value)
    raise ExecutionError(f"unknown logical type '{type_name}'")


def to_date(value: Any) -> datetime.date:
    """Convert an ISO string / datetime / date to a :class:`datetime.date`."""
    if isinstance(value, datetime.date) and not isinstance(value, datetime.datetime):
        return value
    if isinstance(value, datetime.datetime):
        return value.date()
    if isinstance(value, str):
        return datetime.date.fromisoformat(value[:10])
    raise ExecutionError(f"cannot interpret {value!r} as a date")


def date_to_ordinal(value: Any) -> int:
    """Days since the Unix epoch for ``value`` (accepts dates or ISO strings)."""
    return (to_date(value) - _EPOCH).days


def ordinal_to_date(days: int) -> datetime.date:
    """Inverse of :func:`date_to_ordinal`."""
    return _EPOCH + datetime.timedelta(days=int(days))


def add_interval(value: datetime.date, amount: int, unit: str) -> datetime.date:
    """Add ``amount`` units (day/week/month/year) to a date."""
    if unit == "day":
        return value + datetime.timedelta(days=amount)
    if unit == "week":
        return value + datetime.timedelta(weeks=amount)
    if unit == "month":
        month_index = value.year * 12 + (value.month - 1) + amount
        year, month = divmod(month_index, 12)
        day = min(value.day, _days_in_month(year, month + 1))
        return datetime.date(year, month + 1, day)
    if unit == "year":
        return add_interval(value, amount * 12, "month")
    raise ExecutionError(f"unsupported interval unit '{unit}'")


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    return (datetime.date(year, month + 1, 1) - datetime.date(year, month, 1)).days


def infer_type(value: Any) -> str:
    """Infer the logical type of a Python value (used for derived columns)."""
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, datetime.date):
        return "date"
    return "str"


def like_to_predicate(pattern: str) -> Any:
    """Compile a SQL LIKE pattern into a Python predicate function.

    ``%`` matches any run of characters, ``_`` any single character; the rest
    is literal.  The compiled predicate returns False for None inputs.
    """
    import re

    escaped = re.escape(pattern)
    regex = re.compile("^" + escaped.replace("%", ".*").replace("_", ".") + "$", re.DOTALL)

    def predicate(value: Any) -> bool:
        if value is None:
            return False
        return regex.match(str(value)) is not None

    return predicate
