"""Shared query-analysis primitives: binding resolution and predicate
classification.

These building blocks are consumed by the :class:`repro.engine.plan.Planner`,
which runs them once per query and bakes the outcome into the logical plan
both physical backends execute (the executors no longer re-derive this
analysis from the AST themselves):

* :class:`ColumnInfo` / :class:`Scope` -- name resolution of (possibly
  qualified) column references against the FROM-clause bindings, with a link
  to an outer scope for correlated subqueries,
* :func:`classify_conjuncts` -- splits the WHERE clause into single-relation
  filters (push-down candidates), equi-join conditions, and residual
  predicates (anything referencing several relations, outer columns or
  subqueries),
* :func:`contains_subquery` / :func:`contains_aggregate` -- structural tests
  used when choosing execution strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.sqlparser import ast


@dataclass(frozen=True)
class ColumnInfo:
    """One column visible inside a query block."""

    binding: str
    name: str
    type_name: str

    @property
    def key(self) -> tuple[str, str]:
        return (self.binding.lower(), self.name.lower())


@dataclass
class Scope:
    """Name-resolution scope: the columns of the current block plus an outer link."""

    columns: list[ColumnInfo] = field(default_factory=list)
    outer: "Scope | None" = None

    def add(self, column: ColumnInfo) -> None:
        self.columns.append(column)

    def extend(self, columns: list[ColumnInfo]) -> None:
        self.columns.extend(columns)

    # -- resolution -----------------------------------------------------------

    def resolve_local(self, ref: ast.ColumnRef) -> ColumnInfo | None:
        """Resolve ``ref`` against this scope only (None when not found)."""
        name = ref.name.lower()
        if ref.table:
            table = ref.table.lower()
            for column in self.columns:
                if column.binding.lower() == table and column.name.lower() == name:
                    return column
            return None
        matches = [column for column in self.columns if column.name.lower() == name]
        if not matches:
            return None
        if len(matches) > 1:
            # Ambiguity across bindings: prefer an exact single match per
            # binding order; TPC-H never needs more than this.
            return matches[0]
        return matches[0]

    def resolve(self, ref: ast.ColumnRef) -> tuple[ColumnInfo, bool]:
        """Resolve ``ref`` here or in an outer scope.

        Returns ``(column, is_outer)``; raises :class:`PlanError` when the
        name cannot be resolved anywhere.
        """
        local = self.resolve_local(ref)
        if local is not None:
            return local, False
        outer = self.outer
        while outer is not None:
            found = outer.resolve_local(ref)
            if found is not None:
                return found, True
            outer = outer.outer
        raise PlanError(f"unknown column '{ref.qualified}'")

    def is_local(self, ref: ast.ColumnRef) -> bool:
        """True when ``ref`` resolves in this scope (not an outer one)."""
        return self.resolve_local(ref) is not None

    def bindings_of(self, expression: ast.Expression) -> set[str]:
        """Return the local binding names referenced by ``expression``.

        Columns that only resolve in an outer scope are ignored (they do not
        constrain the local join order); unknown columns raise
        :class:`PlanError`.
        """
        bindings: set[str] = set()
        for ref in ast.column_refs(expression):
            column, is_outer = self.resolve(ref)
            if not is_outer:
                bindings.add(column.binding.lower())
        return bindings


# ---------------------------------------------------------------------------
# predicate classification
# ---------------------------------------------------------------------------


@dataclass
class ClassifiedPredicates:
    """The WHERE clause split by the role each conjunct plays."""

    #: conjuncts that reference exactly one relation and no subquery,
    #: keyed by binding name -- push-down candidates.
    single: dict[str, list[ast.Expression]] = field(default_factory=dict)
    #: equality joins between two relations: (left ref, right ref, conjunct).
    equi_joins: list[tuple[ast.ColumnRef, ast.ColumnRef, ast.Expression]] = field(
        default_factory=list
    )
    #: everything else (multi-relation non-equi predicates, predicates with
    #: subqueries, predicates referencing outer columns).
    residual: list[ast.Expression] = field(default_factory=list)

    def all_predicates(self) -> list[ast.Expression]:
        """Every conjunct, in classification order (used when push-down is off)."""
        ordered: list[ast.Expression] = []
        for predicates in self.single.values():
            ordered.extend(predicates)
        ordered.extend(join for _, _, join in self.equi_joins)
        ordered.extend(self.residual)
        return ordered


def contains_subquery(expression: ast.Expression) -> bool:
    """True when ``expression`` contains any nested SELECT."""
    return any(isinstance(node, ast.Select) for node in expression.walk())


def contains_aggregate(expression: ast.Expression) -> bool:
    """True when ``expression`` contains an aggregate call outside any subquery."""
    return ast.has_local_aggregate(expression)


def classify_conjuncts(where: ast.Expression | None, scope: Scope) -> ClassifiedPredicates:
    """Split the WHERE clause of a block into push-down / join / residual parts."""
    classified = ClassifiedPredicates()
    for conjunct in ast.conjuncts(where):
        if contains_subquery(conjunct):
            classified.residual.append(conjunct)
            continue
        try:
            bindings = scope.bindings_of(conjunct)
        except PlanError:
            classified.residual.append(conjunct)
            continue
        if _is_equi_join(conjunct, scope):
            left, right = conjunct.left, conjunct.right  # type: ignore[union-attr]
            classified.equi_joins.append((left, right, conjunct))
            continue
        if len(bindings) == 1:
            binding = next(iter(bindings))
            classified.single.setdefault(binding, []).append(conjunct)
        elif len(bindings) == 0:
            # constant or purely-outer predicate: keep it as residual so it is
            # still evaluated (possibly per outer row).
            classified.residual.append(conjunct)
        else:
            classified.residual.append(conjunct)
    return classified


def _is_equi_join(conjunct: ast.Expression, scope: Scope) -> bool:
    """True for ``a.x = b.y`` between two *different* local relations."""
    if not isinstance(conjunct, ast.Comparison) or conjunct.operator != "=":
        return False
    if conjunct.quantifier is not None:
        return False
    left, right = conjunct.left, conjunct.right
    if not isinstance(left, ast.ColumnRef) or not isinstance(right, ast.ColumnRef):
        return False
    if not scope.is_local(left) or not scope.is_local(right):
        return False
    left_info = scope.resolve_local(left)
    right_info = scope.resolve_local(right)
    assert left_info is not None and right_info is not None
    return left_info.binding.lower() != right_info.binding.lower()


def output_columns(select: ast.Select, scope: Scope) -> list[str]:
    """Compute the output column names of a block (aliases, names, colN)."""
    names: list[str] = []
    for position, item in enumerate(select.items):
        if isinstance(item.expression, ast.Star):
            star = item.expression
            for column in scope.columns:
                if star.table is None or column.binding.lower() == star.table.lower():
                    names.append(column.name)
            continue
        names.append(item.output_name(position))
    return names
