"""Morsel-driven worker pool for chunk-parallel query execution.

The storage layer's fixed-size chunks (:data:`~repro.engine.storage.table.
DEFAULT_CHUNK_ROWS` rows of typed segments, each with its own zone map) are a
ready-made morsel unit: the column executor partitions a scan's chunk list
into contiguous per-worker ranges and fans predicate evaluation, selection-
vector construction and partial aggregation across the pool, merging the
per-worker results (and their trace span lanes) deterministically on the
coordinating thread.

The pool itself is shared process-wide, created lazily on first use and
sized by the largest ``EngineOptions.workers`` seen so far, so repeated
queries (and multiple engines) reuse the same threads instead of paying
thread start-up per query.  Tasks must be pure functions of their inputs:
workers never submit nested tasks (the executor only parallelises
subquery-free single-table blocks), which keeps the pool deadlock-free.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

#: thread-name prefix of pool workers; also the re-entrancy guard marker.
THREAD_PREFIX = "repro-morsel"

_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None
_pool_size = 0


def get_pool(workers: int) -> ThreadPoolExecutor:
    """The shared executor, grown (never shrunk) to at least ``workers``."""
    global _pool, _pool_size
    with _lock:
        if _pool is None or _pool_size < workers:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = ThreadPoolExecutor(max_workers=workers,
                                       thread_name_prefix=THREAD_PREFIX)
            _pool_size = workers
        return _pool


def pool_size() -> int:
    """Current pool capacity (0 = not created yet)."""
    return _pool_size


def shutdown_pool() -> None:
    """Tear the shared pool down (tests / interpreter shutdown hygiene)."""
    global _pool, _pool_size
    with _lock:
        if _pool is not None:
            _pool.shutdown(wait=True)
            _pool = None
            _pool_size = 0


def run_tasks(workers: int, tasks: Sequence[Callable[[], Any]]) -> list:
    """Run ``tasks`` on the shared pool, returning results in task order.

    Single-task lists (and calls that already run on a pool thread, which
    would otherwise risk pool starvation) execute inline.  The first task
    exception propagates to the caller after every future has settled.
    """
    if len(tasks) <= 1 or workers <= 1 \
            or threading.current_thread().name.startswith(THREAD_PREFIX):
        return [task() for task in tasks]
    pool = get_pool(workers)
    futures = [pool.submit(task) for task in tasks]
    return [future.result() for future in futures]


def chunk_ranges(chunk_count: int, survivors: np.ndarray | None, workers: int
                 ) -> list[tuple[int, int, np.ndarray]]:
    """Partition a table's chunks into per-worker morsel ranges.

    Returns ``(start_chunk, stop_chunk, surviving_chunks)`` triples that tile
    ``[0, chunk_count)`` contiguously; ``surviving_chunks`` is the ascending
    subset of the range the zone maps could not refute (``survivors=None``
    means nothing was refuted).  Work is balanced by *surviving* chunk count,
    while refuted chunks are attributed to the range containing them so the
    per-range ``scanned + skipped`` sums reproduce the table totals exactly.
    """
    if survivors is None:
        survivors = np.arange(chunk_count, dtype=np.int64)
    else:
        survivors = np.asarray(survivors, dtype=np.int64)
    effective = min(int(workers), len(survivors))
    if effective <= 1:
        return [(0, chunk_count, survivors)]
    pieces = np.array_split(survivors, effective)
    ranges = []
    for index, piece in enumerate(pieces):
        start = 0 if index == 0 else int(pieces[index][0])
        stop = chunk_count if index == effective - 1 else int(pieces[index + 1][0])
        ranges.append((start, stop, piece))
    return ranges


def survivor_rows(survivors: np.ndarray, starts: np.ndarray,
                  counts: np.ndarray) -> np.ndarray:
    """Concatenated row indexes of ``survivors`` (ascending chunk order)."""
    if len(survivors) == 0:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([
        np.arange(starts[index], starts[index] + counts[index], dtype=np.int64)
        for index in survivors
    ])
