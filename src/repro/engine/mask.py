"""Typed null-mask propagation: nullable vectors and Kleene truth masks.

This module is the column pipeline's representation of SQL NULL:

* :class:`Nullable` -- a *typed* values array (``int64`` / ``float64`` /
  ``bool`` / day ordinals) paired with a boolean validity mask (True =
  value present).  Storage hands these out directly for nullable columns,
  so expression kernels compute over the full typed array -- sentinel
  garbage at invalid slots included -- and combine validity separately,
  instead of decoding to slow object arrays holding ``None``.
* :class:`Kleene` -- a three-valued predicate result: paired boolean
  arrays ``truth`` / ``valid`` where UNKNOWN is ``valid == False``.  The
  canonical form keeps ``truth & valid == truth`` so TRUE-collapse (the
  filter semantics of SQL, where UNKNOWN drops the row) is just ``truth``.

Scalars use the Python convention throughout: ``None`` is the scalar
UNKNOWN / NULL, ``True`` / ``False`` are the known values.

Both classes support numpy-style fancy indexing (gather / boolean mask),
so selection vectors, hash-join gathers and frame slicing work unchanged;
integer indexing decodes (``None`` at invalid positions), which is what
row materialisation and hash-join key extraction expect.

The Kleene connectives follow the standard tables::

    NOT U = U        U AND F = F      U OR T = T
                     U AND T = U      U OR F = U
                     U AND U = U      U OR U = U
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

import numpy as np

__all__ = [
    "Kleene",
    "Nullable",
    "as_kleene",
    "as_objects",
    "data_of",
    "is_array",
    "kleene_and",
    "kleene_not",
    "kleene_or",
    "none_positions",
    "reset_mask_caches",
    "truth_mask",
    "wrap_valid",
]

_IS_NONE = np.frompyfunc(lambda value: value is None, 1, 1)


def none_positions(array: np.ndarray) -> np.ndarray:
    """Boolean mask of the ``None`` entries of an object array."""
    return _IS_NONE(array).astype(bool)


class _ObjectViewMemo:
    """Identity-keyed memo of decoded object views (capacity-bounded).

    A duplicate of the storage layer's :class:`IdentityMemo` shape, kept
    local so this module stays import-cycle-free below the storage package.
    Entries hold a strong reference to their key, so an id can never be
    recycled while its entry is alive.  The memo is process-wide and reached
    from morsel-parallel pool threads, so access serialises on a lock.
    """

    __slots__ = ("capacity", "_entries", "_lock")

    def __init__(self, capacity: int = 512):
        self.capacity = capacity
        self._entries: dict[int, tuple[Any, np.ndarray]] = {}
        self._lock = threading.Lock()

    def get(self, key: Any) -> np.ndarray | None:
        with self._lock:
            entry = self._entries.get(id(key))
            if entry is not None and entry[0] is key:
                return entry[1]
            return None

    def put(self, key: Any, value: np.ndarray) -> None:
        with self._lock:
            if len(self._entries) >= self.capacity:
                self._entries.clear()
            self._entries[id(key)] = (key, value)


#: decoded object views of Nullable/Kleene instances, keyed by identity.
#: Fallback paths (row-at-a-time predicates, string kernels) may decode the
#: same column several times per query; the memo makes that one decode.
#: Reset per test (see conftest) so identity reuse can never leak a stale
#: decode across tests and fuzzer shrinking stays deterministic.
_OBJECT_VIEW_MEMO = _ObjectViewMemo()


def reset_mask_caches() -> None:
    """Drop the process-wide validity-kernel memo caches."""
    global _OBJECT_VIEW_MEMO
    _OBJECT_VIEW_MEMO = _ObjectViewMemo()


class Nullable:
    """A typed values array plus validity mask (True = value present).

    Entries where ``valid`` is False hold unspecified sentinel values;
    every consumer must combine validity rather than trust them.
    """

    __slots__ = ("values", "valid")
    #: numpy defers binary ops to us instead of coercing to object arrays.
    __array_priority__ = 1000

    def __init__(self, values: np.ndarray, valid: np.ndarray):
        self.values = values
        self.valid = valid

    # -- array protocol --------------------------------------------------------

    @property
    def dtype(self):
        return self.values.dtype

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, (int, np.integer)):
            return self.values[index] if self.valid[index] else None
        return Nullable(self.values[index], self.valid[index])

    def __iter__(self) -> Iterator:
        for value, ok in zip(self.values, self.valid):
            yield value if ok else None

    def astype(self, dtype) -> "np.ndarray | Nullable":
        """Cast; the object target decodes to ``None``-carrying objects."""
        if np.dtype(dtype) == object:
            return self.to_objects()
        return Nullable(self.values.astype(dtype), self.valid)

    def to_objects(self) -> np.ndarray:
        """Decode to an object array with ``None`` at invalid positions."""
        out = self.values.astype(object)
        out[~self.valid] = None
        return out

    # -- arithmetic (scalar shifts used by interval / date arithmetic) --------

    def _binary(self, other: Any, operation, reflected: bool = False) -> Any:
        other_values, other_valid = data_of(other)
        if other_values is None and other is None:
            return None
        if reflected:
            result = operation(other_values, self.values)
        else:
            result = operation(self.values, other_values)
        valid = self.valid if other_valid is None else (self.valid & other_valid)
        return Nullable(result, valid)

    def __add__(self, other):
        return self._binary(other, np.add)

    def __radd__(self, other):
        return self._binary(other, np.add, reflected=True)

    def __sub__(self, other):
        return self._binary(other, np.subtract)

    def __rsub__(self, other):
        return self._binary(other, np.subtract, reflected=True)

    def __mul__(self, other):
        return self._binary(other, np.multiply)

    def __rmul__(self, other):
        return self._binary(other, np.multiply, reflected=True)

    def __neg__(self):
        return Nullable(-self.values, self.valid)


class Kleene:
    """Three-valued predicate result over paired boolean arrays.

    Canonical form: ``truth & valid == truth`` (UNKNOWN rows carry a False
    truth bit), so ``truth`` *is* the is-TRUE filter mask.
    """

    __slots__ = ("truth", "valid")
    __array_priority__ = 1000

    def __init__(self, truth: np.ndarray, valid: np.ndarray):
        self.truth = truth & valid
        self.valid = valid

    @classmethod
    def unknown(cls, length: int) -> "Kleene":
        empty = np.zeros(length, dtype=bool)
        return cls(empty, empty)

    def __len__(self) -> int:
        return len(self.truth)

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, (int, np.integer)):
            if not self.valid[index]:
                return None
            return bool(self.truth[index])
        return Kleene(self.truth[index], self.valid[index])

    def __iter__(self) -> Iterator:
        for truth, ok in zip(self.truth, self.valid):
            yield bool(truth) if ok else None

    def to_objects(self) -> np.ndarray:
        out = self.truth.astype(object)
        out[~self.valid] = None
        return out

    # -- Kleene connectives ----------------------------------------------------

    def __invert__(self) -> "Kleene":
        return Kleene(~self.truth & self.valid, self.valid)

    def __and__(self, other):
        return kleene_and(self, other)

    __rand__ = __and__

    def __or__(self, other):
        return kleene_or(self, other)

    __ror__ = __or__


def is_array(value: Any) -> bool:
    """True for every bulk operand shape (ndarray, Nullable, Kleene)."""
    return isinstance(value, (np.ndarray, Nullable, Kleene))


def data_of(value: Any) -> tuple[Any, np.ndarray | None]:
    """Split ``value`` into ``(values, valid-or-None)``.

    Object arrays get their ``None`` positions lifted into a validity mask;
    plain typed arrays and non-None scalars are fully valid; a scalar
    ``None`` comes back as ``(None, None)`` (callers special-case it).
    """
    if isinstance(value, Nullable):
        return value.values, value.valid
    if isinstance(value, Kleene):
        return value.truth, value.valid
    if isinstance(value, np.ndarray) and value.dtype == object:
        nulls = none_positions(value)
        if nulls.any():
            return value, ~nulls
    return value, None


def wrap_valid(values: np.ndarray, valid: np.ndarray | None) -> Any:
    """Pair ``values`` with ``valid``, collapsing the all-valid case."""
    if valid is None:
        return values
    return Nullable(values, valid)


def combine_valid(*valids: np.ndarray | None) -> np.ndarray | None:
    """AND together validity masks, treating None as all-valid."""
    combined: np.ndarray | None = None
    for valid in valids:
        if valid is None:
            continue
        combined = valid if combined is None else (combined & valid)
    return combined


def as_objects(value: Any) -> Any:
    """Object-array view of any bulk operand (memoised for masked inputs)."""
    if isinstance(value, (Nullable, Kleene)):
        cached = _OBJECT_VIEW_MEMO.get(value)
        if cached is not None:
            return cached
        decoded = value.to_objects()
        _OBJECT_VIEW_MEMO.put(value, decoded)
        return decoded
    if isinstance(value, np.ndarray):
        return value if value.dtype == object else value.astype(object)
    return value


def as_kleene(value: Any, length: int) -> Kleene:
    """Coerce any predicate result to a :class:`Kleene` of ``length`` rows."""
    if isinstance(value, Kleene):
        return value
    if isinstance(value, Nullable):
        return Kleene(value.values.astype(bool), value.valid)
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            valid = ~none_positions(value)
            return Kleene(value.astype(bool), valid)
        truth = value if value.dtype == bool else value.astype(bool)
        return Kleene(truth, np.ones(length, dtype=bool))
    if value is None:
        return Kleene.unknown(length)
    full = np.full(length, bool(value), dtype=bool)
    return Kleene(full, np.ones(length, dtype=bool))


def truth_mask(value: Any, length: int) -> np.ndarray:
    """Collapse a predicate result to its is-TRUE boolean filter mask."""
    if isinstance(value, Kleene):
        return value.truth  # canonical: UNKNOWN rows already False
    if isinstance(value, Nullable):
        return value.values.astype(bool) & value.valid
    if isinstance(value, np.ndarray):
        if value.dtype == bool:
            return value
        return value.astype(bool)  # object arrays: bool(None) is False
    return np.full(length, bool(value), dtype=bool)


def _bulk_length(*operands: Any) -> int | None:
    for operand in operands:
        if is_array(operand):
            return len(operand)
    return None


def kleene_not(value: Any) -> Any:
    """Kleene NOT over scalars, boolean arrays and Kleene masks."""
    if isinstance(value, Kleene):
        return ~value
    if isinstance(value, Nullable):
        return ~as_kleene(value, len(value))
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            kleene = as_kleene(value, len(value))
            return ~kleene if not kleene.valid.all() else ~kleene.truth
        return ~value if value.dtype == bool else ~value.astype(bool)
    if value is None:
        return None
    return not value


def _plain_bool(value: Any) -> Any:
    """Two-valued view of an operand, or None when it needs Kleene."""
    if isinstance(value, np.ndarray):
        if value.dtype == bool:
            return value
        if value.dtype != object:
            return value.astype(bool)
        return None
    if isinstance(value, (Nullable, Kleene)) or value is None:
        return None
    return bool(value)


def kleene_and(left: Any, right: Any) -> Any:
    """Kleene AND; scalar in/out when both operands are scalar."""
    length = _bulk_length(left, right)
    if length is None:
        # truthiness, not identity: 0 AND NULL is FALSE (0 decides), the
        # same way the row engine short-circuits on any falsy operand.
        if (left is not None and not left) or (right is not None and not right):
            return False
        if left is None or right is None:
            return None
        return True
    plain_left, plain_right = _plain_bool(left), _plain_bool(right)
    if plain_left is not None and plain_right is not None:
        return plain_left & plain_right
    a, b = as_kleene(left, length), as_kleene(right, length)
    truth = a.truth & b.truth
    valid = (a.valid & b.valid) | (a.valid & ~a.truth) | (b.valid & ~b.truth)
    return Kleene(truth, valid)


def kleene_or(left: Any, right: Any) -> Any:
    """Kleene OR; scalar in/out when both operands are scalar."""
    length = _bulk_length(left, right)
    if length is None:
        if left is not None and left:
            return True
        if right is not None and right:
            return True
        if left is None or right is None:
            return None
        return False
    plain_left, plain_right = _plain_bool(left), _plain_bool(right)
    if plain_left is not None and plain_right is not None:
        return plain_left | plain_right
    a, b = as_kleene(left, length), as_kleene(right, length)
    truth = a.truth | b.truth
    valid = (a.valid & b.valid) | truth
    return Kleene(truth, valid)
