"""Typed column segments: the unit of storage inside one chunk.

A segment holds one chunk's worth of one column in encoded form:

* ``int`` / ``date`` -- an ``int64`` array (dates as day ordinals) with a
  sentinel at NULL positions and an explicit null mask,
* ``float`` -- a ``float64`` array (NaN sentinel) plus the null mask,
* ``bool`` -- a ``bool`` array (False sentinel) plus the null mask,
* ``str`` -- either ``int32`` codes into the table-wide :class:`Dictionary`
  (NULL = code ``-1``) or, with dictionary encoding disabled, a plain object
  array holding the strings (NULL = ``None``).

The null mask replaces the old lossy None -> 0 / NaN / "" coercion: NULLs
round-trip exactly through both the row views and the column views.  Each
segment also seals a :class:`ZoneMap` at build time.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.engine.storage.stats import ZoneMap
from repro.engine.types import date_to_ordinal, ordinal_to_date

#: approximate CPython object overhead charged per string in the raw-size
#: estimate (49 bytes is the empty-``str`` footprint on 64-bit builds).
_STR_OBJECT_OVERHEAD = 49

#: raw bytes per value for the fixed-width logical types.
_FIXED_RAW_BYTES = {"int": 8, "float": 8, "date": 8, "bool": 1}


class Dictionary:
    """A table-wide, insertion-ordered string dictionary.

    Codes are dense ``int32`` indexes into ``values``; ``-1`` is reserved for
    NULL.  The dictionary only ever grows, so codes stay stable across
    appends and cached views.
    """

    __slots__ = ("values", "_codes", "_array")

    def __init__(self) -> None:
        self.values: list[str] = []
        self._codes: dict[str, int] = {}
        self._array: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.values)

    def encode(self, value: str) -> int:
        """Code of ``value``, inserting it when unseen."""
        code = self._codes.get(value)
        if code is None:
            code = len(self.values)
            self._codes[value] = code
            self.values.append(value)
            self._array = None
        return code

    def code_of(self, value: str) -> int | None:
        """Code of ``value`` without inserting (None when absent)."""
        return self._codes.get(value)

    def array(self) -> np.ndarray:
        """The decode table as an object array (cached until growth)."""
        if self._array is None or len(self._array) != len(self.values):
            self._array = np.array(self.values, dtype=object)
        return self._array

    @property
    def encoded_bytes(self) -> int:
        return sum(len(value) + _STR_OBJECT_OVERHEAD for value in self.values)


class ColumnSegment:
    """One chunk's worth of one column, encoded + zone-mapped."""

    __slots__ = ("type_name", "values", "null_mask", "dictionary", "zone_map")

    def __init__(self, type_name: str, values: np.ndarray,
                 null_mask: np.ndarray | None, dictionary: Dictionary | None,
                 zone_map: ZoneMap):
        self.type_name = type_name
        self.values = values
        self.null_mask = null_mask
        self.dictionary = dictionary
        self.zone_map = zone_map

    @property
    def row_count(self) -> int:
        return len(self.values)

    @property
    def has_nulls(self) -> bool:
        return self.zone_map.null_count > 0

    @property
    def encoded_bytes(self) -> int:
        """Payload bytes of this segment (dictionary bytes counted per table)."""
        total = self.values.nbytes
        if self.values.dtype == object:
            total += sum(0 if value is None else len(value) + _STR_OBJECT_OVERHEAD
                         for value in self.values)
        if self.null_mask is not None:
            total += self.null_mask.nbytes
        return total

    @property
    def raw_bytes(self) -> int:
        """Size estimate of the un-encoded representation."""
        fixed = _FIXED_RAW_BYTES.get(self.type_name)
        if fixed is not None:
            return fixed * self.row_count
        total = 0
        for value in self.python_values():
            total += 0 if value is None else len(value) + _STR_OBJECT_OVERHEAD
        return total

    # -- decode ----------------------------------------------------------------

    def validity(self) -> np.ndarray:
        """Boolean mask of the *present* values (True = not NULL)."""
        if self.null_mask is None:
            return np.ones(self.row_count, dtype=bool)
        return ~self.null_mask

    def typed_array(self) -> np.ndarray:
        """The encoded array decoded to the columnar dtype (NULL-free only).

        Only meaningful when the whole column has no NULLs: int/float/bool
        come back as their native dtypes, dates as int64 day ordinals,
        strings as an object array.
        """
        if self.dictionary is not None:
            return self.dictionary.array()[self.values]
        return self.values

    def python_values(self) -> list:
        """Decode to Python objects with ``None`` at NULL positions.

        Dates come back as :class:`datetime.date` (the row-storage domain).
        """
        if self.type_name == "date":
            ordinals = self.values.tolist()
            if self.null_mask is None:
                return [ordinal_to_date(ordinal) for ordinal in ordinals]
            return [None if null else ordinal_to_date(ordinal)
                    for ordinal, null in zip(ordinals, self.null_mask.tolist())]
        return self.encoded_python_values()

    def encoded_python_values(self) -> list:
        """Decode to the *columnar* value domain with ``None`` at NULLs.

        Dates stay int day ordinals here -- the representation the
        vectorised operators and date-literal comparisons expect.
        """
        if self.dictionary is not None:
            table = self.dictionary.values
            return [None if code < 0 else table[code] for code in self.values.tolist()]
        plain = self.values.tolist()
        if self.null_mask is None:
            return plain
        return [None if null else value
                for value, null in zip(plain, self.null_mask.tolist())]


def build_segment(values: list, type_name: str,
                  dictionary: Dictionary | None) -> ColumnSegment:
    """Encode one chunk's worth of coerced Python ``values`` for one column."""
    null_flags = [value is None for value in values]
    null_count = sum(null_flags)
    null_mask = np.array(null_flags, dtype=bool) if null_count else None
    non_null = [value for value in values if value is not None]

    if type_name == "str" and dictionary is not None:
        codes = np.fromiter(
            (-1 if value is None else dictionary.encode(value) for value in values),
            dtype=np.int32, count=len(values))
        zone = _zone_map(non_null, null_count, len(values))
        return ColumnSegment("str", codes, null_mask, dictionary, zone)

    if type_name == "int":
        data = np.fromiter((0 if value is None else value for value in values),
                           dtype=np.int64, count=len(values))
        encoded = non_null
    elif type_name == "float":
        data = np.fromiter((np.nan if value is None else value for value in values),
                           dtype=np.float64, count=len(values))
        encoded = non_null
    elif type_name == "bool":
        data = np.fromiter((False if value is None else bool(value) for value in values),
                           dtype=bool, count=len(values))
        encoded = [bool(value) for value in non_null]
    elif type_name == "date":
        data = np.fromiter(
            (0 if value is None else date_to_ordinal(value) for value in values),
            dtype=np.int64, count=len(values))
        encoded = [date_to_ordinal(value) for value in non_null]
    else:  # plain (non-dictionary) string storage
        data = np.array([None if value is None else str(value) for value in values],
                        dtype=object)
        encoded = [str(value) for value in non_null]

    zone = _zone_map(encoded, null_count, len(values))
    return ColumnSegment(type_name, data, null_mask, None, zone)


def _zone_map(non_null: list, null_count: int, row_count: int) -> ZoneMap:
    if not non_null:
        return ZoneMap(None, None, null_count, row_count, 0)
    return ZoneMap(min(non_null), max(non_null), null_count, row_count,
                   len(set(non_null)))
