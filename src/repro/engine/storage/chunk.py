"""Chunks: fixed-size horizontal partitions of a storage table.

A chunk is simply the schema-ordered list of :class:`ColumnSegment` objects
covering the same ``row_count`` rows, plus its starting row offset inside the
table (so chunk-relative positions translate directly into positions in the
concatenated whole-column views the executors scan).
"""

from __future__ import annotations

from repro.engine.storage.segment import ColumnSegment


class Chunk:
    """One morsel of a table: aligned column segments over the same rows."""

    __slots__ = ("segments", "row_count", "start")

    def __init__(self, segments: list[ColumnSegment], row_count: int, start: int):
        self.segments = segments
        self.row_count = row_count
        self.start = start

    @property
    def stop(self) -> int:
        return self.start + self.row_count

    @property
    def encoded_bytes(self) -> int:
        return sum(segment.encoded_bytes for segment in self.segments)

    @property
    def raw_bytes(self) -> int:
        return sum(segment.raw_bytes for segment in self.segments)

    def rows(self) -> list[tuple]:
        """Decode this chunk back into row tuples (NULLs as ``None``)."""
        columns = [segment.python_values() for segment in self.segments]
        return list(zip(*columns)) if columns else []
