"""Zone maps and table statistics for the chunked columnar storage layer.

Every sealed chunk carries one :class:`ZoneMap` per column segment (min/max
over the non-NULL values, the NULL count, and a per-chunk distinct count);
:class:`TableStatistics` aggregates them -- plus encoded/raw byte accounting
and an NDV estimate -- into the per-table summary the catalog exposes to the
planner (predicate ordering) and to ``Database.size_summary``.

Values inside zone maps and statistics live in the *encoded* domain: dates
are int day ordinals, strings are Python strings, numerics are plain
ints/floats.  That keeps zone-map refutation and selectivity estimation free
of per-comparison conversions.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ZoneMap:
    """Per-chunk column summary used to refute scan predicates.

    ``min_value``/``max_value`` are None when the segment holds no non-NULL
    value at all (then every ordinary predicate on the column is false for
    the whole chunk).
    """

    min_value: object
    max_value: object
    null_count: int
    row_count: int
    distinct_count: int

    @property
    def non_null_count(self) -> int:
        return self.row_count - self.null_count


@dataclass
class ColumnStatistics:
    """Table-level aggregate of one column's segment zone maps."""

    name: str
    type_name: str
    min_value: object = None
    max_value: object = None
    null_count: int = 0
    #: upper-bound NDV estimate: exact for dictionary-encoded columns (the
    #: table-wide dictionary size), otherwise the sum of per-chunk distinct
    #: counts clipped to the non-NULL row count.
    distinct_estimate: int = 0
    encoded_bytes: int = 0
    raw_bytes: int = 0
    dictionary_size: int | None = None

    def describe(self) -> dict:
        return {
            "type": self.type_name,
            "nulls": self.null_count,
            "ndv": self.distinct_estimate,
            "encoded_bytes": self.encoded_bytes,
            "raw_bytes": self.raw_bytes,
            **({"dictionary": self.dictionary_size}
               if self.dictionary_size is not None else {}),
        }


@dataclass
class TableStatistics:
    """Aggregated statistics of one storage table."""

    name: str
    row_count: int = 0
    chunk_count: int = 0
    encoded_bytes: int = 0
    raw_bytes: int = 0
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        """Raw-to-encoded size ratio (1.0 for an empty table)."""
        if not self.encoded_bytes:
            return 1.0
        return self.raw_bytes / self.encoded_bytes

    def column(self, name: str) -> ColumnStatistics | None:
        return self.columns.get(name.lower())

    def describe(self) -> dict:
        return {
            "rows": self.row_count,
            "chunks": self.chunk_count,
            "encoded_bytes": self.encoded_bytes,
            "raw_bytes": self.raw_bytes,
            "compression_ratio": round(self.compression_ratio, 3),
        }
