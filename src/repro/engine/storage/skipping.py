"""Statistics-driven data skipping and predicate-selectivity estimation.

Two consumers sit on top of the chunk zone maps:

* :class:`ZoneIndex` -- a vectorised, per-table index of chunk min/max/null
  summaries.  The column executor's scan loop asks it which chunks a
  conjunction of push-down predicates can possibly touch and receives an
  initial selection vector covering only the surviving chunks (or ``None``
  when nothing could be skipped, keeping the no-selection fast path).
  Refutation is *conservative*: a predicate shape the index does not
  understand simply keeps every chunk.
* :func:`estimate_selectivity` -- the planner's ordering heuristic: given
  table statistics it scores each push-down conjunct with an estimated
  selectivity in ``[0, 1]`` so the most selective predicate refines the
  selection vector first.

Both work in the encoded value domain (dates as day ordinals), matching the
zone maps and column statistics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.engine.storage.memo import IdentityMemo
from repro.engine.types import add_interval, date_to_ordinal, ordinal_to_date
from repro.obs.metrics import count as count_metric
from repro.sqlparser import ast

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.storage.stats import TableStatistics
    from repro.engine.storage.table import StorageTable

#: sentinel for "no usable constant on this side".
_MISSING = object()

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}

#: comparison complement used to push NOT below the zone-map analysis.
#: Kleene-sound: ``NOT (a < b)`` and ``a >= b`` are *exactly* equivalent
#: under three-valued logic (both UNKNOWN on a NULL operand, and UNKNOWN
#: rows never pass a filter), so rewriting cannot mis-refute a chunk.
_NEGATED = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


# ---------------------------------------------------------------------------
# zone-map index
# ---------------------------------------------------------------------------


class ZoneIndex:
    """Vectorised chunk-level min/max/null arrays for one storage table.

    Float zone boundaries live in ``float64`` arrays with NaN marking
    all-NULL chunks -- NaN comparisons are False, so an all-NULL chunk is
    refuted by every ordinary predicate for free.  Int / date / bool
    boundaries stay exact in ``int64`` arrays (a float64 conversion would
    round values beyond 2**53 and could wrongly refute a matching chunk)
    with an empty-range sentinel (min=int64.max, max=int64.min) for all-NULL
    chunks, which every keep-test rejects for the same reason.  String
    boundaries are object arrays with ``None`` for all-NULL chunks, compared
    through a small None-aware helper.
    """

    def __init__(self, table: "StorageTable"):
        chunks = table.chunks
        self.chunk_count = len(chunks)
        #: memoised refutation results keyed by predicate identity; only the
        #: (small) surviving-chunk index is cached, never the expanded row
        #: selection.  The whole index is dropped on table mutation.
        self._selection_cache = IdentityMemo()
        self.starts = np.array([chunk.start for chunk in chunks], dtype=np.int64)
        self.counts = np.array([chunk.row_count for chunk in chunks], dtype=np.int64)
        self._mins: dict[str, np.ndarray] = {}
        self._maxs: dict[str, np.ndarray] = {}
        self._null_counts: dict[str, np.ndarray] = {}
        self._types: dict[str, str] = {}
        for index, column in enumerate(table.schema.columns):
            lowered = column.name.lower()
            zones = [chunk.segments[index].zone_map for chunk in chunks]
            self._types[lowered] = column.type_name
            self._null_counts[lowered] = np.array([zone.null_count for zone in zones],
                                                  dtype=np.int64)
            if column.type_name == "str":
                self._mins[lowered] = np.array([zone.min_value for zone in zones],
                                               dtype=object)
                self._maxs[lowered] = np.array([zone.max_value for zone in zones],
                                               dtype=object)
            elif column.type_name == "float":
                self._mins[lowered] = np.array(
                    [np.nan if zone.min_value is None else float(zone.min_value)
                     for zone in zones], dtype=np.float64)
                self._maxs[lowered] = np.array(
                    [np.nan if zone.max_value is None else float(zone.max_value)
                     for zone in zones], dtype=np.float64)
            else:  # int / date / bool: exact int64 bounds
                empty_min = np.iinfo(np.int64).max
                empty_max = np.iinfo(np.int64).min
                self._mins[lowered] = np.array(
                    [empty_min if zone.min_value is None else int(zone.min_value)
                     for zone in zones], dtype=np.int64)
                self._maxs[lowered] = np.array(
                    [empty_max if zone.max_value is None else int(zone.max_value)
                     for zone in zones], dtype=np.int64)

    # -- public -----------------------------------------------------------------

    def survivors(self, predicates: list[ast.Expression],
                  resolve: Callable[[ast.ColumnRef], tuple[str, str] | None]
                  ) -> tuple[np.ndarray | None, int, int]:
        """Chunk indexes a scan filtered by ``predicates`` must still read.

        Returns ``(survivors, scanned, skipped)``: ``survivors`` is None when
        no chunk could be refuted (scan everything, no gather overhead),
        otherwise the ascending int64 indexes of the surviving chunks --
        the unit the morsel partitioner splits across workers.  ``scanned``
        counts the chunks actually read and ``skipped`` the refuted ones, so
        ``scanned + skipped`` is always the table's chunk total.  Refutation
        results are memoised by predicate identity.
        """
        if not self.chunk_count:
            return None, 0, 0
        hit, survivors = self._selection_cache.get(tuple(predicates))
        if hit:
            count_metric("scan.zone_memo.hits")
        else:
            count_metric("scan.zone_memo.misses")
            keep = np.ones(self.chunk_count, dtype=bool)
            for predicate in predicates:
                mask = self._keep_mask(predicate, resolve)
                if mask is not None:
                    keep &= mask
            survivors = None if keep.all() else np.flatnonzero(keep)
            self._selection_cache.put(tuple(predicates), survivors)
        if survivors is None:
            return None, self.chunk_count, 0
        skipped = self.chunk_count - len(survivors)
        return survivors, self.chunk_count - skipped, skipped

    def rows_of(self, chunk_indexes: np.ndarray) -> np.ndarray:
        """Concatenated row indexes of ``chunk_indexes`` (ascending order)."""
        if len(chunk_indexes) == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([
            np.arange(self.starts[index], self.starts[index] + self.counts[index],
                      dtype=np.int64)
            for index in chunk_indexes
        ])

    def selection(self, predicates: list[ast.Expression],
                  resolve: Callable[[ast.ColumnRef], tuple[str, str] | None]
                  ) -> tuple[np.ndarray | None, int, int]:
        """Initial selection for a scan filtered by ``predicates``.

        Like :meth:`survivors` but with the surviving chunks expanded to an
        int64 *row* selection (still None when nothing could be skipped).
        """
        survivors, scanned, skipped = self.survivors(predicates, resolve)
        if survivors is None:
            return None, scanned, skipped
        return self.rows_of(survivors), scanned, skipped

    # -- refutation -------------------------------------------------------------

    def _keep_mask(self, predicate: ast.Expression,
                   resolve) -> np.ndarray | None:
        """Chunks predicate might accept rows in (None = cannot analyse)."""
        try:
            return self._keep(predicate, resolve)
        except Exception:
            return None

    def _keep(self, node: ast.Expression, resolve) -> np.ndarray | None:
        if isinstance(node, ast.BoolOp):
            masks = [self._keep(operand, resolve) for operand in node.operands]
            if node.operator == "and":
                known = [mask for mask in masks if mask is not None]
                if not known:
                    return None
                combined = known[0].copy()
                for mask in known[1:]:
                    combined &= mask
                return combined
            if any(mask is None for mask in masks):
                return None
            combined = masks[0].copy()
            for mask in masks[1:]:
                combined |= mask
            return combined
        if isinstance(node, ast.Comparison):
            return self._keep_comparison(node, resolve)
        if isinstance(node, ast.Between) and not node.negated:
            return self._keep_between(node, resolve)
        if isinstance(node, ast.InList) and not node.negated:
            return self._keep_in_list(node, resolve)
        if isinstance(node, ast.Like) and not node.negated:
            return self._keep_like(node, resolve)
        if isinstance(node, ast.IsNull):
            return self._keep_is_null(node, resolve)
        if isinstance(node, ast.UnaryOp) and node.operator == "not":
            return self._keep_not(node.operand, resolve)
        return None

    def _keep_not(self, node: ast.Expression, resolve) -> np.ndarray | None:
        """Push NOT below the analysis with Kleene-sound rewrites only.

        UNKNOWN rows never pass a filter, so ``NOT expr`` may refute a chunk
        exactly when the *complemented* expression would: comparisons flip to
        their complement (identical three-valued truth tables), AND/OR invert
        by De Morgan, IS NULL flips its negation, double NOT unwraps.  Any
        other shape -- including NOT over BETWEEN/IN/LIKE, whose UNKNOWN
        handling is subtler -- conservatively keeps every chunk.
        """
        if isinstance(node, ast.UnaryOp) and node.operator == "not":
            return self._keep(node.operand, resolve)
        if isinstance(node, ast.Comparison) and node.quantifier is None:
            negated = _NEGATED.get(node.operator)
            if negated is None:
                return None
            return self._keep_comparison(
                ast.Comparison(negated, node.left, node.right), resolve)
        if isinstance(node, ast.IsNull):
            return self._keep_is_null(
                ast.IsNull(node.operand, negated=not node.negated), resolve)
        if isinstance(node, ast.BoolOp):
            inverted = ast.BoolOp(
                "or" if node.operator == "and" else "and",
                [ast.UnaryOp("not", operand) for operand in node.operands])
            return self._keep(inverted, resolve)
        return None

    def _column(self, node: ast.Expression, resolve) -> str | None:
        if not isinstance(node, ast.ColumnRef):
            return None
        resolved = resolve(node)
        if resolved is None:
            return None
        name, _type_name = resolved
        return name.lower()

    def _keep_comparison(self, node: ast.Comparison, resolve) -> np.ndarray | None:
        if node.quantifier is not None:
            return None
        column = self._column(node.left, resolve)
        operator = node.operator
        constant_node = node.right
        if column is None:
            column = self._column(node.right, resolve)
            operator = _FLIPPED.get(operator)
            constant_node = node.left
        if column is None or operator is None:
            return None
        constant = self._constant(constant_node, column)
        if constant is _MISSING:
            return None
        mins, maxs = self._mins[column], self._maxs[column]
        if self._types[column] == "str":
            if operator == "=":
                return _obj_cmp(mins, "<=", constant) & _obj_cmp(maxs, ">=", constant)
            if operator == "<>":
                all_equal = _obj_cmp(mins, "==", constant) & _obj_cmp(maxs, "==", constant)
                return ~all_equal & self._has_non_null(column)
            if operator in ("<", "<="):
                return _obj_cmp(mins, operator, constant)
            return _obj_cmp(maxs, operator, constant)
        if operator == "=":
            return (mins <= constant) & (maxs >= constant)
        if operator == "<>":
            return ~((mins == constant) & (maxs == constant)) & self._has_non_null(column)
        if operator == "<":
            return mins < constant
        if operator == "<=":
            return mins <= constant
        if operator == ">":
            return maxs > constant
        return maxs >= constant

    def _keep_between(self, node: ast.Between, resolve) -> np.ndarray | None:
        column = self._column(node.operand, resolve)
        if column is None:
            return None
        low = self._constant(node.low, column)
        high = self._constant(node.high, column)
        if low is _MISSING or high is _MISSING:
            return None
        mins, maxs = self._mins[column], self._maxs[column]
        if self._types[column] == "str":
            return _obj_cmp(maxs, ">=", low) & _obj_cmp(mins, "<=", high)
        return (maxs >= low) & (mins <= high)

    def _keep_in_list(self, node: ast.InList, resolve) -> np.ndarray | None:
        column = self._column(node.operand, resolve)
        if column is None:
            return None
        keep = np.zeros(self.chunk_count, dtype=bool)
        mins, maxs = self._mins[column], self._maxs[column]
        is_str = self._types[column] == "str"
        for item in node.items:
            constant = self._constant(item, column)
            if constant is _MISSING:
                return None
            if is_str:
                keep |= _obj_cmp(mins, "<=", constant) & _obj_cmp(maxs, ">=", constant)
            else:
                keep |= (mins <= constant) & (maxs >= constant)
        return keep

    def _keep_like(self, node: ast.Like, resolve) -> np.ndarray | None:
        column = self._column(node.operand, resolve)
        if column is None or self._types[column] != "str":
            return None
        if not isinstance(node.pattern, ast.Literal) or not isinstance(
                node.pattern.value, str):
            return None
        prefix = _like_prefix(node.pattern.value)
        if not prefix:
            return None
        upper = _prefix_upper_bound(prefix)
        keep = _obj_cmp(self._maxs[column], ">=", prefix)
        if upper is not None:
            keep &= _obj_cmp(self._mins[column], "<", upper)
        return keep

    def _keep_is_null(self, node: ast.IsNull, resolve) -> np.ndarray | None:
        column = self._column(node.operand, resolve)
        if column is None:
            return None
        nulls = self._null_counts[column]
        if node.negated:
            return nulls < self.counts
        return nulls > 0

    def _has_non_null(self, column: str) -> np.ndarray:
        return self._null_counts[column] < self.counts

    def _constant(self, node: ast.Expression, column: str) -> Any:
        """Constant of ``node`` in the column's encoded domain, or _MISSING."""
        type_name = self._types[column]
        if isinstance(node, ast.DateLiteral):
            return date_to_ordinal(node.value) if type_name == "date" else _MISSING
        if isinstance(node, ast.Literal):
            value = node.value
            if type_name == "date":
                if isinstance(value, str):
                    try:
                        return date_to_ordinal(value)
                    except Exception:
                        return _MISSING
                return _MISSING
            if type_name == "str":
                return value if isinstance(value, str) else _MISSING
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return value
            if type_name == "bool" and isinstance(value, bool):
                return int(value)
            return _MISSING
        if type_name == "date":
            folded = _fold_date_interval(node)
            if folded is not None:
                return folded
        return _MISSING


def _fold_date_interval(node: ast.Expression) -> int | None:
    """Day ordinal of a constant ``date +/- interval`` expression, or None."""
    if (isinstance(node, ast.BinaryOp) and node.operator in ("+", "-")
            and isinstance(node.left, ast.DateLiteral)
            and isinstance(node.right, ast.IntervalLiteral)):
        interval = node.right
        amount = interval.value if node.operator == "+" else -interval.value
        base = ordinal_to_date(date_to_ordinal(node.left.value))
        return date_to_ordinal(add_interval(base, amount, interval.unit))
    return None


def _obj_cmp(bounds: np.ndarray, operator: str, constant: str) -> np.ndarray:
    """None-aware elementwise comparison over object (string) bound arrays."""
    ops = {
        "<": lambda value: value < constant,
        "<=": lambda value: value <= constant,
        ">": lambda value: value > constant,
        ">=": lambda value: value >= constant,
        "==": lambda value: value == constant,
    }
    compare = ops[operator]
    return np.fromiter(
        (value is not None and compare(value) for value in bounds),
        dtype=bool, count=len(bounds))


def _like_prefix(pattern: str) -> str:
    """Literal prefix of a LIKE pattern (up to the first wildcard)."""
    for index, char in enumerate(pattern):
        if char in ("%", "_"):
            return pattern[:index]
    return pattern


def _prefix_upper_bound(prefix: str) -> str | None:
    """Smallest string greater than every string starting with ``prefix``."""
    for index in range(len(prefix) - 1, -1, -1):
        code = ord(prefix[index])
        if code < 0x10FFFF:
            return prefix[:index] + chr(code + 1)
    return None


# ---------------------------------------------------------------------------
# selectivity estimation
# ---------------------------------------------------------------------------

#: default estimate for predicates the heuristic cannot analyse.
_DEFAULT_SELECTIVITY = 0.4


def estimate_selectivity(predicate: ast.Expression,
                         statistics: "TableStatistics") -> float:
    """Estimated fraction of rows ``predicate`` keeps, from table statistics.

    A coarse System-R style heuristic: equality costs ``1/NDV``, ranges cost
    their fraction of the column's [min, max] span, LIKE prefixes are assumed
    moderately selective.  Used only to *order* conjuncts, so absolute
    accuracy matters less than the ranking.
    """
    try:
        return max(0.0, min(1.0, _estimate(predicate, statistics)))
    except Exception:
        return _DEFAULT_SELECTIVITY


def _estimate(node: ast.Expression, statistics: "TableStatistics") -> float:
    if isinstance(node, ast.BoolOp):
        parts = [_estimate(operand, statistics) for operand in node.operands]
        if node.operator == "and":
            product = 1.0
            for part in parts:
                product *= part
            return product
        return min(1.0, sum(parts))
    if isinstance(node, ast.UnaryOp) and node.operator == "not":
        # Kleene NOT keeps the FALSE fraction; UNKNOWN rows pass neither
        # the predicate nor its negation, so 1 - estimate is conservative.
        return max(0.0, 1.0 - _estimate(node.operand, statistics))
    if isinstance(node, ast.Comparison):
        return _estimate_comparison(node, statistics)
    if isinstance(node, ast.Between):
        column = _stats_column(node.operand, statistics)
        low = _numeric_constant(node.low, column)
        high = _numeric_constant(node.high, column)
        if column is None or low is None or high is None:
            return _DEFAULT_SELECTIVITY
        fraction = _range_fraction(column, low, high)
        if node.negated:
            fraction = 1.0 - fraction
        return fraction * _non_null_fraction(column, statistics)
    if isinstance(node, ast.InList):
        column = _stats_column(node.operand, statistics)
        if column is None or not column.distinct_estimate:
            return _DEFAULT_SELECTIVITY
        fraction = min(1.0, len(node.items) / column.distinct_estimate)
        if node.negated:
            fraction = 1.0 - fraction
        return fraction * _non_null_fraction(column, statistics)
    if isinstance(node, ast.Like):
        prefix = _like_prefix(node.pattern.value) \
            if isinstance(node.pattern, ast.Literal) else ""
        fraction = 0.15 if prefix else 0.5
        if node.negated:
            fraction = 1.0 - fraction
        column = _stats_column(node.operand, statistics)
        return fraction * _non_null_fraction(column, statistics)
    if isinstance(node, ast.IsNull):
        column = _stats_column(node.operand, statistics)
        if column is None or not statistics.row_count:
            return _DEFAULT_SELECTIVITY
        fraction = column.null_count / statistics.row_count
        return (1.0 - fraction) if node.negated else fraction
    return _DEFAULT_SELECTIVITY


def _estimate_comparison(node: ast.Comparison, statistics) -> float:
    if node.quantifier is not None:
        return _DEFAULT_SELECTIVITY
    column = _stats_column(node.left, statistics)
    operator = node.operator
    constant_node = node.right
    if column is None:
        column = _stats_column(node.right, statistics)
        operator = _FLIPPED.get(node.operator, node.operator)
        constant_node = node.left
    if column is None:
        return _DEFAULT_SELECTIVITY
    # a comparison is TRUE only on non-NULL operand rows: the null fraction
    # scales every estimate below (it is a first-class statistic here).
    non_null = _non_null_fraction(column, statistics)
    if operator == "=":
        if column.type_name == "str" or column.distinct_estimate:
            return non_null / max(column.distinct_estimate, 1)
        return _DEFAULT_SELECTIVITY
    if operator == "<>":
        return non_null * (1.0 - 1.0 / max(column.distinct_estimate, 1))
    constant = _numeric_constant(constant_node, column)
    if constant is None:
        return _DEFAULT_SELECTIVITY
    if operator in ("<", "<="):
        return non_null * _range_fraction(column, None, constant)
    return non_null * _range_fraction(column, constant, None)


def _stats_column(node: ast.Expression, statistics):
    if isinstance(node, ast.ColumnRef) and statistics is not None:
        return statistics.column(node.name)
    return None


def _non_null_fraction(column, statistics) -> float:
    """Fraction of the column's rows that carry a value (1.0 when unknown)."""
    if column is None or statistics is None or not statistics.row_count \
            or not column.null_count:
        return 1.0
    return max(0.0, 1.0 - column.null_count / statistics.row_count)


def _numeric_constant(node: ast.Expression, column) -> float | None:
    """Constant of ``node`` on a numeric/date column's encoded scale."""
    if column is None or column.type_name == "str":
        return None
    if isinstance(node, ast.DateLiteral):
        return float(date_to_ordinal(node.value)) if column.type_name == "date" else None
    if isinstance(node, ast.Literal):
        value = node.value
        if column.type_name == "date" and isinstance(value, str):
            try:
                return float(date_to_ordinal(value))
            except Exception:
                return None
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    if column.type_name == "date":
        folded = _fold_date_interval(node)
        if folded is not None:
            return float(folded)
    return None


def _range_fraction(column, low: float | None, high: float | None) -> float:
    """Fraction of the column's [min, max] span covered by [low, high]."""
    if column.min_value is None or column.max_value is None:
        return _DEFAULT_SELECTIVITY
    span = float(column.max_value) - float(column.min_value)
    if span <= 0:
        return 1.0
    start = float(column.min_value) if low is None else max(low, float(column.min_value))
    stop = float(column.max_value) if high is None else min(high, float(column.max_value))
    if stop <= start:
        return 0.0
    return (stop - start) / span
