"""Chunked columnar storage subsystem.

Tables are stored as fixed-size chunks (morsels, default 4096 rows) of typed
column segments.  Each segment carries an explicit null mask, a per-chunk
zone map (min/max, null count, distinct count), and -- for string columns --
``int32`` codes into a table-wide dictionary.  Per-table statistics are
aggregated from the segments and exposed through the catalog, the zone-map
index powers statistics-driven chunk skipping in the column executor's scan
loop, and the selectivity estimator orders conjunctive scan predicates in
the planner.
"""

from repro.engine.storage.chunk import Chunk
from repro.engine.storage.segment import ColumnSegment, Dictionary, build_segment
from repro.engine.storage.skipping import ZoneIndex, estimate_selectivity
from repro.engine.storage.stats import ColumnStatistics, TableStatistics, ZoneMap
from repro.engine.storage.table import DEFAULT_CHUNK_ROWS, StorageTable

__all__ = [
    "Chunk",
    "ColumnSegment",
    "ColumnStatistics",
    "DEFAULT_CHUNK_ROWS",
    "Dictionary",
    "StorageTable",
    "TableStatistics",
    "ZoneIndex",
    "ZoneMap",
    "build_segment",
    "estimate_selectivity",
]
