"""A small identity-keyed memo for per-AST-node scan caches.

Plans keep their AST nodes alive for their own lifetime, so ``id()`` of a
predicate node is a stable, hashable key *while the entry holds a strong
reference to the node*: the memo stores the keys alongside the value, which
both guards against id reuse (CPython cannot recycle an id the memo still
references) and lets ``get`` verify identity before trusting a hit.  A
capacity clear bounds growth under many-distinct-query workloads (the
pool's morphing produces an unbounded stream of fresh predicates).

The memo is thread-safe: morsel-parallel scans and the batched driver's
concurrent measurements hit the same per-table caches from pool threads, so
``get``/``put`` serialise on a per-memo lock (the critical sections are a
dict probe and an identity check -- far cheaper than the cached work).
"""

from __future__ import annotations

import threading
from typing import Any

#: default number of entries kept before the memo is dropped wholesale.
DEFAULT_MEMO_CAPACITY = 512


class IdentityMemo:
    """Maps tuples of objects (by identity) to cached values."""

    __slots__ = ("capacity", "_entries", "_lock")

    def __init__(self, capacity: int = DEFAULT_MEMO_CAPACITY):
        self.capacity = capacity
        self._entries: dict[tuple[int, ...], tuple[list, Any]] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, keys: tuple) -> tuple[bool, Any]:
        """Return ``(hit, value)``; ``value`` may legitimately be None."""
        with self._lock:
            entry = self._entries.get(tuple(map(id, keys)))
            if entry is not None and all(a is b for a, b in zip(entry[0], keys)):
                return True, entry[1]
            return False, None

    def put(self, keys: tuple, value: Any) -> None:
        with self._lock:
            if len(self._entries) >= self.capacity:
                self._entries.clear()
            self._entries[tuple(map(id, keys))] = (list(keys), value)
