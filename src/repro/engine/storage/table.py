"""Chunked columnar storage for one table.

A :class:`StorageTable` is the single source of truth both engines read:
appended rows are sealed into fixed-size chunks (default 4096 rows) of typed
:class:`~repro.engine.storage.segment.ColumnSegment` objects, and every view
-- the row executor's row tuples, the column executor's whole-column arrays,
the dictionary code vectors, the zone-map index, the table statistics -- is
derived (and cached) from those segments.  Mutations bump ``version`` and
drop the caches, so stale views can never leak across inserts or re-creates.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.engine.storage.chunk import Chunk
from repro.engine.storage.memo import IdentityMemo
from repro.engine.storage.segment import ColumnSegment, Dictionary, build_segment
from repro.engine.storage.stats import ColumnStatistics, TableStatistics, ZoneMap

if TYPE_CHECKING:  # pragma: no cover - cycle guard (catalog is runtime-free here)
    from repro.engine.catalog import TableSchema
    from repro.engine.storage.skipping import ZoneIndex

#: default number of rows per chunk (the morsel size).
DEFAULT_CHUNK_ROWS = 4096

#: columnar dtype of the NULL-free whole-column view, per logical type.
_EMPTY_DTYPES = {"int": np.int64, "float": np.float64, "bool": np.bool_,
                 "date": np.int64}


class StorageTable:
    """Chunked, encoded storage for one table's rows."""

    def __init__(self, schema: "TableSchema", chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 dictionary_strings: bool = True):
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        self.schema = schema
        self.chunk_rows = chunk_rows
        self.chunks: list[Chunk] = []
        self.dictionaries: dict[str, Dictionary] = {}
        if dictionary_strings:
            for column in schema.columns:
                if column.type_name == "str":
                    self.dictionaries[column.name.lower()] = Dictionary()
        #: bumped on every mutation; callers key caches on it.
        self.version = 0
        #: scan-kernel memo (predicate identity -> kernel); the column
        #: executor caches its dictionary-code kernels here so a prepared
        #: plan pays the dictionary walk once per table version.
        self.scan_kernel_cache = IdentityMemo()
        self._tail: list[tuple] = []
        self._rows_cache: list[tuple] | None = None
        self._stats_cache: TableStatistics | None = None
        self._zone_index: "ZoneIndex | None" = None
        # guards the tail seal and the lazily-built cached views: concurrent
        # readers (batched driver threads, morsel workers) must observe a
        # fully-built chunk list / index, never a partially-sealed tail.
        # Reentrant because the cached builders flush first.
        self._lock = threading.RLock()

    # -- mutation -----------------------------------------------------------------

    def append_rows(self, rows: list[tuple]) -> int:
        """Append already-coerced row tuples, sealing full chunks eagerly."""
        if not rows:
            return 0
        self._invalidate()
        self._tail.extend(rows)
        while len(self._tail) >= self.chunk_rows:
            self._seal(self._tail[:self.chunk_rows])
            self._tail = self._tail[self.chunk_rows:]
        return len(rows)

    def flush(self) -> None:
        """Seal any pending tail rows into a (possibly short) chunk."""
        with self._lock:
            if self._tail:
                self._seal(self._tail)
                self._tail = []

    def _seal(self, rows: list[tuple]) -> None:
        start = self.chunks[-1].stop if self.chunks else 0
        segments: list[ColumnSegment] = []
        for index, column in enumerate(self.schema.columns):
            values = [row[index] for row in rows]
            segments.append(build_segment(values, column.type_name,
                                          self.dictionaries.get(column.name.lower())))
        self.chunks.append(Chunk(segments, len(rows), start))

    def _invalidate(self) -> None:
        self.version += 1
        self.scan_kernel_cache = IdentityMemo()
        self._rows_cache = None
        self._stats_cache = None
        self._zone_index = None

    # -- row views ---------------------------------------------------------------

    @property
    def row_count(self) -> int:
        sealed = self.chunks[-1].stop if self.chunks else 0
        return sealed + len(self._tail)

    def iter_rows(self) -> Iterator[tuple]:
        """Iterate rows chunk by chunk (the row engine's scan order)."""
        self.flush()
        for chunk in self.chunks:
            yield from chunk.rows()

    def rows(self) -> list[tuple]:
        """All rows as decoded tuples (cached until the next mutation)."""
        with self._lock:
            if self._rows_cache is None:
                self._rows_cache = list(self.iter_rows())
            return self._rows_cache

    # -- column views --------------------------------------------------------------

    def column_array(self, name: str, typed_nulls: bool = True
                     ) -> "np.ndarray | Nullable":
        """The whole-column array in the engines' columnar representation.

        NULL-free columns decode to their native dtypes (int64, float64,
        bool, int64 day ordinals, object strings).  A nullable typed column
        stays on its native dtype as a :class:`~repro.engine.mask.Nullable`
        ``(values, validity)`` pair -- the segment arrays and null masks are
        exposed directly, no per-value decode.  Nullable *string* columns
        (and every nullable column when ``typed_nulls`` is off, the legacy
        object-array path kept as the benchmark/ablation baseline) decode to
        object arrays carrying ``None`` at NULL positions.
        """
        from repro.engine.mask import Nullable

        self.flush()
        index = self.schema.column_index(name)
        segments = [chunk.segments[index] for chunk in self.chunks]
        if not segments:
            type_name = self.schema.columns[index].type_name
            return np.empty(0, dtype=_EMPTY_DTYPES.get(type_name, object))
        if any(segment.has_nulls for segment in segments):
            type_name = self.schema.columns[index].type_name
            if typed_nulls and type_name in _EMPTY_DTYPES:
                values = [segment.values for segment in segments]
                valid = [segment.validity() for segment in segments]
                return Nullable(
                    values[0] if len(values) == 1 else np.concatenate(values),
                    valid[0] if len(valid) == 1 else np.concatenate(valid))
            decoded: list = []
            for segment in segments:
                decoded.extend(segment.encoded_python_values())
            return np.array(decoded, dtype=object)
        arrays = [segment.typed_array() for segment in segments]
        return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)

    def column_codes(self, name: str) -> np.ndarray | None:
        """Whole-column int32 dictionary codes (None when not dict-encoded)."""
        if name.lower() not in self.dictionaries:
            return None
        self.flush()
        index = self.schema.column_index(name)
        arrays = [chunk.segments[index].values for chunk in self.chunks]
        if not arrays:
            return np.empty(0, dtype=np.int32)
        return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)

    def dictionary(self, name: str) -> Dictionary | None:
        return self.dictionaries.get(name.lower())

    def zone_maps(self, name: str) -> list[ZoneMap]:
        """Per-chunk zone maps of one column (flushes the tail first)."""
        self.flush()
        index = self.schema.column_index(name)
        return [chunk.segments[index].zone_map for chunk in self.chunks]

    def zone_index(self) -> "ZoneIndex":
        """The vectorised zone-map index over all chunks (cached)."""
        from repro.engine.storage.skipping import ZoneIndex

        with self._lock:
            self.flush()
            if self._zone_index is None:
                self._zone_index = ZoneIndex(self)
            return self._zone_index

    # -- statistics ----------------------------------------------------------------

    def statistics(self) -> TableStatistics:
        """Aggregate chunk zone maps into table statistics (cached)."""
        with self._lock:
            return self._statistics_locked()

    def _statistics_locked(self) -> TableStatistics:
        if self._stats_cache is not None:
            return self._stats_cache
        self.flush()
        stats = TableStatistics(name=self.schema.name, row_count=self.row_count,
                                chunk_count=len(self.chunks))
        for index, column in enumerate(self.schema.columns):
            lowered = column.name.lower()
            entry = ColumnStatistics(name=column.name, type_name=column.type_name)
            distinct_sum = 0
            for chunk in self.chunks:
                segment = chunk.segments[index]
                zone = segment.zone_map
                entry.null_count += zone.null_count
                entry.encoded_bytes += segment.encoded_bytes
                entry.raw_bytes += segment.raw_bytes
                distinct_sum += zone.distinct_count
                if zone.min_value is not None:
                    if entry.min_value is None or zone.min_value < entry.min_value:
                        entry.min_value = zone.min_value
                    if entry.max_value is None or zone.max_value > entry.max_value:
                        entry.max_value = zone.max_value
            dictionary = self.dictionaries.get(lowered)
            if dictionary is not None:
                entry.dictionary_size = len(dictionary)
                entry.distinct_estimate = len(dictionary)
                entry.encoded_bytes += dictionary.encoded_bytes
            else:
                entry.distinct_estimate = min(distinct_sum,
                                              stats.row_count - entry.null_count)
            stats.columns[lowered] = entry
            stats.encoded_bytes += entry.encoded_bytes
            stats.raw_bytes += entry.raw_bytes
        self._stats_cache = stats
        return stats
