"""Engine facades: the "target systems" experiments run against.

An :class:`Engine` couples a :class:`Database` with an execution strategy and
a set of :class:`EngineOptions` feature flags.  Engines are what the platform
registers in its DBMS catalog and what the experiment driver executes queries
on; two engines (or two differently-configured versions of one engine) are
the systems A and B of the paper's discriminative-benchmarking story.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.engine.database import Database
from repro.engine.executor_column import ColumnExecutor
from repro.engine.executor_row import RowExecutor
from repro.engine.result import QueryResult
from repro.errors import EngineError
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_select


@dataclass(frozen=True)
class EngineOptions:
    """Feature flags distinguishing engine versions.

    Attributes
    ----------
    predicate_pushdown:
        Apply single-table predicates while scanning instead of after joins.
    hash_joins:
        Use hash joins for equi-join conditions (nested loops otherwise).
    overflow_guard:
        Column engine only: widen and materialise arithmetic intermediates,
        mimicking the overflow-guarded expression evaluation the paper's
        MonetDB Q1 anecdote describes.
    """

    predicate_pushdown: bool = True
    hash_joins: bool = True
    overflow_guard: bool = False

    def describe(self) -> dict[str, bool]:
        """Return the options as a plain dict (for platform catalog entries)."""
        return {
            "predicate_pushdown": self.predicate_pushdown,
            "hash_joins": self.hash_joins,
            "overflow_guard": self.overflow_guard,
        }


@dataclass
class Engine:
    """Base class: a named engine bound to a database instance."""

    database: Database
    name: str = "engine"
    version: str = "1.0"
    options: EngineOptions = field(default_factory=EngineOptions)

    @property
    def label(self) -> str:
        """Human-readable ``name-version`` label used in results and figures."""
        return f"{self.name}-{self.version}"

    # -- public API -----------------------------------------------------------

    def execute(self, sql: str | ast.Select) -> QueryResult:
        """Execute ``sql`` (text or parsed AST) and return a :class:`QueryResult`."""
        select = parse_select(sql) if isinstance(sql, str) else sql
        started = time.perf_counter()
        columns, rows = self._run(select)
        elapsed = time.perf_counter() - started
        return QueryResult(columns=columns, rows=rows, elapsed=elapsed, engine=self.label)

    def explain(self, sql: str | ast.Select) -> dict:
        """Return a light-weight description of how the engine would run ``sql``."""
        select = parse_select(sql) if isinstance(sql, str) else sql
        return {
            "engine": self.label,
            "strategy": self.strategy(),
            "tables": [ref.name for ref in select.table_refs()],
            "aggregated": select.has_aggregates() or bool(select.group_by),
            "subqueries": len(select.subqueries()),
            "options": self.options.describe(),
        }

    def with_version(self, version: str, **option_overrides) -> "Engine":
        """Return a new engine sharing the database but with different options."""
        options = replace(self.options, **option_overrides)
        return type(self)(database=self.database, name=self.name, version=version,
                          options=options)

    # -- overridables ------------------------------------------------------------

    def strategy(self) -> str:
        """Execution-model label ('row' or 'column')."""
        raise NotImplementedError

    def _run(self, select: ast.Select) -> tuple[list[str], list[tuple]]:
        raise NotImplementedError


class RowEngine(Engine):
    """Tuple-at-a-time engine (the "row store" target system)."""

    def __init__(self, database: Database, name: str = "rowstore", version: str = "1.0",
                 options: EngineOptions | None = None):
        super().__init__(database=database, name=name, version=version,
                         options=options or EngineOptions())

    def strategy(self) -> str:
        return "row"

    def _run(self, select: ast.Select) -> tuple[list[str], list[tuple]]:
        executor = RowExecutor(
            self.database,
            predicate_pushdown=self.options.predicate_pushdown,
            hash_joins=self.options.hash_joins,
        )
        return executor.execute(select)


class ColumnEngine(Engine):
    """Vectorised engine (the "column store" target system)."""

    def __init__(self, database: Database, name: str = "columnstore", version: str = "1.0",
                 options: EngineOptions | None = None):
        super().__init__(database=database, name=name, version=version,
                         options=options or EngineOptions())

    def strategy(self) -> str:
        return "column"

    def _run(self, select: ast.Select) -> tuple[list[str], list[tuple]]:
        executor = ColumnExecutor(
            self.database,
            predicate_pushdown=self.options.predicate_pushdown,
            hash_joins=self.options.hash_joins,
            overflow_guard=self.options.overflow_guard,
        )
        return executor.execute(select)


_ENGINE_KINDS = {
    "rowstore": RowEngine,
    "row": RowEngine,
    "columnstore": ColumnEngine,
    "column": ColumnEngine,
}


def create_engine(kind: str, database: Database, version: str = "1.0",
                  options: EngineOptions | None = None) -> Engine:
    """Create an engine of ``kind`` ('rowstore' or 'columnstore') over ``database``."""
    try:
        factory = _ENGINE_KINDS[kind.lower()]
    except KeyError:
        raise EngineError(
            f"unknown engine kind '{kind}' (expected one of {', '.join(sorted(set(_ENGINE_KINDS)))})"
        ) from None
    return factory(database=database, version=version, options=options)
