"""Engine facades: the "target systems" experiments run against.

An :class:`Engine` couples a :class:`Database` with an execution strategy and
a set of :class:`EngineOptions` feature flags.  Engines are what the platform
registers in its DBMS catalog and what the experiment driver executes queries
on; two engines (or two differently-configured versions of one engine) are
the systems A and B of the paper's discriminative-benchmarking story.

Execution follows a *plan-once/execute-many* pipeline: :meth:`Engine.prepare`
lexes, parses and plans a query into a shared :class:`QueryPlan` exactly once
(consulting a keyed LRU :class:`PlanCache`), and :meth:`Engine.execute`
accepts either raw SQL, a parsed AST, or a prepared plan.  The driver's
five-repetition loop and the pool's morph/re-measure cycle therefore pay the
front-end cost once per distinct query, not once per execution.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field, replace

from repro.engine.database import Database
from repro.engine.executor_column import ColumnExecutor
from repro.engine.executor_row import RowExecutor
from repro.engine.plan import PlanCache, Planner, QueryPlan, normalize_sql
from repro.engine.result import QueryResult
from repro.errors import EngineError
from repro.obs import NULL_SPAN, MetricsContext, QueryTrace, format_plan, format_trace
from repro.obs.metrics import count as count_metric
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_select
from repro.sqlparser.printer import to_sql

#: default number of plans an engine keeps in its LRU plan cache.
DEFAULT_PLAN_CACHE_SIZE = 128

#: ``EXPLAIN [ANALYZE] <select>`` prefix accepted by :meth:`Engine.execute`.
_EXPLAIN_RE = re.compile(r"^\s*explain(\s+analyze)?\b\s*", re.IGNORECASE)


@dataclass(frozen=True)
class EngineOptions:
    """Feature flags distinguishing engine versions.

    Attributes
    ----------
    predicate_pushdown:
        Apply single-table predicates while scanning instead of after joins.
    hash_joins:
        Use hash joins for equi-join conditions (nested loops otherwise).
    overflow_guard:
        Column engine only: widen and materialise arithmetic intermediates,
        mimicking the overflow-guarded expression evaluation the paper's
        MonetDB Q1 anecdote describes.
    compile_expressions:
        Lower each prepared plan's expressions once into compiled Python
        closures (fused per-row kernels on the row engine, column kernels on
        the column engine) instead of walking the AST with the recursive
        interpreter per row / per operator.  Compiled kernels are cached on
        the :class:`QueryPlan`, so the plan cache amortises compilation.
    selection_vectors:
        Column engine only: scans and residual predicates refine an ``int64``
        selection index that flows through joins, grouping and projection,
        instead of materialising a masked ``ColFrame`` after every predicate.
    zone_maps:
        Column engine only (with ``selection_vectors``): the scan loop skips
        whole storage chunks whose zone maps refute the push-down predicates
        before the selection vector is refined.
    dictionary_encoding:
        Column engine only (with ``selection_vectors``): equality / IN / LIKE
        scan predicates over dictionary-encoded string columns evaluate once
        over the table-wide dictionary and then against the ``int32`` code
        vector instead of the object string array.
    null_masks:
        Column engine only: scan nullable typed columns as ``(values,
        validity)`` pairs that stay on int64/float64 arrays through the
        kernel pipeline.  Off, nullable columns decode to the legacy object
        arrays holding ``None`` (correct but slow -- kept as the ablation
        baseline the null-mask benchmark measures against).  Semantics are
        identical either way; only the representation changes.
    workers:
        Column engine only (with ``selection_vectors``): morsel-driven
        parallelism degree.  Above 1, eligible scans (single base table, no
        subqueries, more than one storage chunk) partition their chunk list
        across the shared worker pool (:mod:`repro.engine.parallel`, created
        lazily and reused across queries): each worker runs zone-map
        refutation, predicate kernels and selection-vector construction
        over its own chunk range, and aggregation runs as per-worker
        partial states merged deterministically.  Results are identical to
        the serial path (the default, 1, which is left byte-for-byte
        untouched for the ablation matrix); floating-point SUM/AVG may
        differ in the last ulp because partial sums re-associate.
    """

    predicate_pushdown: bool = True
    hash_joins: bool = True
    overflow_guard: bool = False
    compile_expressions: bool = True
    selection_vectors: bool = True
    zone_maps: bool = True
    dictionary_encoding: bool = True
    null_masks: bool = True
    workers: int = 1

    def describe(self) -> dict[str, "bool | int"]:
        """Return the options as a plain dict (for platform catalog entries)."""
        return {
            "predicate_pushdown": self.predicate_pushdown,
            "hash_joins": self.hash_joins,
            "overflow_guard": self.overflow_guard,
            "compile_expressions": self.compile_expressions,
            "selection_vectors": self.selection_vectors,
            "zone_maps": self.zone_maps,
            "dictionary_encoding": self.dictionary_encoding,
            "null_masks": self.null_masks,
            "workers": self.workers,
        }


@dataclass
class Engine:
    """Base class: a named engine bound to a database instance."""

    database: Database
    name: str = "engine"
    version: str = "1.0"
    options: EngineOptions = field(default_factory=EngineOptions)
    plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE
    _plan_cache: PlanCache | None = field(default=None, init=False, repr=False,
                                          compare=False)
    _planner: Planner | None = field(default=None, init=False, repr=False, compare=False)

    @property
    def label(self) -> str:
        """Human-readable ``name-version`` label used in results and figures."""
        return f"{self.name}-{self.version}"

    @property
    def planner(self) -> Planner:
        """The engine's logical planner (bound to its catalog and options)."""
        if self._planner is None:
            self._planner = Planner(self.database.catalog,
                                    predicate_pushdown=self.options.predicate_pushdown)
        return self._planner

    @property
    def plan_cache(self) -> PlanCache:
        """The engine's keyed plan cache (per engine instance, LRU)."""
        if self._plan_cache is None:
            self._plan_cache = PlanCache(self.plan_cache_size)
        return self._plan_cache

    # -- public API -----------------------------------------------------------

    def prepare(self, query: str | ast.Select | QueryPlan) -> QueryPlan:
        """Plan ``query`` once, consulting the plan cache for SQL text input.

        Passing an already-prepared plan returns it unchanged, so callers can
        uniformly write ``engine.execute(engine.prepare(sql))`` loops.
        """
        return self._prepare_profiled(query, {}, None)

    def _prepare_profiled(self, query: str | ast.Select | QueryPlan,
                          phases: dict, trace: QueryTrace | None) -> QueryPlan:
        """Plan ``query``, recording phase timings and plan-cache counters.

        Fills ``phases['planning']`` / ``phases['compile']`` (seconds) and
        attributes ``plan_cache.hits`` / ``plan_cache.misses`` (or
        ``plan.prepared`` for an already-prepared plan) to the active
        metrics context, so plan-cache hits are visibly cheaper in profiles.
        """
        if isinstance(query, QueryPlan):
            phases["planning"] = 0.0
            phases["compile"] = 0.0
            count_metric("plan.prepared")
            return query
        if isinstance(query, ast.Select):
            started = time.perf_counter()
            with self._span(trace, "plan"):
                plan = self.planner.plan(query, sql_text=to_sql(query))
            phases["planning"] = time.perf_counter() - started
            started = time.perf_counter()
            with self._span(trace, "compile"):
                self._precompile(plan)
            phases["compile"] = time.perf_counter() - started
            return plan
        started = time.perf_counter()
        key = normalize_sql(query)
        plan = self.plan_cache.get(key)
        if plan is not None:
            phases["planning"] = time.perf_counter() - started
            phases["compile"] = 0.0
            count_metric("plan_cache.hits")
            if trace is not None:
                with trace.span("plan", plan_cache="hit"):
                    pass
            return plan
        count_metric("plan_cache.misses")
        with self._span(trace, "parse"):
            select = parse_select(query)
        with self._span(trace, "plan", plan_cache="miss"):
            plan = self.planner.plan(select, sql_text=query)
        phases["planning"] = time.perf_counter() - started
        started = time.perf_counter()
        with self._span(trace, "compile"):
            self._precompile(plan)
        phases["compile"] = time.perf_counter() - started
        self.plan_cache.put(key, plan)
        return plan

    @staticmethod
    def _span(trace: QueryTrace | None, name: str, **attributes):
        if trace is None:
            return NULL_SPAN
        return trace.span(name, **attributes)

    def execute(self, query: str | ast.Select | QueryPlan,
                trace: bool = False) -> QueryResult:
        """Execute ``query`` and return a :class:`QueryResult`.

        ``elapsed`` covers physical execution only; planning (and parsing)
        happens in :meth:`prepare` and is amortised by the plan cache --
        the per-phase split is on ``result.phases``.  Every result carries a
        per-query :class:`MetricsContext` on ``result.metrics``; pass
        ``trace=True`` (or prefix the SQL with ``EXPLAIN ANALYZE``) to also
        attach a :class:`QueryTrace` span tree on ``result.trace``.

        SQL text may be prefixed with ``EXPLAIN`` (render the logical plan
        without executing) or ``EXPLAIN ANALYZE`` (execute with tracing and
        render the annotated span tree); either returns the rendering as a
        single-column ``plan`` result.
        """
        if isinstance(query, str):
            match = _EXPLAIN_RE.match(query)
            if match:
                body = query[match.end():]
                if match.group(1):
                    return self._explain_analyze(body)
                return self._explain_plan(body)
        return self._run(query, trace=trace)

    def _run(self, query: str | ast.Select | QueryPlan, trace: bool) -> QueryResult:
        metrics = MetricsContext()
        sql = query if isinstance(query, str) else getattr(query, "sql", "")
        query_trace = QueryTrace(sql=sql, engine=self.label) if trace else None
        phases: dict[str, float] = {}
        with metrics.activate():
            plan = self._prepare_profiled(query, phases, query_trace)
            started = time.perf_counter()
            if query_trace is None:  # keep the traced-off hot path lean
                columns, rows = self._execute_plan(plan)
            else:
                with query_trace.span("execute") as span:
                    columns, rows = self._execute_plan(plan, trace=query_trace)
                    span.set(rows_out=len(rows))
            elapsed = time.perf_counter() - started
        phases["execute"] = elapsed
        if query_trace is not None:
            query_trace.root.rows_out = len(rows)
            query_trace.finish()
        return QueryResult(columns=columns, rows=rows, elapsed=elapsed,
                           engine=self.label, phases=phases, metrics=metrics,
                           trace=query_trace)

    def _explain_plan(self, sql: str) -> QueryResult:
        """``EXPLAIN <select>``: render the logical plan without executing."""
        plan = self.prepare(sql)
        lines = format_plan(plan, engine=self.label)
        return QueryResult(columns=["plan"], rows=[(line,) for line in lines],
                           engine=self.label)

    def _explain_analyze(self, sql: str) -> QueryResult:
        """``EXPLAIN ANALYZE <select>``: execute with tracing, render the tree."""
        result = self._run(sql, trace=True)
        lines = format_trace(result.trace)
        phases = result.phases
        cache = "hit" if result.metrics.get("plan_cache.hits") else "miss"
        lines.append(f"planning: {phases.get('planning', 0.0) * 1000:.3f} ms "
                     f"(plan cache {cache}), "
                     f"compile: {phases.get('compile', 0.0) * 1000:.3f} ms, "
                     f"execute: {phases.get('execute', 0.0) * 1000:.3f} ms")
        counters = result.metrics.snapshot()
        if counters:
            rendered = ", ".join(f"{name}={value}"
                                 for name, value in sorted(counters.items()))
            lines.append(f"metrics: {rendered}")
        return QueryResult(columns=["plan"], rows=[(line,) for line in lines],
                           elapsed=result.elapsed, engine=self.label,
                           phases=dict(phases), metrics=result.metrics,
                           trace=result.trace)

    def explain(self, query: str | ast.Select | QueryPlan) -> dict:
        """Return a light-weight description of how the engine would run ``query``."""
        plan = self.prepare(query)
        select = plan.select
        return {
            "engine": self.label,
            "strategy": self.strategy(),
            "tables": [ref.name for ref in select.table_refs()],
            "aggregated": select.has_aggregates() or bool(select.group_by),
            "subqueries": len(select.subqueries()),
            "options": self.options.describe(),
            "plan": plan.root.describe(),
            "plan_cache": self.plan_cache.describe(),
            "plan_tree": format_plan(plan, engine=self.label),
        }

    def cache_stats(self) -> dict:
        """Hit/miss/eviction statistics of the plan cache."""
        return self.plan_cache.describe()

    def clear_plan_cache(self) -> None:
        """Drop every cached plan (e.g. after the database schema changed)."""
        self.plan_cache.clear()

    def with_version(self, version: str, **option_overrides) -> "Engine":
        """Return a new engine sharing the database but with different options.

        The new engine starts with an empty plan cache: plans depend on the
        options (e.g. push-down), so cached plans never leak across versions.
        """
        options = replace(self.options, **option_overrides)
        return type(self)(database=self.database, name=self.name, version=version,
                          options=options, plan_cache_size=self.plan_cache_size)

    # -- overridables ------------------------------------------------------------

    def strategy(self) -> str:
        """Execution-model label ('row' or 'column')."""
        raise NotImplementedError

    def _execute_plan(self, plan: QueryPlan,
                      trace: QueryTrace | None = None) -> tuple[list[str], list[tuple]]:
        """Run a prepared plan on this engine's physical backend."""
        raise NotImplementedError

    def _precompile(self, plan: QueryPlan) -> None:
        """Eagerly compile the plan's kernels (so execution timing excludes it).

        Compilation is best-effort: a block the compiler cannot lower simply
        stays on the interpreter, and any unexpected compile failure must
        never break a query that interprets fine.
        """
        if not self.options.compile_expressions:
            return
        from repro.engine.compile import compile_column_block, compile_row_block
        if self.strategy() == "column":
            guard = self.options.overflow_guard

            def build(block):
                return compile_column_block(block, overflow_guard=guard)
            flavour = ("col", guard)
        else:
            build = compile_row_block
            flavour = ("row",)
        for block in plan.blocks.values():
            try:
                plan.kernels(block, flavour, build)
            except Exception:
                continue


class RowEngine(Engine):
    """Tuple-at-a-time engine (the "row store" target system)."""

    def __init__(self, database: Database, name: str = "rowstore", version: str = "1.0",
                 options: EngineOptions | None = None,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE):
        super().__init__(database=database, name=name, version=version,
                         options=options or EngineOptions(),
                         plan_cache_size=plan_cache_size)

    def strategy(self) -> str:
        return "row"

    def _execute_plan(self, plan: QueryPlan,
                      trace: QueryTrace | None = None) -> tuple[list[str], list[tuple]]:
        # executors are cheap, per-call shells (thread-safe under the batched
        # driver); the expensive analysis lives in the shared plan.
        executor = RowExecutor(
            self.database,
            predicate_pushdown=self.options.predicate_pushdown,
            hash_joins=self.options.hash_joins,
            compile_expressions=self.options.compile_expressions,
            plan=plan,
            trace=trace,
        )
        return executor.execute(plan)


class ColumnEngine(Engine):
    """Vectorised engine (the "column store" target system)."""

    def __init__(self, database: Database, name: str = "columnstore", version: str = "1.0",
                 options: EngineOptions | None = None,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE):
        super().__init__(database=database, name=name, version=version,
                         options=options or EngineOptions(),
                         plan_cache_size=plan_cache_size)

    def strategy(self) -> str:
        return "column"

    def _execute_plan(self, plan: QueryPlan,
                      trace: QueryTrace | None = None) -> tuple[list[str], list[tuple]]:
        executor = ColumnExecutor(
            self.database,
            predicate_pushdown=self.options.predicate_pushdown,
            hash_joins=self.options.hash_joins,
            overflow_guard=self.options.overflow_guard,
            compile_expressions=self.options.compile_expressions,
            selection_vectors=self.options.selection_vectors,
            zone_maps=self.options.zone_maps,
            dictionary_encoding=self.options.dictionary_encoding,
            null_masks=self.options.null_masks,
            workers=self.options.workers,
            plan=plan,
            trace=trace,
        )
        return executor.execute(plan)


_ENGINE_KINDS = {
    "rowstore": RowEngine,
    "row": RowEngine,
    "columnstore": ColumnEngine,
    "column": ColumnEngine,
}


def create_engine(kind: str, database: Database, version: str = "1.0",
                  options: EngineOptions | None = None) -> Engine:
    """Create an engine of ``kind`` ('rowstore' or 'columnstore') over ``database``."""
    try:
        factory = _ENGINE_KINDS[kind.lower()]
    except KeyError:
        raise EngineError(
            f"unknown engine kind '{kind}' (expected one of {', '.join(sorted(set(_ENGINE_KINDS)))})"
        ) from None
    return factory(database=database, version=version, options=options)
