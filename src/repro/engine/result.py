"""Query result container returned by both engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import MetricsContext, QueryTrace


@dataclass
class QueryResult:
    """Result of executing one query.

    Attributes
    ----------
    columns:
        Output column names, in projection order.
    rows:
        Result rows as tuples.
    elapsed:
        Wall-clock execution time in seconds (excludes parsing when the
        caller passes an already-parsed AST).
    engine:
        Name of the engine that produced the result.
    phases:
        Per-phase timings in seconds (``planning`` / ``compile`` /
        ``execute``); ``elapsed`` equals the ``execute`` phase, planning is
        amortised by the plan cache and reported separately so cache hits
        are visibly cheaper.
    metrics:
        The per-query :class:`~repro.obs.MetricsContext` the engine attached
        during execution (chunk scan/skip counts, frame materialisations,
        cache hits) -- always present for engine-executed queries.
    trace:
        The :class:`~repro.obs.QueryTrace` span tree when the caller asked
        for tracing (``Engine.execute(..., trace=True)`` or
        ``EXPLAIN ANALYZE``); None otherwise.
    """

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    elapsed: float = 0.0
    engine: str = ""
    phases: dict = field(default_factory=dict)
    metrics: "MetricsContext | None" = None
    trace: "QueryTrace | None" = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self):
        """Return the single value of a 1x1 result (None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name: str) -> list:
        """Return one output column as a list of values."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> list[dict]:
        """Return the rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def profile(self) -> dict:
        """Compact, JSON-friendly execution profile of this result.

        This is what the driver forwards with submitted results, so
        ``ResultRecord.extras`` carries scan efficiency and cache behaviour
        to the platform.
        """
        counters = self.metrics.snapshot() if self.metrics is not None else {}
        profile = {
            "engine": self.engine,
            "rows": len(self.rows),
            "phases": dict(self.phases),
            "counters": counters,
            "plan_cache_hit": bool(counters.get("plan_cache.hits")
                                   or counters.get("plan.prepared")),
        }
        if self.metrics is not None:
            efficiency = self.metrics.scan_efficiency()
            if efficiency is not None:
                profile["scan_efficiency"] = efficiency
        return profile
