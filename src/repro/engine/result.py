"""Query result container returned by both engines."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class QueryResult:
    """Result of executing one query.

    Attributes
    ----------
    columns:
        Output column names, in projection order.
    rows:
        Result rows as tuples.
    elapsed:
        Wall-clock execution time in seconds (excludes parsing when the
        caller passes an already-parsed AST).
    engine:
        Name of the engine that produced the result.
    """

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    elapsed: float = 0.0
    engine: str = ""

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self):
        """Return the single value of a 1x1 result (None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name: str) -> list:
        """Return one output column as a list of values."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> list[dict]:
        """Return the rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]
