"""Tuple-at-a-time expression evaluation (used by the row engine and as the
row-wise fallback of the column engine).

The evaluator is deliberately a straightforward recursive interpreter: its
per-row overhead is part of what makes the row engine's performance profile
different from the vectorised engine, which is exactly the kind of contrast
discriminative benchmarking is designed to expose.
"""

from __future__ import annotations

import datetime
from typing import Any, Callable, Protocol

from repro.engine.types import add_interval, like_to_predicate, to_date
from repro.errors import ExecutionError
from repro.sqlparser import ast


class RowEnv(Protocol):
    """Environment an expression is evaluated in.

    ``lookup`` returns the value of a column reference for the current row
    (consulting outer rows for correlated references); ``run_subquery``
    executes a nested SELECT with the current row as outer context and
    returns its rows.
    """

    def lookup(self, ref: ast.ColumnRef) -> Any: ...

    def run_subquery(self, select: ast.Select) -> list[tuple]: ...


_LIKE_CACHE: dict[str, Callable[[Any], bool]] = {}


def _like(pattern: str) -> Callable[[Any], bool]:
    predicate = _LIKE_CACHE.get(pattern)
    if predicate is None:
        predicate = like_to_predicate(pattern)
        _LIKE_CACHE[pattern] = predicate
    return predicate


def evaluate(expression: ast.Expression, env: RowEnv) -> Any:
    """Evaluate ``expression`` for the row bound in ``env``.

    NULL propagates through arithmetic and comparisons (returned as None);
    predicates treat None as false where SQL would.
    """
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.DateLiteral):
        return to_date(expression.value)
    if isinstance(expression, ast.IntervalLiteral):
        return expression
    if isinstance(expression, ast.ColumnRef):
        return env.lookup(expression)
    if isinstance(expression, ast.Star):
        return 1  # count(*) argument
    if isinstance(expression, ast.UnaryOp):
        return _evaluate_unary(expression, env)
    if isinstance(expression, ast.BinaryOp):
        return _evaluate_binary(expression, env)
    if isinstance(expression, ast.BoolOp):
        return _evaluate_bool(expression, env)
    if isinstance(expression, ast.Comparison):
        return _evaluate_comparison(expression, env)
    if isinstance(expression, ast.IsNull):
        value = evaluate(expression.operand, env)
        return (value is None) != expression.negated
    if isinstance(expression, ast.Between):
        return _evaluate_between(expression, env)
    if isinstance(expression, ast.Like):
        value = evaluate(expression.operand, env)
        pattern = evaluate(expression.pattern, env)
        if value is None or pattern is None:
            return None  # LIKE over NULL is UNKNOWN, negated or not
        matched = _like(str(pattern))(value)
        return (not matched) if expression.negated else matched
    if isinstance(expression, ast.InList):
        return _evaluate_in_list(expression, env)
    if isinstance(expression, ast.InSubquery):
        return _evaluate_in_subquery(expression, env)
    if isinstance(expression, ast.Exists):
        rows = env.run_subquery(expression.subquery)
        found = bool(rows)
        return (not found) if expression.negated else found
    if isinstance(expression, ast.ScalarSubquery):
        rows = env.run_subquery(expression.subquery)
        if not rows:
            return None
        return rows[0][0]
    if isinstance(expression, ast.FunctionCall):
        return _evaluate_function(expression, env)
    if isinstance(expression, ast.Cast):
        return _evaluate_cast(expression, env)
    if isinstance(expression, ast.Extract):
        return _evaluate_extract(expression, env)
    if isinstance(expression, ast.Substring):
        return _evaluate_substring(expression, env)
    if isinstance(expression, ast.CaseWhen):
        for condition, result in expression.branches:
            if evaluate(condition, env):
                return evaluate(result, env)
        if expression.default is not None:
            return evaluate(expression.default, env)
        return None
    raise ExecutionError(f"cannot evaluate expression node {type(expression).__name__}")


# -- operator helpers ------------------------------------------------------------


def _evaluate_unary(node: ast.UnaryOp, env: RowEnv) -> Any:
    value = evaluate(node.operand, env)
    if node.operator == "not":
        if value is None:
            return None
        return not value
    if value is None:
        return None
    return -value if node.operator == "-" else +value


def _evaluate_binary(node: ast.BinaryOp, env: RowEnv) -> Any:
    left = evaluate(node.left, env)
    right = evaluate(node.right, env)
    if left is None or right is None:
        return None
    operator = node.operator
    if operator == "||":
        return str(left) + str(right)
    # date +/- interval arithmetic
    if isinstance(right, ast.IntervalLiteral):
        if not isinstance(left, datetime.date):
            raise ExecutionError("interval arithmetic requires a date operand")
        amount = right.value if operator == "+" else -right.value
        return add_interval(left, amount, right.unit)
    if isinstance(left, ast.IntervalLiteral):
        raise ExecutionError("an interval may only appear on the right-hand side")
    if operator == "+":
        return left + right
    if operator == "-":
        if isinstance(left, datetime.date) and isinstance(right, datetime.date):
            return (left - right).days
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    if operator == "%":
        return left % right
    raise ExecutionError(f"unsupported binary operator '{operator}'")


def _evaluate_bool(node: ast.BoolOp, env: RowEnv) -> Any:
    """Kleene AND/OR: UNKNOWN (None) only dominates the undecided case.

    FALSE short-circuits AND and TRUE short-circuits OR even past UNKNOWN
    operands; a conjunction/disjunction that stays undecided with an UNKNOWN
    operand is UNKNOWN, not False.
    """
    if node.operator == "and":
        unknown = False
        for operand in node.operands:
            value = evaluate(operand, env)
            if value is None:
                unknown = True
            elif not value:
                return False
        return None if unknown else True
    unknown = False
    for operand in node.operands:
        value = evaluate(operand, env)
        if value is None:
            unknown = True
        elif value:
            return True
    return None if unknown else False


def _compare(operator: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if isinstance(left, datetime.date) or isinstance(right, datetime.date):
        left = to_date(left) if isinstance(left, (str, datetime.date)) else left
        right = to_date(right) if isinstance(right, (str, datetime.date)) else right
    if operator == "=":
        return left == right
    if operator == "<>":
        return left != right
    if operator == "<":
        return left < right
    if operator == "<=":
        return left <= right
    if operator == ">":
        return left > right
    if operator == ">=":
        return left >= right
    raise ExecutionError(f"unsupported comparison operator '{operator}'")


def _evaluate_comparison(node: ast.Comparison, env: RowEnv) -> Any:
    left = evaluate(node.left, env)
    if node.quantifier is not None:
        assert isinstance(node.right, ast.ScalarSubquery)
        rows = env.run_subquery(node.right.subquery)
        values = [row[0] for row in rows]
        results = [bool(_compare(node.operator, left, value)) for value in values]
        if node.quantifier == "any":
            return any(results)
        return all(results) if results else True
    right = evaluate(node.right, env)
    return _compare(node.operator, left, right)


def _kleene_and_scalar(left: Any, right: Any) -> Any:
    """Scalar Kleene AND (None = UNKNOWN): FALSE decides, UNKNOWN lingers."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _evaluate_between(node: ast.Between, env: RowEnv) -> Any:
    """BETWEEN decomposes into its Kleene conjunction.

    ``x NOT BETWEEN NULL AND 5`` is TRUE for x = 6: the ``x <= 5`` conjunct
    is already FALSE, so the NULL bound cannot change the answer -- a NULL
    operand only yields UNKNOWN while the range test stays undecided.
    """
    value = evaluate(node.operand, env)
    low = evaluate(node.low, env)
    high = evaluate(node.high, env)
    inside = _kleene_and_scalar(_compare("<=", low, value),
                                _compare("<=", value, high))
    if not node.negated:
        return inside
    return None if inside is None else (not inside)


def _in_members(value: Any, members: set, negated: bool) -> Any:
    """Kleene membership: a NULL member makes a non-match UNKNOWN.

    ``x IN (a, NULL)`` is TRUE when x matches a, otherwise UNKNOWN (the
    comparison against the NULL member is UNKNOWN); negation is Kleene NOT.
    """
    if value in members:
        result: Any = True
    elif None in members:
        result = None
    else:
        result = False
    if not negated:
        return result
    return None if result is None else (not result)


def _evaluate_in_list(node: ast.InList, env: RowEnv) -> Any:
    value = evaluate(node.operand, env)
    if value is None:
        return None
    members = {evaluate(item, env) for item in node.items}
    return _in_members(value, members, node.negated)


def _evaluate_in_subquery(node: ast.InSubquery, env: RowEnv) -> Any:
    value = evaluate(node.operand, env)
    if value is None:
        return None
    rows = env.run_subquery(node.subquery)
    members = {row[0] for row in rows}
    return _in_members(value, members, node.negated)


_SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "abs": abs,
    "round": lambda value, digits=0: round(value, int(digits)),
    "floor": lambda value: float(int(value // 1)),
    "ceil": lambda value: float(-int(-value // 1)),
    "length": lambda value: len(str(value)),
    "lower": lambda value: str(value).lower(),
    "upper": lambda value: str(value).upper(),
    "coalesce": lambda *values: next((value for value in values if value is not None), None),
}


def _evaluate_function(node: ast.FunctionCall, env: RowEnv) -> Any:
    name = node.name.lower()
    if node.is_aggregate:
        raise ExecutionError(
            f"aggregate function '{name}' used outside an aggregation context"
        )
    handler = _SCALAR_FUNCTIONS.get(name)
    if handler is None:
        raise ExecutionError(f"unknown function '{name}'")
    arguments = [evaluate(argument, env) for argument in node.arguments]
    if name != "coalesce" and any(argument is None for argument in arguments):
        return None
    return handler(*arguments)


# public aliases consumed by the kernel compiler (repro.engine.compile) and
# the vectorised primitives (repro.engine.vector); the compiled closures must
# share these exact semantics with the interpreter.
compare_values = _compare
scalar_functions = _SCALAR_FUNCTIONS
like_predicate = _like
in_members = _in_members


def _evaluate_cast(node: ast.Cast, env: RowEnv) -> Any:
    value = evaluate(node.operand, env)
    if value is None:
        return None
    target = node.type_name.lower()
    if target.startswith(("int", "bigint", "smallint")):
        return int(value)
    if target.startswith(("float", "double", "real", "decimal", "numeric")):
        return float(value)
    if target.startswith(("char", "varchar", "text", "string")):
        return str(value)
    if target.startswith("date"):
        return to_date(value)
    raise ExecutionError(f"unsupported CAST target type '{node.type_name}'")


def _evaluate_extract(node: ast.Extract, env: RowEnv) -> Any:
    value = evaluate(node.operand, env)
    if value is None:
        return None
    date_value = to_date(value)
    if node.field_name == "year":
        return date_value.year
    if node.field_name == "month":
        return date_value.month
    if node.field_name == "day":
        return date_value.day
    raise ExecutionError(f"unsupported EXTRACT field '{node.field_name}'")


def _evaluate_substring(node: ast.Substring, env: RowEnv) -> Any:
    value = evaluate(node.operand, env)
    if value is None:
        return None
    start = int(evaluate(node.start, env))
    text = str(value)
    begin = max(start - 1, 0)
    if node.length is None:
        return text[begin:]
    length = int(evaluate(node.length, env))
    return text[begin:begin + length]


# ---------------------------------------------------------------------------
# aggregate evaluation over a group of rows
# ---------------------------------------------------------------------------


def evaluate_aggregate(expression: ast.Expression, envs: list[RowEnv]) -> Any:
    """Evaluate ``expression`` over a group.

    Aggregate function calls are computed over all rows of the group; every
    non-aggregate subexpression is evaluated on the group's first row (the
    engines are deliberately lenient about non-grouped columns, the way MySQL
    is, so that grammar-morphed queries that drop GROUP BY terms still run).
    An empty group yields None for value aggregates and 0 for counts.
    """
    if isinstance(expression, ast.FunctionCall) and expression.is_aggregate:
        return _compute_aggregate(expression, envs)
    if not _has_aggregate(expression):
        if not envs:
            return None
        return evaluate(expression, envs[0])
    if isinstance(expression, ast.BinaryOp):
        left = evaluate_aggregate(expression.left, envs)
        right = evaluate_aggregate(expression.right, envs)
        if left is None or right is None:
            return None
        return _evaluate_binary(
            ast.BinaryOp(expression.operator,
                         ast.Literal(left, "number"), ast.Literal(right, "number")),
            envs[0] if envs else _EMPTY_ENV)
    if isinstance(expression, ast.UnaryOp):
        value = evaluate_aggregate(expression.operand, envs)
        if value is None:
            return None
        if expression.operator == "not":
            return not value
        return -value if expression.operator == "-" else value
    if isinstance(expression, ast.Comparison):
        left = evaluate_aggregate(expression.left, envs)
        right = evaluate_aggregate(expression.right, envs)
        return _compare(expression.operator, left, right)
    if isinstance(expression, ast.BoolOp):
        values = [evaluate_aggregate(operand, envs) for operand in expression.operands]
        if expression.operator == "and":
            if any(value is not None and not value for value in values):
                return False
            return None if any(value is None for value in values) else True
        if any(value is not None and value for value in values):
            return True
        return None if any(value is None for value in values) else False
    if isinstance(expression, ast.CaseWhen):
        for condition, result in expression.branches:
            if evaluate_aggregate(condition, envs):
                return evaluate_aggregate(result, envs)
        if expression.default is not None:
            return evaluate_aggregate(expression.default, envs)
        return None
    if isinstance(expression, ast.Cast):
        inner = evaluate_aggregate(expression.operand, envs)
        literal = ast.Literal(inner, "number")
        return _evaluate_cast(ast.Cast(literal, expression.type_name), _EMPTY_ENV)
    raise ExecutionError(
        f"cannot evaluate aggregate expression node {type(expression).__name__}"
    )


class _EmptyEnv:
    def lookup(self, ref: ast.ColumnRef) -> Any:  # pragma: no cover - defensive
        raise ExecutionError(f"no row bound for column '{ref.qualified}'")

    def run_subquery(self, select: ast.Select) -> list[tuple]:  # pragma: no cover
        raise ExecutionError("no subquery executor bound")


_EMPTY_ENV = _EmptyEnv()


def _has_aggregate(expression: ast.Expression) -> bool:
    return ast.has_local_aggregate(expression)


def _compute_aggregate(call: ast.FunctionCall, envs: list[RowEnv]) -> Any:
    name = call.name.lower()
    if name == "count":
        if not call.arguments or isinstance(call.arguments[0], ast.Star):
            return len(envs)
        values = [evaluate(call.arguments[0], env) for env in envs]
        values = [value for value in values if value is not None]
        if call.distinct:
            return len(set(values))
        return len(values)

    if not call.arguments:
        raise ExecutionError(f"aggregate '{name}' requires an argument")
    values = [evaluate(call.arguments[0], env) for env in envs]
    values = [value for value in values if value is not None]
    if call.distinct:
        values = list(set(values))
    if not values:
        return None
    if name == "sum":
        return sum(values)
    if name == "avg":
        return sum(values) / len(values)
    if name == "min":
        return min(values)
    if name == "max":
        return max(values)
    raise ExecutionError(f"unknown aggregate function '{name}'")
