"""Vectorised (column store) physical backend.

Like :mod:`repro.engine.executor_row`, this executor consumes the shared
logical plan (:mod:`repro.engine.plan`) -- scope resolution, conjunct
classification, the push-down assignment and the join schedule all come from
the :class:`BlockPlan` of each query block -- but every physical step
operates on numpy column arrays:

1. FROM items are materialised as :class:`ColFrame` column sets (base tables
   come from the database's cached columnar views, derived tables are
   executed recursively),
2. the plan's push-down predicates are applied as boolean masks at scan time,
3. the scheduled equi-joins run as hash joins producing index vectors that
   gather both sides,
4. the plan's residual predicates are evaluated column-at-a-time; predicates
   containing subqueries fall back to row-at-a-time evaluation for that
   predicate only (subqueries themselves run through a row executor),
5. grouping builds a group-id vector and computes aggregates with
   ``np.bincount`` / ``minimum.at`` style kernels,
6. projection, DISTINCT, ORDER BY and LIMIT materialise the final rows.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.engine.compile import (
    ColumnBlockKernels,
    ColumnContext,
    CompileFallback,
    Layout,
    as_mask,
    compile_column_block,
    compile_row_kernel,
)
from repro.engine.database import ColumnarTable, Database
from repro.engine.executor_row import RowExecutor, scan_source
from repro.engine.expression import evaluate as row_evaluate
from repro.engine.mask import (
    Kleene,
    Nullable,
    as_objects,
    data_of,
    kleene_and,
    kleene_not,
    kleene_or,
    none_positions,
    truth_mask,
)
from repro.engine.parallel import chunk_ranges, run_tasks, survivor_rows
from repro.engine.plan import BlockPlan, JoinStep, Planner, QueryPlan
from repro.engine.planner import ColumnInfo, Scope
from repro.engine.types import infer_type
from repro.obs import NULL_SPAN, QueryTrace, Span
from repro.obs.metrics import count as count_metric
from repro.engine.vector import (
    ColFrame,
    VectorEvaluator,
    VectorFallback,
    compare_arrays,
    isnull_mask,
)
from repro.errors import ExecutionError, PlanError
from repro.sqlparser import ast


class _FallbackRowEnv:
    """Row environment over one index of a ColFrame (for subquery predicates)."""

    __slots__ = ("executor", "frame", "index", "_row_cache")

    def __init__(self, executor: "ColumnExecutor", frame: ColFrame, index: int):
        self.executor = executor
        self.frame = frame
        self.index = index
        self._row_cache: tuple | None = None

    def lookup(self, ref: ast.ColumnRef) -> Any:
        position = self.frame.position(ref)
        if position is None:
            raise ExecutionError(f"unknown column '{ref.qualified}'")
        if self._row_cache is None:
            self._row_cache = self.frame.row(self.index)
        return self._row_cache[position]

    def run_subquery(self, select: ast.Select) -> list[tuple]:
        return self.executor.run_subquery(select, outer_env=self)


class ColumnExecutor:
    """Executes SELECT blocks against a :class:`Database` column-at-a-time."""

    def __init__(self, database: Database, predicate_pushdown: bool = True,
                 hash_joins: bool = True, overflow_guard: bool = False,
                 compile_expressions: bool = True, selection_vectors: bool = True,
                 zone_maps: bool = True, dictionary_encoding: bool = True,
                 null_masks: bool = True, workers: int = 1,
                 plan: QueryPlan | None = None,
                 trace: QueryTrace | None = None):
        self.database = database
        self.predicate_pushdown = predicate_pushdown
        self.hash_joins = hash_joins
        self.overflow_guard = overflow_guard
        self.compile_expressions = compile_expressions
        self.selection_vectors = selection_vectors
        self.zone_maps = zone_maps
        self.dictionary_encoding = dictionary_encoding
        self.null_masks = null_masks
        self.workers = max(1, int(workers))
        self._plan = plan
        self._trace = trace
        self._planner: Planner | None = None
        self._extra_blocks: dict[int, BlockPlan] = {}
        self._row_executor = RowExecutor(database, predicate_pushdown=predicate_pushdown,
                                         hash_joins=hash_joins,
                                         compile_expressions=compile_expressions,
                                         plan=plan, trace=trace)
        self._uncorrelated_cache: dict[int, list[tuple]] = {}
        self._vector_subquery_failed: set[int] = set()

    def _span(self, name: str, **attributes):
        """An operator span when tracing, the shared no-op span otherwise."""
        trace = self._trace
        if trace is None:
            return NULL_SPAN
        return trace.span(name, **attributes)

    def _chunk_total(self, item: ast.TableExpression) -> int | None:
        """Total storage chunks behind a base-table scan (None otherwise)."""
        if isinstance(item, ast.TableRef):
            try:
                return len(self.database.storage(item.name).chunks)
            except Exception:
                return None
        return None

    def _evaluator(self, frame: ColFrame) -> VectorEvaluator:
        return VectorEvaluator(frame, overflow_guard=self.overflow_guard)

    # -- public API -----------------------------------------------------------

    def execute(self, query: "ast.Select | QueryPlan") -> tuple[list[str], list[tuple]]:
        """Execute a planned query (or a bare SELECT, planned on the fly)."""
        if isinstance(query, QueryPlan):
            self._plan = query
            self._row_executor._plan = query
            select = query.select
        else:
            select = query
        self._uncorrelated_cache = {}
        self._vector_subquery_failed = set()
        frame, names = self._execute_block(select)
        rows = frame.rows()
        if select.order_by and self._trace is not None:
            with self._trace.span("order") as span:
                rows = self._order(select, names, rows)
                span.set(rows_out=len(rows))
        else:
            rows = self._order(select, names, rows)
        rows = self._limit(select, rows)
        return names, rows

    def run_subquery(self, select: ast.Select, outer_env: _FallbackRowEnv | None
                     ) -> list[tuple]:
        """Execute a nested SELECT for a fallback predicate (row semantics).

        Uncorrelated results are cached by ``id(select)`` for the duration of
        one execution -- the plan keeps the AST alive, so the key is stable
        and the per-row cache hit is an O(1) dict lookup instead of
        re-printing the subquery's SQL text.  Subqueries the vectorised path
        already failed on route straight to the row executor.
        """
        key = id(select)
        cached = self._uncorrelated_cache.get(key)
        if cached is not None:
            return cached
        if key not in self._vector_subquery_failed:
            try:
                frame, _names = self._execute_block(select)
                rows = frame.rows()
                self._uncorrelated_cache[key] = rows
                return rows
            except (VectorFallback, ExecutionError, PlanError):
                self._vector_subquery_failed.add(key)
        # correlated (or otherwise non-vectorisable) subquery: delegate to
        # the row executor with the current fallback row as outer context.
        return self._row_executor.run_subquery(
            select, outer=None if outer_env is None else _RowEnvBridge(outer_env))


    # -- block execution -------------------------------------------------------

    def _block(self, select: ast.Select) -> BlockPlan:
        """The shared analysis of ``select`` (planned on demand when absent)."""
        if self._plan is not None:
            block = self._plan.block(select)
            if block is not None:
                return block
        block = self._extra_blocks.get(id(select))
        if block is None:
            if self._planner is None:
                self._planner = Planner(self.database.catalog,
                                        predicate_pushdown=self.predicate_pushdown)
            block = self._planner.plan_block(select, registry=self._extra_blocks)
        return block

    def _block_kernels(self, block: BlockPlan) -> ColumnBlockKernels | None:
        """The block's compiled column kernels (None = interpret).

        Kernels are cached on the shared plan, so repeated executions of a
        prepared plan reuse them.  Compilation is best-effort; failures leave
        the block on the vectorised interpreter.
        """
        if not self.compile_expressions or self._plan is None:
            return None
        if self._plan.block(block.select) is not block:
            return None
        guard = self.overflow_guard

        def build(planned):
            return compile_column_block(planned, overflow_guard=guard)
        try:
            return self._plan.kernels(block, ("col", guard), build)
        except ExecutionError:
            raise
        except Exception:
            return None

    def _execute_block(self, select: ast.Select) -> tuple[ColFrame, list[str]]:
        block = self._block(select)
        if self.selection_vectors:
            return self._execute_block_sel(select, block)
        trace = self._trace

        frames = []
        for item in select.from_items:
            span_cm = (trace.span("scan", source=scan_source(item))
                       if trace is not None else NULL_SPAN)
            with span_cm as span:
                frame = self._materialise(item)
                rows_in = frame.length
                if block.pushdown:
                    frame = self._apply_pushdown(frame, block.pushdown)
                if trace is not None:
                    total = self._chunk_total(item)
                    attrs = {} if total is None else \
                        {"chunks_scanned": total, "chunks_skipped": 0}
                    span.set(rows_in=rows_in, rows_out=frame.length, **attrs)
            frames.append(frame)

        if len(frames) > 1 and trace is not None:
            with trace.span("join") as span:
                frame = self._join_frames(frames, block.join_order)
                span.set(rows_out=frame.length)
        else:
            frame = self._join_frames(frames, block.join_order)

        span_cm = self._span("filter") if block.residual else NULL_SPAN
        with span_cm as span:
            rows_in = frame.length
            frame = self._filter(frame, block.residual)
            if trace is not None and block.residual:
                span.set(rows_in=rows_in, rows_out=frame.length)

        with self._span("aggregate" if block.needs_aggregation else "project") as span:
            rows_in = frame.length
            if block.needs_aggregation:
                frame, names = self._aggregate(select, frame, block.output_names)
            else:
                frame, names = self._project(select, frame, block.output_names)
            if trace is not None:
                span.set(rows_in=rows_in, rows_out=frame.length)

        if select.distinct:
            frame = self._distinct(frame)
        return frame, names

    # -- selection-vector execution ---------------------------------------------

    def _execute_block_sel(self, select: ast.Select, block: BlockPlan
                           ) -> tuple[ColFrame, list[str]]:
        """Execute one block with predicates refining a selection vector.

        Scans stay unmaterialised: push-down and residual predicates narrow an
        ``int64`` selection index over the base arrays, joins gather through
        the composed selection, and only aggregation / projection produce a
        new :class:`ColFrame`.
        """
        kernels = self._block_kernels(block)
        trace = self._trace

        if self.workers > 1:
            info = self._parallel_info(select, block)
            if info is not None:
                return self._execute_block_parallel(select, block, kernels, info)

        # each scan span covers materialisation, the zone-map chunk gate and
        # the push-down refinement of that scan's selection vector.
        frames: list[ColFrame] = []
        selections: list[np.ndarray | None] = []
        for index, item in enumerate(select.from_items):
            span_cm = (trace.span("scan", source=scan_source(item))
                       if trace is not None else NULL_SPAN)
            with span_cm as span:
                frame = self._materialise(item)
                selection: np.ndarray | None = None
                scanned = skipped = None
                if block.pushdown:
                    pairs = kernels.pushdown[index] if kernels is not None \
                        else self._interpreted_pushdown(block, frame)
                    if pairs:
                        base = None
                        if isinstance(item, ast.TableRef):
                            if self.dictionary_encoding:
                                pairs = self._dictionary_pairs(item, frame, pairs)
                            if self.zone_maps:
                                base, scanned, skipped = self._zone_map_selection(
                                    item, frame,
                                    [predicate for _, predicate in pairs])
                        selection = self._refine_selection(frame, base, pairs)
                if trace is not None:
                    attrs = {}
                    if scanned is None:
                        total = self._chunk_total(item)
                        if total is not None:
                            scanned, skipped = total, 0
                    if scanned is not None:
                        attrs["chunks_scanned"] = scanned
                        attrs["chunks_skipped"] = skipped
                    if selection is not None:
                        attrs["selection_size"] = len(selection)
                    span.set(rows_in=frame.length,
                             rows_out=frame.length if selection is None
                             else len(selection),
                             **attrs)
            frames.append(frame)
            selections.append(selection)
        if not frames:
            raise PlanError("a query block needs at least one FROM item")

        if len(frames) > 1 and trace is not None:
            with trace.span("join") as span:
                frame, selection = self._join_frames_sel(frames, selections,
                                                         block.join_order)
                span.set(rows_out=frame.length if selection is None
                         else len(selection))
        else:
            frame, selection = self._join_frames_sel(frames, selections,
                                                     block.join_order)

        if block.residual:
            with self._span("filter") as span:
                rows_in = frame.length if selection is None else len(selection)
                pairs = kernels.residual if kernels is not None \
                    else [(None, predicate) for predicate in block.residual]
                selection = self._refine_selection(frame, selection, pairs)
                if trace is not None:
                    span.set(rows_in=rows_in, rows_out=len(selection),
                             selection_size=len(selection))

        with self._span("aggregate" if block.needs_aggregation else "project") as span:
            rows_in = frame.length if selection is None else len(selection)
            if block.needs_aggregation:
                frame, names = self._aggregate_sel(select, frame, selection, kernels,
                                                   block.output_names)
            else:
                frame, names = self._project_sel(select, frame, selection, kernels,
                                                 block.output_names)
            if trace is not None:
                span.set(rows_in=rows_in, rows_out=frame.length)

        if select.distinct:
            frame = self._distinct(frame)
        return frame, names

    def _interpreted_pushdown(self, block: BlockPlan, frame: ColFrame
                              ) -> list[tuple[None, ast.Expression]]:
        """The (uncompiled) push-down predicates applying to one scan frame."""
        bindings = {column.binding.lower() for column in frame.columns}
        return [(None, predicate)
                for binding in bindings
                for predicate in block.pushdown.get(binding, [])]

    # -- statistics-driven scan skipping ----------------------------------------

    def _zone_map_selection(self, item: ast.TableRef, frame: ColFrame,
                            predicates: list[ast.Expression]
                            ) -> tuple[np.ndarray | None, int, int]:
        """Initial scan selection skipping chunks the zone maps refute.

        Returns ``(selection, scanned, skipped)``: the selection is None when
        no chunk can be skipped (preserving the no-selection fast path),
        otherwise an int64 index covering exactly the rows of the surviving
        chunks; ``scanned``/``skipped`` are the chunk counts attributed to
        the active metrics context (their sum is the table's chunk total).
        """
        zone_index = self.database.storage(item.name).zone_index()

        def resolve(ref: ast.ColumnRef) -> tuple[str, str] | None:
            position = frame.position(ref)
            if position is None:
                return None
            column = frame.columns[position]
            return column.name, column.type_name

        selection, scanned, skipped = zone_index.selection(predicates, resolve)
        count_metric("scan.chunks_scanned", scanned)
        count_metric("scan.chunks_skipped", skipped)
        return selection, scanned, skipped

    def _zone_survivors(self, item: ast.TableRef, frame: ColFrame,
                        predicates: list[ast.Expression]
                        ) -> tuple[np.ndarray | None, int, int]:
        """Chunk-level zone-map gate for the morsel path.

        Same refutation (and metrics attribution) as
        :meth:`_zone_map_selection`, but returns the surviving *chunk
        indexes* rather than a row selection, so the coordinator can split
        them into contiguous per-worker morsel ranges before any row index
        is built.
        """
        zone_index = self.database.storage(item.name).zone_index()

        def resolve(ref: ast.ColumnRef) -> tuple[str, str] | None:
            position = frame.position(ref)
            if position is None:
                return None
            column = frame.columns[position]
            return column.name, column.type_name

        survivors, scanned, skipped = zone_index.survivors(predicates, resolve)
        count_metric("scan.chunks_scanned", scanned)
        count_metric("scan.chunks_skipped", skipped)
        return survivors, scanned, skipped

    def _dictionary_pairs(self, item: ast.TableRef, frame: ColFrame, pairs):
        """Swap scan predicates over dictionary-encoded columns to code kernels.

        Equality / IN / LIKE (and their negations) over a dictionary-encoded
        string column are evaluated once over the table-wide dictionary via a
        compiled *row* kernel -- giving exact row-engine NULL semantics --
        and then applied to the int32 code vector instead of the object
        array.
        """
        view = self.database.columnar(item.name, typed_nulls=self.null_masks)
        if not view.codes:
            return pairs
        cache = self.database.storage(item.name).scan_kernel_cache
        swapped = []
        hits = misses = 0
        for kernel, predicate in pairs:
            hit, dictionary_kernel = cache.get((predicate,))
            if hit:
                hits += 1
            else:
                misses += 1
                dictionary_kernel = self._dictionary_kernel(view, frame, predicate)
                cache.put((predicate,), dictionary_kernel)
            swapped.append((dictionary_kernel or kernel, predicate))
        if hits:
            count_metric("scan.dictionary_kernel.hits", hits)
        if misses:
            count_metric("scan.dictionary_kernel.misses", misses)
        return swapped

    def _dictionary_kernel(self, view: ColumnarTable, frame: ColFrame,
                           predicate: ast.Expression):
        if isinstance(predicate, ast.Comparison):
            if predicate.operator not in ("=", "<>") or predicate.quantifier is not None:
                return None
        elif not isinstance(predicate, (ast.InList, ast.Like)):
            return None
        refs = [node for node in predicate.walk() if isinstance(node, ast.ColumnRef)]
        if not refs:
            return None
        positions = set()
        for ref in refs:
            try:
                position = frame.position(ref)
            except ExecutionError:
                return None
            if position is None:
                return None
            positions.add(position)
        if len(positions) != 1:
            return None
        column = frame.columns[positions.pop()]
        codes = view.codes.get(column.name)
        if codes is None:
            return None
        dictionary = view.dictionaries[column.name]
        try:
            evaluate = compile_row_kernel(predicate, Layout([column]))
            null_matches = bool(evaluate((None,)))
            matching = [code for code, value in enumerate(dictionary.values)
                        if evaluate((value,))]
        except Exception:
            # includes CompileFallback: predicate stays on its generic kernel
            return None
        matching_codes = np.array(matching, dtype=np.int32)

        def kernel(ctx, _codes=codes, _matching=matching_codes, _null=null_matches):
            gathered = _codes if ctx.sel is None else _codes[ctx.sel]
            if len(_matching) == 1:
                mask = gathered == _matching[0]
            else:
                mask = np.isin(gathered, _matching)
            if _null:
                mask = mask | (gathered == -1)
            return mask
        return kernel

    def _refine_selection(self, frame: ColFrame, selection: np.ndarray | None,
                          pairs) -> np.ndarray:
        """Narrow ``selection`` by each predicate without materialising.

        Compiled kernels evaluate over the already-selected rows; interpreted
        predicates evaluate over the full base columns and are sliced at the
        selected positions; subquery predicates fall back row-at-a-time over
        the selected rows only.
        """
        for kernel, predicate in pairs:
            if selection is not None and len(selection) == 0:
                break
            if kernel is not None:
                length = frame.length if selection is None else len(selection)
                context = ColumnContext(frame.arrays, length, selection)
                mask = as_mask(kernel(context), length)
                selection = np.flatnonzero(mask) if selection is None \
                    else selection[mask]
                continue
            try:
                full = self._evaluator(frame).evaluate_predicate(predicate)
                selection = np.flatnonzero(full) if selection is None \
                    else selection[full[selection]]
            except VectorFallback:
                mask = self._fallback_predicate_sel(frame, selection, predicate)
                selection = np.flatnonzero(mask) if selection is None \
                    else selection[mask]
        if selection is None:
            selection = np.arange(frame.length, dtype=np.int64)
        return selection

    def _fallback_predicate_sel(self, frame: ColFrame, selection: np.ndarray | None,
                                predicate: ast.Expression) -> np.ndarray:
        """Row-at-a-time predicate over the selected rows only."""
        indexes = range(frame.length) if selection is None else selection
        mask = np.zeros(len(indexes), dtype=bool)
        for position, base_index in enumerate(indexes):
            env = _FallbackRowEnv(self, frame, int(base_index))
            mask[position] = bool(row_evaluate(predicate, env))
        return mask

    def _join_frames_sel(self, frames: list[ColFrame],
                         selections: list[np.ndarray | None],
                         join_order: list[JoinStep]
                         ) -> tuple[ColFrame, np.ndarray | None]:
        """Join scans following the schedule, composing their selections.

        Each hash join gathers directly from the base arrays through the
        selection indexes, so a filtered scan is never materialised just to
        be gathered again by the join.
        """
        first = join_order[0].frame_index
        frame, selection = frames[first], selections[first]
        for step in join_order[1:]:
            next_frame = frames[step.frame_index]
            next_selection = selections[step.frame_index]
            positions = []
            for left_ref, right_ref, _ in step.connecting:
                if frame.position(left_ref) is not None:
                    positions.append((frame.position(left_ref),
                                      next_frame.position(right_ref)))
                else:
                    positions.append((frame.position(right_ref),
                                      next_frame.position(left_ref)))
            frame = self._hash_join_sel(frame, selection, next_frame, next_selection,
                                        positions)
            selection = None
        return frame, selection

    def _hash_join_sel(self, left: ColFrame, left_sel: np.ndarray | None,
                       right: ColFrame, right_sel: np.ndarray | None,
                       equi: list[tuple[int, int]]) -> ColFrame:
        """Inner hash join gathering both sides through their selections."""
        left_count = left.length if left_sel is None else len(left_sel)
        right_count = right.length if right_sel is None else len(right_sel)

        if not equi:
            left_indexes = np.repeat(np.arange(left_count), right_count)
            right_indexes = np.tile(np.arange(right_count), left_count)
        else:
            right_keys = [
                right.arrays[position] if right_sel is None
                else right.arrays[position][right_sel]
                for _, position in equi
            ]
            table: dict[tuple, list[int]] = {}
            for index in range(right_count):
                key = tuple(array[index] for array in right_keys)
                table.setdefault(key, []).append(index)
            left_keys = [
                left.arrays[position] if left_sel is None
                else left.arrays[position][left_sel]
                for position, _ in equi
            ]
            left_list: list[int] = []
            right_list: list[int] = []
            for index in range(left_count):
                key = tuple(array[index] for array in left_keys)
                matches = table.get(key)
                if matches:
                    left_list.extend([index] * len(matches))
                    right_list.extend(matches)
            left_indexes = np.array(left_list, dtype=np.int64)
            right_indexes = np.array(right_list, dtype=np.int64)

        if left_sel is not None:
            left_indexes = left_sel[left_indexes]
        if right_sel is not None:
            right_indexes = right_sel[right_indexes]
        arrays = [array[left_indexes] for array in left.arrays]
        arrays += [array[right_indexes] for array in right.arrays]
        return ColFrame(columns=left.columns + right.columns, arrays=arrays,
                        length=len(left_indexes))

    def _project_sel(self, select: ast.Select, frame: ColFrame,
                     selection: np.ndarray | None, kernels: ColumnBlockKernels | None,
                     names: list[str]) -> tuple[ColFrame, list[str]]:
        length = frame.length if selection is None else len(selection)
        context = ColumnContext(frame.arrays, length, selection)
        materialised = _LazySelection(frame, selection)
        item_fns = kernels.projection if kernels is not None else None
        arrays: list[np.ndarray] = []
        columns: list[ColumnInfo] = []
        for position, item in enumerate(select.items):
            if isinstance(item.expression, ast.Star):
                star = item.expression
                for index, column in enumerate(frame.columns):
                    if star.table is None or column.binding.lower() == star.table.lower():
                        arrays.append(context.column(index))
                        columns.append(ColumnInfo("", column.name, column.type_name))
                continue
            kernel = item_fns[position] if item_fns is not None else None
            if kernel is not None:
                value = kernel(context)
            else:
                value = self._evaluate_materialised(materialised, item.expression)
            array = self._as_array(value, length)
            arrays.append(array)
            columns.append(ColumnInfo("", item.output_name(position),
                                      self._column_type(item.expression, frame, array)))
        return ColFrame(columns=columns, arrays=arrays, length=length), names

    def _aggregate_sel(self, select: ast.Select, frame: ColFrame,
                       selection: np.ndarray | None,
                       kernels: ColumnBlockKernels | None,
                       names: list[str]) -> tuple[ColFrame, list[str]]:
        length = frame.length if selection is None else len(selection)
        if length == 0 and not select.group_by and select.having is None:
            return self._empty_aggregate_result(select, frame, names)
        context = ColumnContext(frame.arrays, length, selection)
        materialised = _LazySelection(frame, selection)
        vectors = kernels.vectors if kernels is not None else {}

        def vector_of(expression: ast.Expression) -> np.ndarray:
            kernel = vectors.get(id(expression))
            if kernel is not None:
                return self._as_array(kernel(context), length)
            value = self._evaluate_materialised(materialised, expression)
            return self._as_array(value, length)

        return self._aggregate_with(select, frame, length, vector_of, names)

    def _evaluate_materialised(self, materialised: "_LazySelection",
                               expression: ast.Expression) -> Any:
        """Interpreter fallback: evaluate over a (lazily) materialised frame."""
        frame = materialised.frame()
        try:
            return self._evaluator(frame).evaluate(expression)
        except VectorFallback:
            return self._fallback_column(frame, expression)

    # -- morsel-parallel execution ------------------------------------------------

    def _parallel_info(self, select: ast.Select, block: BlockPlan
                       ) -> "_ParallelScan | None":
        """Decide whether this block runs morsel-parallel (None -> serial).

        Eligible blocks scan exactly one base table with at least two sealed
        chunks, contain no subqueries anywhere (workers never recurse into
        the executor, which keeps the shared pool deadlock-free) and have
        parallelisable work: push-down predicates, residual predicates, or
        an aggregation whose expressions decompose into mergeable per-worker
        partials.
        """
        if len(select.from_items) != 1 \
                or not isinstance(select.from_items[0], ast.TableRef):
            return None
        if select.subqueries():
            return None
        item = select.from_items[0]
        try:
            storage = self.database.storage(item.name)
        except Exception:
            return None
        storage.flush()
        if len(storage.chunks) < 2:
            return None
        if not (block.pushdown or block.residual or block.needs_aggregation):
            return None
        sites = None
        if block.needs_aggregation:
            sites = _aggregate_sites(select)
            if sites is None:
                return None
        return _ParallelScan(item, storage, sites)

    def _execute_block_parallel(self, select: ast.Select, block: BlockPlan,
                                kernels: ColumnBlockKernels | None,
                                info: "_ParallelScan"
                                ) -> tuple[ColFrame, list[str]]:
        """Morsel-driven variant of :meth:`_execute_block_sel`.

        The scan's chunk list is split into contiguous worker ranges (after
        the zone-map gate drops refuted chunks); each worker refines its own
        selection slice through the push-down and residual kernels and,
        under aggregation, folds its rows into partial group states that
        merge deterministically on the coordinating thread.  Workers record
        detached trace lanes the coordinator files under the operator spans;
        per-query metrics stay attributed on the coordinating thread.
        """
        trace = self._trace
        item = info.item
        chunks = info.storage.chunks
        starts = np.array([chunk.start for chunk in chunks], dtype=np.int64)
        counts = np.array([chunk.row_count for chunk in chunks], dtype=np.int64)
        count_metric("parallel.blocks", 1)

        span_cm = (trace.span("scan", source=scan_source(item))
                   if trace is not None else NULL_SPAN)
        with span_cm as span:
            frame = self._materialise(item)
            pairs = []
            if block.pushdown:
                pairs = kernels.pushdown[0] if kernels is not None \
                    else self._interpreted_pushdown(block, frame)
                if pairs and self.dictionary_encoding:
                    pairs = self._dictionary_pairs(item, frame, pairs)
            survivors = None
            scanned = skipped = None
            if pairs and self.zone_maps:
                survivors, scanned, skipped = self._zone_survivors(
                    item, frame, [predicate for _, predicate in pairs])
            ranges = chunk_ranges(len(chunks), survivors, self.workers)
            if pairs:
                tasks = [self._scan_task(frame, pairs, chunk_range, starts,
                                         counts, trace is not None)
                         for chunk_range in ranges]
                count_metric("parallel.scan_tasks", len(tasks))
                results = run_tasks(self.workers, tasks)
                selections = [selection for selection, _ in results]
                if trace is not None:
                    span.children.extend(lane for _, lane in results
                                         if lane is not None)
            else:
                # no scan predicates: the per-worker selections are the
                # contiguous row ranges themselves, built inline.
                selections = [
                    np.arange(int(starts[start]),
                              int(starts[start]) + int(counts[start:stop].sum()),
                              dtype=np.int64)
                    for start, stop, _ in ranges]
            total_rows = int(sum(len(selection) for selection in selections))
            if trace is not None:
                if scanned is None:
                    scanned, skipped = len(chunks), 0
                span.set(rows_in=frame.length, rows_out=total_rows,
                         chunks_scanned=scanned, chunks_skipped=skipped,
                         selection_size=total_rows, workers=len(selections))

        if block.residual:
            with self._span("filter") as span:
                rows_in = total_rows
                residual_pairs = kernels.residual if kernels is not None \
                    else [(None, predicate) for predicate in block.residual]
                tasks = [self._refine_task(frame, selection, residual_pairs,
                                           trace is not None)
                         for selection in selections]
                count_metric("parallel.filter_tasks", len(tasks))
                results = run_tasks(self.workers, tasks)
                selections = [selection for selection, _ in results]
                total_rows = int(sum(len(selection) for selection in selections))
                if trace is not None:
                    span.children.extend(lane for _, lane in results
                                         if lane is not None)
                    span.set(rows_in=rows_in, rows_out=total_rows,
                             selection_size=total_rows)

        with self._span("aggregate" if block.needs_aggregation else "project") as span:
            rows_in = total_rows
            if block.needs_aggregation:
                frame, names = self._aggregate_parallel(select, frame, selections,
                                                        kernels, info,
                                                        block.output_names, span)
            else:
                selection = np.concatenate(selections)
                frame, names = self._project_sel(select, frame, selection, kernels,
                                                 block.output_names)
            if trace is not None:
                span.set(rows_in=rows_in, rows_out=frame.length)

        if select.distinct:
            frame = self._distinct(frame)
        return frame, names

    def _scan_task(self, frame: ColFrame, pairs, chunk_range, starts: np.ndarray,
                   counts: np.ndarray, traced: bool):
        """One worker's scan morsel: selection build + push-down refinement."""
        start, stop, piece = chunk_range

        def task():
            lane = Span("worker") if traced else None
            total = int(counts[start:stop].sum())
            if len(piece) == (stop - start):
                base = np.arange(int(starts[start]), int(starts[start]) + total,
                                 dtype=np.int64)
            else:
                base = survivor_rows(piece, starts, counts)
            selection = self._refine_selection(frame, base, pairs)
            if lane is not None:
                survived = len(piece)
                lane.set(rows_in=len(base), rows_out=len(selection),
                         chunks_scanned=survived,
                         chunks_skipped=(stop - start) - survived)
                lane.close()
            return selection, lane

        return task

    def _refine_task(self, frame: ColFrame, selection: np.ndarray, pairs,
                     traced: bool):
        """One worker's residual-filter morsel over its scan selection."""

        def task():
            lane = Span("worker") if traced else None
            refined = self._refine_selection(frame, selection, pairs)
            if lane is not None:
                lane.set(rows_in=len(selection), rows_out=len(refined))
                lane.close()
            return refined, lane

        return task

    def _aggregate_parallel(self, select: ast.Select, frame: ColFrame,
                            selections: list[np.ndarray],
                            kernels: ColumnBlockKernels | None,
                            info: "_ParallelScan", names: list[str], span
                            ) -> tuple[ColFrame, list[str]]:
        """Aggregate via per-worker partial group states merged on the
        coordinator (AVG decomposes into sum/count; HAVING runs post-merge).
        """
        total = int(sum(len(selection) for selection in selections))
        if total == 0 and not select.group_by and select.having is None:
            return self._empty_aggregate_result(select, frame, names)
        key_plans = self._group_key_plans(select, info.item, frame)
        aggregates, firsts = info.sites
        traced = self._trace is not None
        tasks = [self._partial_task(frame, selection, kernels, key_plans,
                                    aggregates, firsts, traced)
                 for selection in selections]
        count_metric("parallel.aggregate_tasks", len(tasks))
        results = run_tasks(self.workers, tasks)
        if traced:
            span.children.extend(lane for _, lane in results if lane is not None)
        partials = [partial for partial, _ in results]
        aggregator = _merge_partials(select, partials, aggregates, firsts)
        return self._aggregate_finish(select, frame, aggregator, names)

    def _group_key_plans(self, select: ast.Select, item: ast.TableRef,
                         frame: ColFrame) -> list[tuple[str, Any]]:
        """Per-key evaluation plans for the worker grouping phase.

        A key that is a plain dictionary-encoded column groups on the
        whole-table int32 code vector (codes biject to values, with -1 for
        NULL, so the partition -- and the first-seen order -- is identical
        to grouping on the decoded strings); everything else evaluates the
        expression per worker.
        """
        plans: list[tuple[str, Any]] = []
        view = None
        for expression in select.group_by:
            if self.dictionary_encoding and isinstance(expression, ast.ColumnRef):
                if view is None:
                    view = self.database.columnar(item.name,
                                                  typed_nulls=self.null_masks)
                try:
                    position = frame.position(expression)
                except ExecutionError:
                    position = None
                codes = None if position is None \
                    else view.codes.get(frame.columns[position].name)
                if codes is not None:
                    plans.append(("codes", codes))
                    continue
            plans.append(("eval", expression))
        return plans

    def _partial_task(self, frame: ColFrame, selection: np.ndarray,
                      kernels: ColumnBlockKernels | None,
                      key_plans: list[tuple[str, Any]],
                      aggregates: dict[int, ast.FunctionCall],
                      firsts: dict[int, ast.Expression], traced: bool):
        """One worker's aggregation morsel: group its rows, fold partials."""
        vectors = kernels.vectors if kernels is not None else {}

        def task():
            lane = Span("worker") if traced else None
            length = len(selection)
            context = ColumnContext(frame.arrays, length, selection)
            materialised = _LazySelection(frame, selection)

            def vector_of(expression: ast.Expression) -> np.ndarray:
                kernel = vectors.get(id(expression))
                if kernel is not None:
                    return self._as_array(kernel(context), length)
                value = self._evaluate_materialised(materialised, expression)
                return self._as_array(value, length)

            if key_plans:
                factors = [plan[selection] if kind == "codes" else vector_of(plan)
                           for kind, plan in key_plans]
                group_ids, first_index, keys = _worker_groups(factors, length)
            else:
                count = 1 if length else 0
                group_ids = np.zeros(length, dtype=np.int64)
                first_index = np.zeros(count, dtype=np.int64)
                keys = [()] * count

            first_values: dict[int, np.ndarray] = {}
            for key, expression in firsts.items():
                values = vector_of(expression)
                if len(first_index) == 0:
                    first_values[key] = np.array(
                        [], dtype=object if isinstance(values, (Nullable, Kleene))
                        else values.dtype)
                    continue
                gathered = values[first_index]
                if isinstance(gathered, (Nullable, Kleene)):
                    gathered = gathered.to_objects()
                first_values[key] = gathered

            group_count = len(keys)
            partial_aggregates = {
                key: _partial_aggregate(call, vector_of, group_ids, group_count)
                for key, call in aggregates.items()}
            if lane is not None:
                lane.set(rows_in=length, rows_out=group_count)
                lane.close()
            return _WorkerPartial(keys, first_values, partial_aggregates), lane

        return task

    # -- FROM materialisation ----------------------------------------------------

    def _materialise(self, item: ast.TableExpression) -> ColFrame:
        if isinstance(item, ast.TableRef):
            view = self.database.columnar(item.name, typed_nulls=self.null_masks)
            columns = [
                ColumnInfo(binding=item.binding, name=column.name, type_name=column.type_name)
                for column in view.schema.columns
            ]
            arrays = [view.columns[column.name] for column in view.schema.columns]
            return ColFrame(columns=columns, arrays=arrays, length=view.length)
        if isinstance(item, ast.SubqueryRef):
            frame, names = self._execute_block(item.subquery)
            columns = [
                ColumnInfo(binding=item.alias, name=name, type_name=column.type_name)
                for name, column in zip(names, frame.columns)
            ]
            return ColFrame(columns=columns, arrays=frame.arrays, length=frame.length)
        if isinstance(item, ast.Join):
            return self._materialise_join(item)
        raise PlanError(f"unsupported FROM item {type(item).__name__}")

    def _materialise_join(self, join: ast.Join) -> ColFrame:
        left = self._materialise(join.left)
        right = self._materialise(join.right)
        equi, residual = self._split_join_condition(join.condition, left, right)

        if join.kind == "right":
            swapped = ast.Join(left=join.right, right=join.left, kind="left",
                               condition=join.condition)
            frame = self._materialise_join(swapped)
            width_right = len(right.columns)
            reordered = frame.arrays[width_right:] + frame.arrays[:width_right]
            columns = frame.columns[width_right:] + frame.columns[:width_right]
            return ColFrame(columns=columns, arrays=reordered, length=frame.length)

        keep_unmatched = join.kind == "left"
        return self._hash_join(left, right, equi, residual, keep_unmatched)

    def _split_join_condition(self, condition: ast.Expression | None,
                              left: ColFrame, right: ColFrame
                              ) -> tuple[list[tuple[int, int]], list[ast.Expression]]:
        equi: list[tuple[int, int]] = []
        residual: list[ast.Expression] = []
        for conjunct in ast.conjuncts(condition):
            if (isinstance(conjunct, ast.Comparison) and conjunct.operator == "="
                    and isinstance(conjunct.left, ast.ColumnRef)
                    and isinstance(conjunct.right, ast.ColumnRef)):
                left_position = left.position(conjunct.left)
                right_position = right.position(conjunct.right)
                if left_position is not None and right_position is not None:
                    equi.append((left_position, right_position))
                    continue
                left_position = left.position(conjunct.right)
                right_position = right.position(conjunct.left)
                if left_position is not None and right_position is not None:
                    equi.append((left_position, right_position))
                    continue
            residual.append(conjunct)
        return equi, residual

    def _hash_join(self, left: ColFrame, right: ColFrame, equi: list[tuple[int, int]],
                   residual: list[ast.Expression], keep_unmatched_left: bool) -> ColFrame:
        """Hash join two frames on ``equi`` position pairs, apply residual after."""
        columns = left.columns + right.columns

        if not equi:
            # cross join via index replication
            left_indexes = np.repeat(np.arange(left.length), right.length)
            right_indexes = np.tile(np.arange(right.length), left.length)
        else:
            table: dict[tuple, list[int]] = {}
            right_keys = [right.arrays[position] for _, position in equi]
            for index in range(right.length):
                key = tuple(array[index] for array in right_keys)
                table.setdefault(key, []).append(index)
            left_keys = [left.arrays[position] for position, _ in equi]
            left_list: list[int] = []
            right_list: list[int] = []
            unmatched: list[int] = []
            for index in range(left.length):
                key = tuple(array[index] for array in left_keys)
                matches = table.get(key)
                if matches:
                    left_list.extend([index] * len(matches))
                    right_list.extend(matches)
                elif keep_unmatched_left:
                    unmatched.append(index)
            left_indexes = np.array(left_list, dtype=np.int64)
            right_indexes = np.array(right_list, dtype=np.int64)

        left_arrays = [array[left_indexes] for array in left.arrays]
        right_arrays = [array[right_indexes] for array in right.arrays]
        joined = ColFrame(columns=columns, arrays=left_arrays + right_arrays,
                          length=len(left_indexes))
        if residual:
            evaluator = self._evaluator(joined)
            mask = np.ones(joined.length, dtype=bool)
            for predicate in residual:
                mask &= evaluator.evaluate_predicate(predicate)
            matched_left = left_indexes[mask] if keep_unmatched_left else None
            joined = joined.mask(mask)
        else:
            matched_left = left_indexes if keep_unmatched_left else None

        if keep_unmatched_left:
            if equi and not residual:
                missing = np.array(unmatched, dtype=np.int64)
            else:
                matched = np.zeros(left.length, dtype=bool)
                if matched_left is not None and len(matched_left):
                    matched[matched_left] = True
                if equi:
                    # rows that never matched the hash table are also unmatched
                    pass
                missing = np.arange(left.length)[~matched]
                if equi:
                    hash_unmatched = np.array(unmatched, dtype=np.int64)
                    missing = np.union1d(missing, hash_unmatched)
            if len(missing):
                pad_left = [array[missing] for array in left.arrays]
                pad_right = [
                    _null_array(len(missing), column.type_name)
                    for column in right.columns
                ]
                joined = _concat_frames(joined, ColFrame(columns=columns,
                                                         arrays=pad_left + pad_right,
                                                         length=len(missing)))
        return joined

    # -- filtering / joining ---------------------------------------------------------

    def _apply_pushdown(self, frame: ColFrame,
                        pushdown: dict[str, list[ast.Expression]]) -> ColFrame:
        bindings = {column.binding.lower() for column in frame.columns}
        predicates: list[ast.Expression] = []
        for binding in bindings:
            predicates.extend(pushdown.get(binding, []))
        if not predicates:
            return frame
        return self._filter(frame, predicates)

    def _filter(self, frame: ColFrame, predicates: list[ast.Expression]) -> ColFrame:
        if not predicates or frame.length == 0:
            return frame
        evaluator = self._evaluator(frame)
        mask = np.ones(frame.length, dtype=bool)
        for predicate in predicates:
            try:
                mask &= evaluator.evaluate_predicate(predicate)
            except VectorFallback:
                mask &= self._fallback_predicate(frame, predicate)
        return frame.mask(mask)

    def _fallback_predicate(self, frame: ColFrame, predicate: ast.Expression) -> np.ndarray:
        """Row-at-a-time evaluation of one predicate (subqueries and friends)."""
        mask = np.zeros(frame.length, dtype=bool)
        for index in range(frame.length):
            env = _FallbackRowEnv(self, frame, index)
            mask[index] = bool(row_evaluate(predicate, env))
        return mask

    def _join_frames(self, frames: list[ColFrame], join_order: list[JoinStep]) -> ColFrame:
        if not frames:
            raise PlanError("a query block needs at least one FROM item")
        current = frames[join_order[0].frame_index]
        for step in join_order[1:]:
            next_frame = frames[step.frame_index]
            positions = []
            for left_ref, right_ref, _ in step.connecting:
                if current.position(left_ref) is not None:
                    positions.append((current.position(left_ref), next_frame.position(right_ref)))
                else:
                    positions.append((current.position(right_ref), next_frame.position(left_ref)))
            current = self._hash_join(current, next_frame, positions, [], False)
        return current

    # -- projection ---------------------------------------------------------------------

    def _project(self, select: ast.Select, frame: ColFrame,
                 names: list[str]) -> tuple[ColFrame, list[str]]:
        evaluator = self._evaluator(frame)
        arrays: list[np.ndarray] = []
        columns: list[ColumnInfo] = []
        for position, item in enumerate(select.items):
            if isinstance(item.expression, ast.Star):
                star = item.expression
                for column, array in zip(frame.columns, frame.arrays):
                    if star.table is None or column.binding.lower() == star.table.lower():
                        arrays.append(array)
                        columns.append(ColumnInfo("", column.name, column.type_name))
                continue
            try:
                value = evaluator.evaluate(item.expression)
            except VectorFallback:
                value = self._fallback_column(frame, item.expression)
            array = self._as_array(value, frame.length)
            arrays.append(array)
            columns.append(ColumnInfo("", item.output_name(position),
                                      self._column_type(item.expression, frame, array)))
        return ColFrame(columns=columns, arrays=arrays, length=frame.length), names

    def _fallback_column(self, frame: ColFrame, expression: ast.Expression) -> np.ndarray:
        values = []
        for index in range(frame.length):
            env = _FallbackRowEnv(self, frame, index)
            values.append(row_evaluate(expression, env))
        return np.array(values, dtype=object)

    def _as_array(self, value: Any, length: int) -> np.ndarray:
        if isinstance(value, Kleene):
            # projected predicates deliver row-engine booleans: True/False/None
            return as_objects(value)
        if isinstance(value, (np.ndarray, Nullable)):
            return value
        return np.full(length, value, dtype=object if isinstance(value, str) else None)

    def _column_type(self, expression: ast.Expression, frame: ColFrame,
                     array: np.ndarray) -> str:
        if isinstance(expression, ast.ColumnRef):
            position = frame.position(expression)
            if position is not None:
                return frame.columns[position].type_name
        if array.dtype == np.int64:
            return "int"
        if array.dtype == np.float64:
            return "float"
        if array.dtype == bool:
            return "bool"
        if len(array):
            return infer_type(array[0])
        return "str"

    # -- aggregation ---------------------------------------------------------------------

    def _aggregate(self, select: ast.Select, frame: ColFrame,
                   names: list[str]) -> tuple[ColFrame, list[str]]:
        if frame.length == 0 and not select.group_by and select.having is None:
            return self._empty_aggregate_result(select, frame, names)
        evaluator = self._evaluator(frame)

        def vector_of(expression: ast.Expression) -> np.ndarray:
            try:
                value = evaluator.evaluate(expression)
            except VectorFallback:
                value = self._fallback_column(frame, expression)
            return self._as_array(value, frame.length)

        return self._aggregate_with(select, frame, frame.length, vector_of, names)

    def _aggregate_with(self, select: ast.Select, frame: ColFrame, length: int,
                        vector_of, names: list[str]) -> tuple[ColFrame, list[str]]:
        """Shared grouping/aggregation tail over a vector provider.

        ``vector_of(expression)`` returns one value per (selected) input row;
        the materialised and selection-vector paths only differ in how that
        provider is built.
        """
        if select.group_by:
            keys = [vector_of(expression) for expression in select.group_by]
            group_ids, first_index, group_count = _group_ids(keys, length)
        else:
            group_ids = np.zeros(length, dtype=np.int64)
            first_index = np.zeros(1 if length else 0, dtype=np.int64)
            group_count = 1

        aggregator = _GroupAggregator(vector_of, group_ids, first_index, group_count)
        return self._aggregate_finish(select, frame, aggregator, names)

    def _aggregate_finish(self, select: ast.Select, frame: ColFrame,
                          aggregator: "_GroupAggregator", names: list[str]
                          ) -> tuple[ColFrame, list[str]]:
        """HAVING + projection over per-group states (serial or merged)."""
        group_count = aggregator.group_count
        if select.having is not None:
            # HAVING keeps only groups where the predicate is TRUE; UNKNOWN
            # (a Kleene mask's invalid rows, or None in an object array)
            # collapses to False here, exactly like the filter position.
            keep = truth_mask(aggregator.evaluate(select.having), group_count)
        else:
            keep = np.ones(group_count, dtype=bool)

        arrays: list[np.ndarray] = []
        columns: list[ColumnInfo] = []
        for position, item in enumerate(select.items):
            values = _group_values(aggregator.evaluate(item.expression))
            values = np.asarray(values)
            arrays.append(values[keep])
            columns.append(ColumnInfo("", item.output_name(position),
                                      self._column_type(item.expression, frame,
                                                        values)))
        return ColFrame(columns=columns, arrays=arrays, length=int(keep.sum())), names

    def _empty_aggregate_result(self, select: ast.Select, frame: ColFrame,
                                names: list[str]) -> tuple[ColFrame, list[str]]:
        """A global aggregate over an empty input still produces one row.

        Count aggregates yield 0, everything else NULL -- matching the row
        interpreter's empty-group semantics exactly.
        """
        arrays: list[np.ndarray] = []
        columns: list[ColumnInfo] = []
        for position, item in enumerate(select.items):
            array = np.array([_empty_aggregate_value(item.expression)], dtype=object)
            arrays.append(array)
            columns.append(ColumnInfo("", item.output_name(position),
                                      self._column_type(item.expression, frame, array)))
        return ColFrame(columns=columns, arrays=arrays, length=1), names

    # -- distinct / order / limit -----------------------------------------------------------

    def _distinct(self, frame: ColFrame) -> ColFrame:
        seen: set[tuple] = set()
        keep: list[int] = []
        for index in range(frame.length):
            row = frame.row(index)
            if row not in seen:
                seen.add(row)
                keep.append(index)
        return frame.take(np.array(keep, dtype=np.int64))

    def _order(self, select: ast.Select, names: list[str], rows: list[tuple]) -> list[tuple]:
        if not select.order_by:
            return rows
        lowered = [name.lower() for name in names]
        ordered = list(rows)
        for item in reversed(select.order_by):
            position = self._order_position(item, lowered, select)
            ordered.sort(key=lambda row: (row[position] is None, row[position]),
                         reverse=item.descending)
        return ordered

    def _order_position(self, item: ast.OrderItem, lowered: list[str],
                        select: ast.Select) -> int:
        from repro.sqlparser.printer import to_sql

        expression = item.expression
        if isinstance(expression, ast.ColumnRef) and expression.table is None:
            name = expression.name.lower()
            if name in lowered:
                return lowered.index(name)
        if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
            return expression.value - 1
        rendered = to_sql(expression)
        for index, select_item in enumerate(select.items):
            if to_sql(select_item.expression) == rendered:
                return index
        raise PlanError(
            f"ORDER BY expression '{rendered}' is not part of the select list")

    def _limit(self, select: ast.Select, rows: list[tuple]) -> list[tuple]:
        start = select.offset or 0
        if select.limit is None:
            return rows[start:] if start else rows
        return rows[start:start + select.limit]


class _RowEnvBridge:
    """Adapts a :class:`_FallbackRowEnv` to the row executor's outer-env shape."""

    def __init__(self, env: _FallbackRowEnv):
        self._env = env
        self.frame = _BridgeFrame(env.frame)
        self.row = env.frame.row(env.index)
        self.outer = None


class _BridgeFrame:
    """Minimal RowFrame-compatible facade over a ColFrame."""

    def __init__(self, frame: ColFrame):
        self._frame = frame
        self.columns = frame.columns

    def position(self, ref: ast.ColumnRef) -> int | None:
        return self._frame.position(ref)

    def scope(self, outer: Scope | None = None) -> Scope:
        return Scope(columns=list(self.columns), outer=outer)


class _LazySelection:
    """Materialises a (frame, selection) pair at most once, on demand.

    Interpreter fallbacks inside the selection-vector path need a real
    :class:`ColFrame`; this defers (and shares) that gather so the common
    all-kernels case never pays it.
    """

    __slots__ = ("_base", "_selection", "_frame")

    def __init__(self, base: ColFrame, selection: np.ndarray | None):
        self._base = base
        self._selection = selection
        self._frame: ColFrame | None = None

    def frame(self) -> ColFrame:
        if self._frame is None:
            self._frame = self._base if self._selection is None \
                else self._base.take(self._selection)
        return self._frame


class _GroupAggregator:
    """Evaluates (possibly aggregate) expressions per group, vectorised.

    ``vector_of(expression)`` supplies one value per input row; the caller
    decides whether that comes from compiled kernels over a selection vector
    or from the vectorised interpreter over a materialised frame.
    """

    def __init__(self, vector_of, group_ids: np.ndarray,
                 first_index: np.ndarray, group_count: int):
        self.vector_of = vector_of
        self.group_ids = group_ids
        self.first_index = first_index
        self.group_count = group_count

    # -- public ------------------------------------------------------------------

    def evaluate(self, expression: ast.Expression) -> np.ndarray:
        """Return one value per group for ``expression``."""
        if isinstance(expression, ast.FunctionCall) and expression.is_aggregate:
            return self._aggregate_call(expression)
        if not self._has_aggregate(expression):
            return self._first_row_values(expression)
        if isinstance(expression, ast.BinaryOp):
            left = self.evaluate(expression.left)
            right = self.evaluate(expression.right)
            return _combine(expression.operator, left, right)
        if isinstance(expression, ast.UnaryOp):
            value = self.evaluate(expression.operand)
            if expression.operator == "not":
                return kleene_not(value)
            return -value if expression.operator == "-" else value
        if isinstance(expression, ast.Comparison):
            left = self.evaluate(expression.left)
            right = self.evaluate(expression.right)
            return _compare_groups(expression.operator, left, right)
        if isinstance(expression, ast.BoolOp):
            combine = kleene_and if expression.operator == "and" else kleene_or
            combined = self.evaluate(expression.operands[0])
            for operand in expression.operands[1:]:
                combined = combine(combined, self.evaluate(operand))
            return combined
        if isinstance(expression, ast.CaseWhen):
            result = np.full(self.group_count, None, dtype=object)
            decided = np.zeros(self.group_count, dtype=bool)
            for condition, branch in expression.branches:
                mask = truth_mask(self.evaluate(condition),
                                  self.group_count) & ~decided
                values = _group_values(self.evaluate(branch))
                result[mask] = np.asarray(values, dtype=object)[mask]
                decided |= mask
            if expression.default is not None:
                default = _group_values(self.evaluate(expression.default))
                result[~decided] = np.asarray(default, dtype=object)[~decided]
            return result
        if isinstance(expression, ast.Cast):
            return self.evaluate(expression.operand)
        raise ExecutionError(
            f"cannot aggregate expression node {type(expression).__name__} column-wise")

    # -- internals -------------------------------------------------------------------

    def _has_aggregate(self, expression: ast.Expression) -> bool:
        return ast.has_local_aggregate(expression)

    def _vector(self, expression: ast.Expression) -> np.ndarray:
        return self.vector_of(expression)

    def _first_row_values(self, expression: ast.Expression) -> np.ndarray:
        values = self._vector(expression)
        if len(self.first_index) == 0:
            return np.array([], dtype=object if isinstance(values, (Nullable, Kleene))
                            else values.dtype)
        gathered = values[self.first_index]
        # one value per group: decoding masked pairs to objects is cheap and
        # keeps the per-group combinators on a single representation.
        if isinstance(gathered, (Nullable, Kleene)):
            return gathered.to_objects()
        return gathered

    def _aggregate_call(self, call: ast.FunctionCall) -> np.ndarray:
        name = call.name.lower()
        if name == "count":
            if not call.arguments or isinstance(call.arguments[0], ast.Star):
                return np.bincount(self.group_ids, minlength=self.group_count).astype(np.int64)
            values = self._vector(call.arguments[0])
            if call.distinct:
                return self._count_distinct(values)
            valid = ~_null_mask(values)
            return np.bincount(self.group_ids[valid], minlength=self.group_count).astype(np.int64)

        values = self._vector(call.arguments[0])
        if call.distinct:
            values, group_ids = self._distinct_pairs(values)
        else:
            group_ids = self.group_ids
        valid = ~_null_mask(values)
        group_ids = group_ids[valid]
        numeric = values[valid]
        if isinstance(numeric, Nullable):
            numeric = numeric.values  # all-valid after the null-mask slice
        counts = np.bincount(group_ids, minlength=self.group_count)

        if name in ("sum", "avg"):
            sums = np.bincount(group_ids, weights=numeric.astype(np.float64),
                               minlength=self.group_count)
            if name == "sum":
                return _mask_empty(sums, counts)
            with np.errstate(invalid="ignore", divide="ignore"):
                averages = sums / counts
            return _mask_empty(averages, counts)
        if name in ("min", "max"):
            return self._min_max(numeric, group_ids, counts, name)
        raise ExecutionError(f"unknown aggregate function '{name}'")

    def _min_max(self, values: np.ndarray, group_ids: np.ndarray,
                 counts: np.ndarray, name: str) -> np.ndarray:
        if values.dtype.kind in ("i", "f"):
            fill = np.inf if name == "min" else -np.inf
            accumulator = np.full(self.group_count, fill, dtype=np.float64)
            operator = np.minimum if name == "min" else np.maximum
            operator.at(accumulator, group_ids, values.astype(np.float64))
            return _mask_empty(accumulator, counts)
        # strings / objects: python loop per row
        accumulator: list[Any] = [None] * self.group_count
        for value, group in zip(values, group_ids):
            current = accumulator[group]
            if current is None:
                accumulator[group] = value
            elif (value < current) if name == "min" else (value > current):
                accumulator[group] = value
        return np.array(accumulator, dtype=object)

    def _count_distinct(self, values: np.ndarray) -> np.ndarray:
        sets: list[set] = [set() for _ in range(self.group_count)]
        nulls = _null_mask(values)
        for index in range(len(values)):
            if not nulls[index]:
                sets[self.group_ids[index]].add(values[index])
        return np.array([len(bucket) for bucket in sets], dtype=np.int64)

    def _distinct_pairs(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        seen: set[tuple] = set()
        keep: list[int] = []
        for index in range(len(values)):
            key = (int(self.group_ids[index]), values[index])
            if key not in seen:
                seen.add(key)
                keep.append(index)
        keep_array = np.array(keep, dtype=np.int64)
        return values[keep_array], self.group_ids[keep_array]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _group_ids(keys: list[np.ndarray], length: int) -> tuple[np.ndarray, np.ndarray, int]:
    """Assign a dense group id per row from the grouping key columns."""
    ids = np.empty(length, dtype=np.int64)
    first: list[int] = []
    mapping: dict[tuple, int] = {}
    for index in range(length):
        key = tuple(array[index] for array in keys)
        group = mapping.get(key)
        if group is None:
            group = len(mapping)
            mapping[key] = group
            first.append(index)
        ids[index] = group
    return ids, np.array(first, dtype=np.int64), len(mapping)


def _group_values(values: Any) -> Any:
    """Per-group results on a single representation (masks decode to objects)."""
    if isinstance(values, (Nullable, Kleene)):
        return as_objects(values)
    return values


def _null_mask(values: np.ndarray) -> np.ndarray:
    # one representation dispatch for NULL detection, shared with IS NULL
    return isnull_mask(values, len(values), negated=False)


def _mask_empty(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Replace aggregate outputs of empty groups with None."""
    if (counts > 0).all():
        return values
    result = values.astype(object)
    result[counts == 0] = None
    return result


def _combine(operator: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    left, left_nulls = _as_float_with_nulls(_group_values(left))
    right, right_nulls = _as_float_with_nulls(_group_values(right))
    if operator == "+":
        result = left + right
    elif operator == "-":
        result = left - right
    elif operator == "*":
        result = left * right
    elif operator == "/":
        with np.errstate(invalid="ignore", divide="ignore"):
            result = left / right
    elif operator == "%":
        result = left % right
    else:
        raise ExecutionError(f"unsupported aggregate operator '{operator}'")
    nulls = left_nulls
    if right_nulls is not None:
        nulls = right_nulls if nulls is None else (nulls | right_nulls)
    if nulls is not None and nulls.any():
        result = result.astype(object)
        result[nulls] = None
    return result


def _as_float_with_nulls(values) -> tuple[np.ndarray, np.ndarray | None]:
    """Float view of per-group values plus the mask of NULL groups."""
    array = np.asarray(values)
    if array.dtype != object:
        return np.asarray(array, dtype=np.float64), None
    nulls = none_positions(array)
    if not nulls.any():
        return array.astype(np.float64), None
    converted = np.fromiter(
        (0.0 if value is None else float(value) for value in array),
        dtype=np.float64, count=len(array))
    return converted, nulls


def _compare_groups(operator: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if operator not in ("=", "<>", "<", "<=", ">", ">="):
        raise ExecutionError(f"unsupported comparison operator '{operator}'")
    return compare_arrays(operator, np.asarray(_group_values(left)),
                          np.asarray(_group_values(right)))


def _null_array(length: int, type_name: str) -> Any:
    """All-NULL padding column for the unmatched side of an outer join."""
    if type_name == "float":
        # an explicit validity mask, not bare NaN: predicates over the
        # padded rows must evaluate UNKNOWN (in-band NaN would compare
        # False and make NOT over the comparison wrongly TRUE).
        return Nullable(np.full(length, np.nan, dtype=np.float64),
                        np.zeros(length, dtype=bool))
    # integers and dates have no in-band null in the columnar layout, so the
    # padding side of an outer join switches to object arrays holding None.
    return np.full(length, None, dtype=object)


def _concat_frames(first: ColFrame, second: ColFrame) -> ColFrame:
    arrays = [_concat_arrays(left, right)
              for left, right in zip(first.arrays, second.arrays)]
    return ColFrame(columns=list(first.columns), arrays=arrays,
                    length=first.length + second.length)


def _concat_arrays(left: Any, right: Any) -> Any:
    """Concatenate two column pieces across the mask representations.

    Same-dtype typed pieces stay typed (validity concatenated, all-valid for
    plain pieces); anything else decodes both sides to object arrays.
    """
    if isinstance(left, Nullable) or isinstance(right, Nullable):
        left_values, left_valid = data_of(left)
        right_values, right_valid = data_of(right)
        if (isinstance(left_values, np.ndarray) and isinstance(right_values, np.ndarray)
                and left_values.dtype == right_values.dtype
                and left_values.dtype != object):
            if left_valid is None:
                left_valid = np.ones(len(left_values), dtype=bool)
            if right_valid is None:
                right_valid = np.ones(len(right_values), dtype=bool)
            return Nullable(np.concatenate([left_values, right_values]),
                            np.concatenate([left_valid, right_valid]))
        left, right = as_objects(left), as_objects(right)
    elif isinstance(left, Kleene) or isinstance(right, Kleene):
        left, right = as_objects(left), as_objects(right)
    if left.dtype != right.dtype:
        left = left.astype(object)
        right = right.astype(object)
    return np.concatenate([left, right])


def _empty_aggregate_value(expression: ast.Expression) -> Any:
    if isinstance(expression, ast.FunctionCall) and expression.name.lower() == "count":
        return 0
    return None


# ---------------------------------------------------------------------------
# morsel-parallel aggregation
# ---------------------------------------------------------------------------


class _ParallelScan:
    """Eligibility record of one morsel-parallel single-table block."""

    __slots__ = ("item", "storage", "sites")

    def __init__(self, item: ast.TableRef, storage, sites):
        self.item = item
        self.storage = storage
        self.sites = sites


class _WorkerPartial:
    """One worker's group keys, first-row gathers and aggregate partials."""

    __slots__ = ("keys", "firsts", "aggregates")

    def __init__(self, keys: list[tuple], firsts: dict[int, np.ndarray],
                 aggregates: dict[int, tuple]):
        self.keys = keys
        self.firsts = firsts
        self.aggregates = aggregates


class _MergedAggregator(_GroupAggregator):
    """Per-group evaluation over merged worker partials.

    Inherits the full expression dispatch (combinators, CASE, HAVING
    semantics) from :class:`_GroupAggregator`; only the two leaf lookups
    change -- first-row values and aggregate-call results come from the
    merged per-group states instead of row vectors.
    """

    def __init__(self, group_count: int, firsts: dict[int, np.ndarray],
                 aggregates: dict[int, np.ndarray]):
        empty = np.empty(0, dtype=np.int64)
        super().__init__(None, empty, empty, group_count)
        self._merged_firsts = firsts
        self._merged_aggregates = aggregates

    def _first_row_values(self, expression: ast.Expression) -> np.ndarray:
        try:
            return self._merged_firsts[id(expression)]
        except KeyError:
            raise ExecutionError(
                f"cannot aggregate expression node {type(expression).__name__} "
                f"column-wise") from None

    def _aggregate_call(self, call: ast.FunctionCall) -> np.ndarray:
        return self._merged_aggregates[id(call)]


def _aggregate_sites(select: ast.Select
                     ) -> tuple[dict[int, ast.FunctionCall],
                                dict[int, ast.Expression]] | None:
    """Collect the leaf sites an aggregated block evaluates per group.

    Walks every select item (and HAVING) exactly the way
    :meth:`_GroupAggregator.evaluate` will: aggregate function calls and
    aggregate-free subtrees are the leaves whose per-group values workers
    compute independently and the coordinator merges.  Returns None when
    any node falls outside that dispatch -- the block then runs serial and
    behaves (or raises) identically.
    """
    aggregates: dict[int, ast.FunctionCall] = {}
    firsts: dict[int, ast.Expression] = {}

    def visit(node: ast.Expression) -> bool:
        if isinstance(node, ast.FunctionCall) and node.is_aggregate:
            aggregates[id(node)] = node
            return True
        if not ast.has_local_aggregate(node):
            firsts[id(node)] = node
            return True
        if isinstance(node, ast.BinaryOp):
            return visit(node.left) and visit(node.right)
        if isinstance(node, ast.UnaryOp):
            return visit(node.operand)
        if isinstance(node, ast.Comparison):
            return visit(node.left) and visit(node.right)
        if isinstance(node, ast.BoolOp):
            return all(visit(operand) for operand in node.operands)
        if isinstance(node, ast.CaseWhen):
            for condition, branch in node.branches:
                if not (visit(condition) and visit(branch)):
                    return False
            return node.default is None or visit(node.default)
        if isinstance(node, ast.Cast):
            return visit(node.operand)
        return False

    for item in select.items:
        if isinstance(item.expression, ast.Star):
            return None
        if not visit(item.expression):
            return None
    if select.having is not None and not visit(select.having):
        return None
    return aggregates, firsts


def _worker_groups(factors: list, length: int
                   ) -> tuple[np.ndarray, np.ndarray, list[tuple]]:
    """Group one worker's rows: ids, first-row positions, first-seen keys."""
    fast = _factorized_groups(factors, length)
    if fast is not None:
        return fast
    ids = np.empty(length, dtype=np.int64)
    first: list[int] = []
    mapping: dict[tuple, int] = {}
    for index in range(length):
        key = tuple(factor[index] for factor in factors)
        group = mapping.get(key)
        if group is None:
            group = len(mapping)
            mapping[key] = group
            first.append(index)
        ids[index] = group
    return ids, np.array(first, dtype=np.int64), list(mapping)


def _factorized_groups(factors: list, length: int
                       ) -> tuple[np.ndarray, np.ndarray, list[tuple]] | None:
    """Vectorised grouping via ``np.unique`` factorisation (None = bail out).

    Bails to the exact dict loop on anything ``np.unique`` cannot order the
    way python equality hashes: object arrays (None / mixed types raise),
    masked representations, NaN floats (each NaN is its own group on the
    hash path) and combined code spaces that would overflow int64.
    """
    inverses: list[np.ndarray] = []
    sizes: list[int] = []
    for factor in factors:
        codes = _factor_codes(factor)
        if codes is None:
            return None
        inverse, size = codes
        inverses.append(inverse)
        sizes.append(size)
    combined = inverses[0].astype(np.int64)
    space = sizes[0]
    for inverse, size in zip(inverses[1:], sizes[1:]):
        space = space * size
        if space > 2 ** 62:
            return None
        combined = combined * size + inverse
    unique, inverse = np.unique(combined, return_inverse=True)
    group_total = len(unique)
    first = np.full(group_total, length, dtype=np.int64)
    np.minimum.at(first, inverse, np.arange(length, dtype=np.int64))
    # remap the sorted-unique ids onto first-seen order (the hash path's
    # and the serial executor's group order).
    order = np.argsort(first, kind="stable")
    rank = np.empty(group_total, dtype=np.int64)
    rank[order] = np.arange(group_total, dtype=np.int64)
    ids = rank[inverse]
    first_index = first[order]
    keys = [tuple(factor[index] for factor in factors) for index in first_index]
    return ids, first_index, keys


def _factor_codes(factor) -> tuple[np.ndarray, int] | None:
    """Dense codes of one grouping factor, or None when unsafe to sort."""
    if not isinstance(factor, np.ndarray):
        return None  # Nullable/Kleene: NULL identity stays on the hash path
    if factor.dtype.kind not in "biufSUM":
        return None
    if factor.dtype.kind == "f" and np.isnan(factor).any():
        return None  # python hashing keeps each NaN a distinct group
    try:
        unique, inverse = np.unique(factor, return_inverse=True)
    except TypeError:
        return None
    return inverse.astype(np.int64), len(unique)


def _partial_aggregate(call: ast.FunctionCall, vector_of, group_ids: np.ndarray,
                       group_count: int) -> tuple:
    """One worker's mergeable partial state for a single aggregate call.

    The per-group shapes mirror :meth:`_GroupAggregator._aggregate_call`
    exactly: COUNT decomposes to counts, SUM/AVG to (sum, count) pairs,
    MIN/MAX to running extremes, and DISTINCT aggregates keep per-group
    insertion-ordered value sets that finalise after the merge.
    """
    name = call.name.lower()
    if name == "count" and (not call.arguments
                            or isinstance(call.arguments[0], ast.Star)):
        return ("counts",
                np.bincount(group_ids, minlength=group_count).astype(np.int64))
    values = vector_of(call.arguments[0])
    if call.distinct:
        underlying = values.values if isinstance(values, Nullable) else values
        numeric = isinstance(underlying, np.ndarray) \
            and underlying.dtype.kind in ("i", "f")
        buckets: list[dict] = [{} for _ in range(group_count)]
        nulls = _null_mask(values)
        for index in range(len(values)):
            if not nulls[index]:
                buckets[group_ids[index]].setdefault(values[index], None)
        return ("distinct", buckets, numeric)
    valid = ~_null_mask(values)
    if name == "count":
        return ("counts",
                np.bincount(group_ids[valid],
                            minlength=group_count).astype(np.int64))
    grouped = group_ids[valid]
    numeric = values[valid]
    if isinstance(numeric, Nullable):
        numeric = numeric.values  # all-valid after the null-mask slice
    counts = np.bincount(grouped, minlength=group_count)
    if name in ("sum", "avg"):
        sums = np.bincount(grouped, weights=numeric.astype(np.float64),
                           minlength=group_count)
        return ("sums", sums, counts)
    if name in ("min", "max"):
        if numeric.dtype.kind in ("i", "f"):
            fill = np.inf if name == "min" else -np.inf
            accumulator = np.full(group_count, fill, dtype=np.float64)
            operator = np.minimum if name == "min" else np.maximum
            operator.at(accumulator, grouped, numeric.astype(np.float64))
            return ("minmax_num", accumulator, counts)
        extremes: list[Any] = [None] * group_count
        for value, group in zip(numeric, grouped):
            current = extremes[group]
            if current is None:
                extremes[group] = value
            elif (value < current) if name == "min" else (value > current):
                extremes[group] = value
        return ("minmax_obj", extremes, counts)
    raise ExecutionError(f"unknown aggregate function '{name}'")


def _merge_partials(select: ast.Select, partials: list[_WorkerPartial],
                    aggregates: dict[int, ast.FunctionCall],
                    firsts: dict[int, ast.Expression]) -> _MergedAggregator:
    """Fold per-worker partials into one group state, serial-identical.

    Workers cover contiguous ascending row ranges, so visiting their local
    groups in worker order reproduces the serial first-seen group order
    (and first-row values) exactly.
    """
    mapping: dict[tuple, int] = {}
    local_maps: list[np.ndarray] = []
    for partial in partials:
        local = np.empty(len(partial.keys), dtype=np.int64)
        for position, key in enumerate(partial.keys):
            group = mapping.get(key)
            if group is None:
                group = len(mapping)
                mapping[key] = group
            local[position] = group
        local_maps.append(local)
    seen = len(mapping)
    group_count = seen if select.group_by else 1

    merged_firsts = {
        key: _merge_firsts([partial.firsts[key] for partial in partials],
                           local_maps, seen)
        for key in firsts}
    merged_aggregates = {
        key: _merge_aggregate(call,
                              [partial.aggregates[key] for partial in partials],
                              local_maps, group_count)
        for key, call in aggregates.items()}
    return _MergedAggregator(group_count, merged_firsts, merged_aggregates)


def _merge_firsts(parts: list[np.ndarray], local_maps: list[np.ndarray],
                  seen: int) -> np.ndarray:
    """First-row values per global group (first contributor in worker order)."""
    reference = None
    for part in parts:
        if len(part):
            reference = part
            break
    if reference is None:
        return np.array([], dtype=parts[0].dtype if parts else object)
    dtype = reference.dtype
    for part in parts:
        if len(part) and part.dtype != dtype:
            dtype = object
            break
    merged = np.empty(seen, dtype=dtype)
    filled = np.zeros(seen, dtype=bool)
    for part, local in zip(parts, local_maps):
        if not len(part):
            continue
        wanted = ~filled[local]
        if wanted.any():
            merged[local[wanted]] = part[wanted]
            filled[local[wanted]] = True
    return merged


def _merge_aggregate(call: ast.FunctionCall, parts: list[tuple],
                     local_maps: list[np.ndarray], group_count: int
                     ) -> np.ndarray:
    """Combine one aggregate's worker partials into per-group results."""
    name = call.name.lower()
    kind = parts[0][0]
    if kind == "counts":
        totals = np.zeros(group_count, dtype=np.int64)
        for (_, counts), local in zip(parts, local_maps):
            if len(counts):
                np.add.at(totals, local, counts)
        return totals
    if kind == "distinct":
        numeric = parts[0][2]
        buckets: list[dict] = [{} for _ in range(group_count)]
        for (_, worker_buckets, _), local in zip(parts, local_maps):
            for position, bucket in enumerate(worker_buckets):
                target = buckets[int(local[position])]
                for value in bucket:
                    target.setdefault(value, None)
        return _finalize_distinct(name, buckets, numeric)
    if kind == "sums":
        sums = np.zeros(group_count, dtype=np.float64)
        counts = np.zeros(group_count, dtype=np.int64)
        for (_, worker_sums, worker_counts), local in zip(parts, local_maps):
            if len(worker_sums):
                np.add.at(sums, local, worker_sums)
                np.add.at(counts, local, worker_counts)
        if name == "sum":
            return _mask_empty(sums, counts)
        with np.errstate(invalid="ignore", divide="ignore"):
            averages = sums / counts
        return _mask_empty(averages, counts)
    if kind == "minmax_num":
        fill = np.inf if name == "min" else -np.inf
        accumulator = np.full(group_count, fill, dtype=np.float64)
        counts = np.zeros(group_count, dtype=np.int64)
        operator = np.minimum if name == "min" else np.maximum
        for (_, worker_acc, worker_counts), local in zip(parts, local_maps):
            if len(worker_acc):
                operator.at(accumulator, local, worker_acc)
                np.add.at(counts, local, worker_counts)
        return _mask_empty(accumulator, counts)
    # minmax_obj: python compare loop (None marks still-empty groups)
    extremes: list[Any] = [None] * group_count
    for (_, worker_extremes, _), local in zip(parts, local_maps):
        for position, value in enumerate(worker_extremes):
            if value is None:
                continue
            group = int(local[position])
            current = extremes[group]
            if current is None:
                extremes[group] = value
            elif (value < current) if name == "min" else (value > current):
                extremes[group] = value
    return np.array(extremes, dtype=object)


def _finalize_distinct(name: str, buckets: list[dict], numeric: bool
                       ) -> np.ndarray:
    """Final per-group values of a DISTINCT aggregate from merged value sets.

    The buckets hold each group's distinct values in global first-occurrence
    order -- exactly the row order the serial distinct-pair slice feeds its
    kernels -- so sequential accumulation reproduces the serial results
    bit for bit.
    """
    if name == "count":
        return np.array([len(bucket) for bucket in buckets], dtype=np.int64)
    if name in ("sum", "avg"):
        sums = np.empty(len(buckets), dtype=np.float64)
        counts = np.empty(len(buckets), dtype=np.int64)
        for index, bucket in enumerate(buckets):
            total = 0.0
            for value in bucket:
                total += float(value)
            sums[index] = total
            counts[index] = len(bucket)
        if name == "avg":
            with np.errstate(invalid="ignore", divide="ignore"):
                sums = sums / counts
        return _mask_empty(sums, counts)
    if numeric:
        fill = np.inf if name == "min" else -np.inf
        accumulator = np.full(len(buckets), fill, dtype=np.float64)
        counts = np.empty(len(buckets), dtype=np.int64)
        for index, bucket in enumerate(buckets):
            counts[index] = len(bucket)
            for value in bucket:
                value = float(value)
                if (value < accumulator[index]) if name == "min" \
                        else (value > accumulator[index]):
                    accumulator[index] = value
        return _mask_empty(accumulator, counts)
    results = np.full(len(buckets), None, dtype=object)
    for index, bucket in enumerate(buckets):
        best = None
        for value in bucket:
            if best is None:
                best = value
            elif (value < best) if name == "min" else (value > best):
                best = value
        results[index] = best
    return results
