"""Catalog: table and column metadata (plus statistics) shared by both engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.engine.types import LOGICAL_TYPES
from repro.errors import CatalogError

if TYPE_CHECKING:  # pragma: no cover - avoids a runtime cycle with storage
    from repro.engine.storage.stats import TableStatistics


@dataclass(frozen=True)
class ColumnDef:
    """Definition of one column: name and logical type."""

    name: str
    type_name: str

    def __post_init__(self) -> None:
        if self.type_name not in LOGICAL_TYPES:
            raise CatalogError(
                f"column '{self.name}' has unknown type '{self.type_name}' "
                f"(expected one of {', '.join(LOGICAL_TYPES)})"
            )


@dataclass
class TableSchema:
    """Schema of one table: ordered column definitions."""

    name: str
    columns: list[ColumnDef] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise CatalogError(
                    f"table '{self.name}' defines column '{column.name}' twice"
                )
            seen.add(lowered)

    def column_names(self) -> list[str]:
        """Return the column names in definition order."""
        return [column.name for column in self.columns]

    def column_index(self, name: str) -> int:
        """Return the position of column ``name`` (case-insensitive)."""
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        raise CatalogError(f"table '{self.name}' has no column '{name}'")

    def column_type(self, name: str) -> str:
        """Return the logical type of column ``name``."""
        return self.columns[self.column_index(name)].type_name

    def has_column(self, name: str) -> bool:
        """True when the table defines column ``name`` (case-insensitive)."""
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)

    def __len__(self) -> int:
        return len(self.columns)


class Catalog:
    """A set of table schemas, keyed by lower-cased table name."""

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}
        self._statistics: dict[str, Callable[[], "TableStatistics"]] = {}

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __iter__(self) -> Iterator[TableSchema]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def create_table(self, name: str,
                     columns: Iterable[tuple[str, str]] | Iterable[ColumnDef]) -> TableSchema:
        """Register table ``name`` with ``columns`` (name/type pairs)."""
        lowered = name.lower()
        if lowered in self._tables:
            raise CatalogError(f"table '{name}' already exists")
        defs = [
            column if isinstance(column, ColumnDef) else ColumnDef(*column)
            for column in columns
        ]
        if not defs:
            raise CatalogError(f"table '{name}' must have at least one column")
        schema = TableSchema(name=lowered, columns=defs)
        self._tables[lowered] = schema
        return schema

    def drop_table(self, name: str) -> None:
        """Remove table ``name`` (and its statistics binding) from the catalog."""
        try:
            del self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table '{name}'") from None
        self._statistics.pop(name.lower(), None)

    def bind_statistics(self, name: str,
                        provider: Callable[[], "TableStatistics"]) -> None:
        """Register a statistics provider for table ``name``.

        The storage layer binds its (cached) aggregation here, so planners
        consulting the catalog always see statistics reflecting the current
        table contents without the catalog owning storage state.
        """
        self._statistics[name.lower()] = provider

    def table_statistics(self, name: str) -> "TableStatistics | None":
        """Current statistics of table ``name`` (None when no storage bound)."""
        provider = self._statistics.get(name.lower())
        return provider() if provider is not None else None

    def table(self, name: str) -> TableSchema:
        """Return the schema of table ``name``."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table '{name}'") from None

    def table_names(self) -> list[str]:
        """Return all table names in creation order."""
        return list(self._tables)
