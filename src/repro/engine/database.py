"""Database: catalog plus chunked columnar storage, shared by both engines.

Rows are stored once, in the chunked columnar layout of
:mod:`repro.engine.storage`: fixed-size chunks of typed column segments with
explicit null masks, per-chunk zone maps, and dictionary-encoded string
columns.  Both execution models read derived views of the same segments --
the row engine iterates chunk row-views (tuples with real ``None`` NULLs),
the column engine scans cached whole-column numpy arrays (plus dictionary
code vectors) -- so the engines always see identical data, a prerequisite
for discriminative benchmarking where only the execution model may differ.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.engine.catalog import Catalog, ColumnDef, TableSchema
from repro.engine.storage import DEFAULT_CHUNK_ROWS, Dictionary, StorageTable
from repro.engine.types import coerce_value
from repro.errors import ExecutionError


@dataclass
class ColumnarTable:
    """Column-major view of one table (numpy arrays keyed by column name).

    NULL-free columns keep their native dtypes (int64, float64, bool, int64
    day ordinals for dates, object strings).  A nullable typed column stays
    typed as a :class:`~repro.engine.mask.Nullable` ``(values, validity)``
    pair; nullable string columns -- and every nullable column when the view
    is built with ``typed_nulls=False`` (the legacy object-array baseline)
    -- decode to object arrays holding ``None`` at NULL positions.
    ``codes``/``dictionaries`` expose the dictionary encoding of string
    columns so scans can evaluate predicates over int32 codes.
    """

    schema: TableSchema
    columns: dict[str, np.ndarray]
    length: int
    codes: dict[str, np.ndarray] = field(default_factory=dict)
    dictionaries: dict[str, Dictionary] = field(default_factory=dict)


class Database:
    """An in-memory database instance: catalog + storage (+ cached views)."""

    def __init__(self, name: str = "db", chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 dictionary_strings: bool = True):
        self.name = name
        self.chunk_rows = chunk_rows
        self.dictionary_strings = dictionary_strings
        self.catalog = Catalog()
        self._storage: dict[str, StorageTable] = {}
        self._columnar: dict[tuple[str, bool], ColumnarTable] = {}
        # concurrent executors (batched driver threads, morsel workers) may
        # request the same columnar view; builds serialise on this lock.
        self._columnar_lock = threading.Lock()

    # -- DDL / DML -----------------------------------------------------------

    def create_table(self, name: str,
                     columns: Iterable[tuple[str, str]] | Iterable[ColumnDef]) -> TableSchema:
        """Create table ``name`` and return its schema."""
        schema = self.catalog.create_table(name, columns)
        table = StorageTable(schema, chunk_rows=self.chunk_rows,
                             dictionary_strings=self.dictionary_strings)
        self._storage[schema.name] = table
        self._drop_columnar(schema.name)
        self.catalog.bind_statistics(schema.name, table.statistics)
        return schema

    def drop_table(self, name: str) -> None:
        """Drop table ``name``, its storage, and every cached derived view."""
        self.catalog.drop_table(name)
        self._storage.pop(name.lower(), None)
        self._drop_columnar(name.lower())

    def _drop_columnar(self, name: str) -> None:
        for typed_nulls in (False, True):
            self._columnar.pop((name, typed_nulls), None)

    def insert_rows(self, name: str, rows: Iterable[Sequence]) -> int:
        """Append ``rows`` (sequences in column order) to table ``name``."""
        schema = self.catalog.table(name)
        coerced: list[tuple] = []
        for row in rows:
            if len(row) != len(schema):
                raise ExecutionError(
                    f"table '{name}' expects {len(schema)} values per row, got {len(row)}"
                )
            coerced.append(tuple(
                coerce_value(value, column.type_name)
                for value, column in zip(row, schema.columns)
            ))
        count = self._storage[schema.name].append_rows(coerced)
        self._drop_columnar(schema.name)
        return count

    # -- access ------------------------------------------------------------------

    def storage(self, name: str) -> StorageTable:
        """The chunked storage backing table ``name``."""
        return self._storage[self.catalog.table(name).name]

    def row_count(self, name: str) -> int:
        """Number of rows currently stored in table ``name``."""
        return self.storage(name).row_count

    def rows(self, name: str) -> list[tuple]:
        """Row tuples of table ``name``, decoded chunk by chunk.

        The list is cached inside the storage table until the next mutation;
        treat it as read-only.
        """
        return self.storage(name).rows()

    def columnar(self, name: str, typed_nulls: bool = True) -> ColumnarTable:
        """Return (building and caching if needed) the column view of ``name``.

        ``typed_nulls`` selects the nullable-column representation: typed
        ``(values, validity)`` pairs (default) or the legacy object-array
        decode (the ``null_masks`` engine-option ablation baseline).  The
        two variants are cached independently.
        """
        schema = self.catalog.table(name)
        cached = self._columnar.get((schema.name, typed_nulls))
        if cached is not None:
            return cached
        with self._columnar_lock:
            cached = self._columnar.get((schema.name, typed_nulls))
            if cached is not None:
                return cached
            table = self._storage[schema.name]
            columns: dict[str, np.ndarray] = {}
            codes: dict[str, np.ndarray] = {}
            dictionaries: dict[str, Dictionary] = {}
            for column in schema.columns:
                columns[column.name] = table.column_array(column.name,
                                                          typed_nulls=typed_nulls)
                column_codes = table.column_codes(column.name)
                if column_codes is not None:
                    codes[column.name] = column_codes
                    dictionaries[column.name] = table.dictionary(column.name)
            view = ColumnarTable(schema=schema, columns=columns,
                                 length=table.row_count, codes=codes,
                                 dictionaries=dictionaries)
            self._columnar[(schema.name, typed_nulls)] = view
            return view

    def table_names(self) -> list[str]:
        """Names of all tables in the database."""
        return self.catalog.table_names()

    def size_summary(self) -> dict[str, dict]:
        """Per-table storage summary (rows, chunks, bytes, compression).

        Derived from the aggregated storage statistics -- the experiment
        documentation path prints this so runs record the data layout they
        measured against.
        """
        return {name: self.storage(name).statistics().describe()
                for name in self.table_names()}

    def __contains__(self, name: str) -> bool:
        return name in self.catalog


def database_from_tables(tables: dict[str, list[tuple]],
                         schema: dict[str, list[tuple[str, str]]],
                         name: str = "db",
                         chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Database:
    """Build a :class:`Database` from generator output (rows + column defs)."""
    database = Database(name=name, chunk_rows=chunk_rows)
    for table, columns in schema.items():
        database.create_table(table, columns)
        database.insert_rows(table, tables.get(table, []))
    return database
