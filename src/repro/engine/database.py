"""Database: catalog plus row storage, shared by both engine kinds.

Rows are stored once, in row-major form with values coerced to their declared
logical type.  The column engine derives numpy column arrays lazily (and
caches them) from the same storage, so both engines always see identical
data -- a prerequisite for discriminative benchmarking, where only the
execution model may differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.engine.catalog import Catalog, ColumnDef, TableSchema
from repro.engine.types import coerce_value, date_to_ordinal
from repro.errors import CatalogError, ExecutionError


@dataclass
class ColumnarTable:
    """Column-major view of one table (numpy arrays keyed by column name)."""

    schema: TableSchema
    columns: dict[str, np.ndarray]
    length: int


class Database:
    """An in-memory database instance: catalog + rows (+ cached column views)."""

    def __init__(self, name: str = "db"):
        self.name = name
        self.catalog = Catalog()
        self._rows: dict[str, list[tuple]] = {}
        self._columnar: dict[str, ColumnarTable] = {}

    # -- DDL / DML -----------------------------------------------------------

    def create_table(self, name: str,
                     columns: Iterable[tuple[str, str]] | Iterable[ColumnDef]) -> TableSchema:
        """Create table ``name`` and return its schema."""
        schema = self.catalog.create_table(name, columns)
        self._rows[schema.name] = []
        return schema

    def drop_table(self, name: str) -> None:
        """Drop table ``name`` and its data."""
        self.catalog.drop_table(name)
        self._rows.pop(name.lower(), None)
        self._columnar.pop(name.lower(), None)

    def insert_rows(self, name: str, rows: Iterable[Sequence]) -> int:
        """Append ``rows`` (sequences in column order) to table ``name``."""
        schema = self.catalog.table(name)
        storage = self._rows[schema.name]
        count = 0
        for row in rows:
            if len(row) != len(schema):
                raise ExecutionError(
                    f"table '{name}' expects {len(schema)} values per row, got {len(row)}"
                )
            coerced = tuple(
                coerce_value(value, column.type_name)
                for value, column in zip(row, schema.columns)
            )
            storage.append(coerced)
            count += 1
        self._columnar.pop(schema.name, None)
        return count

    # -- access ------------------------------------------------------------------

    def row_count(self, name: str) -> int:
        """Number of rows currently stored in table ``name``."""
        return len(self._rows[self.catalog.table(name).name])

    def rows(self, name: str) -> list[tuple]:
        """Return the row list of table ``name`` (not a copy; treat as read-only)."""
        return self._rows[self.catalog.table(name).name]

    def columnar(self, name: str) -> ColumnarTable:
        """Return (building and caching if needed) the column view of ``name``."""
        schema = self.catalog.table(name)
        cached = self._columnar.get(schema.name)
        if cached is not None:
            return cached
        rows = self._rows[schema.name]
        columns: dict[str, np.ndarray] = {}
        for index, column in enumerate(schema.columns):
            values = [row[index] for row in rows]
            columns[column.name] = _to_array(values, column.type_name)
        view = ColumnarTable(schema=schema, columns=columns, length=len(rows))
        self._columnar[schema.name] = view
        return view

    def table_names(self) -> list[str]:
        """Names of all tables in the database."""
        return self.catalog.table_names()

    def size_summary(self) -> dict[str, int]:
        """Row count per table -- handy for experiment documentation."""
        return {name: self.row_count(name) for name in self.table_names()}

    def __contains__(self, name: str) -> bool:
        return name in self.catalog


def _to_array(values: list, type_name: str) -> np.ndarray:
    """Build the numpy array for one column, honouring the logical type."""
    if type_name == "int":
        return np.array([0 if value is None else value for value in values], dtype=np.int64)
    if type_name == "float":
        return np.array(
            [np.nan if value is None else value for value in values], dtype=np.float64
        )
    if type_name == "bool":
        return np.array([bool(value) for value in values], dtype=bool)
    if type_name == "date":
        ordinals = [
            np.iinfo(np.int64).min if value is None else date_to_ordinal(value)
            for value in values
        ]
        return np.array(ordinals, dtype=np.int64)
    return np.array(["" if value is None else str(value) for value in values], dtype=object)


def database_from_tables(tables: dict[str, list[tuple]],
                         schema: dict[str, list[tuple[str, str]]],
                         name: str = "db") -> Database:
    """Build a :class:`Database` from generator output (rows + column defs)."""
    database = Database(name=name)
    for table, columns in schema.items():
        database.create_table(table, columns)
        database.insert_rows(table, tables.get(table, []))
    return database
