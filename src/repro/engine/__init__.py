"""Relational engine substrate.

The paper runs experiments against real DBMSs (MonetDB and any JDBC system);
this reproduction substitutes two pure-Python engines that understand the
same SQL dialect but differ fundamentally in execution model:

* :class:`RowEngine` -- a tuple-at-a-time interpreter (row store, nested-loop
  and hash joins, per-row expression interpretation),
* :class:`ColumnEngine` -- a vectorised engine over numpy column arrays
  (column store, bulk filters, hash joins on key vectors, vectorised
  expression evaluation).

Both are configurable with :class:`EngineOptions` feature flags so an
experiment can also compare two *versions* of the same engine (e.g. with and
without predicate push-down, or with the overflow-guarded expression
evaluation that the paper's MonetDB anecdote describes).

The shared pieces are the catalog/storage (:class:`Database`), the SQL
front-end (:mod:`repro.sqlparser`) and the logical planner.
"""

from repro.engine.catalog import Catalog, ColumnDef, TableSchema
from repro.engine.database import Database
from repro.engine.result import QueryResult
from repro.engine.engine import ColumnEngine, Engine, EngineOptions, RowEngine, create_engine

__all__ = [
    "Catalog",
    "ColumnDef",
    "TableSchema",
    "Database",
    "QueryResult",
    "Engine",
    "EngineOptions",
    "RowEngine",
    "ColumnEngine",
    "create_engine",
]
