"""Relational engine substrate.

The paper runs experiments against real DBMSs (MonetDB and any JDBC system);
this reproduction substitutes two pure-Python engines that understand the
same SQL dialect but differ fundamentally in execution model:

* :class:`RowEngine` -- a tuple-at-a-time interpreter (row store, nested-loop
  and hash joins, per-row expression interpretation),
* :class:`ColumnEngine` -- a vectorised engine over numpy column arrays
  (column store, bulk filters, hash joins on key vectors, vectorised
  expression evaluation).

Both are configurable with :class:`EngineOptions` feature flags so an
experiment can also compare two *versions* of the same engine (e.g. with and
without predicate push-down, or with the overflow-guarded expression
evaluation that the paper's MonetDB anecdote describes).

The shared pieces are the catalog (:class:`Catalog`), the chunked columnar
storage subsystem (:mod:`repro.engine.storage`: fixed-size chunks of typed
segments with null masks, zone maps, dictionary-encoded strings and
aggregated table statistics, fronted by :class:`Database`), the SQL
front-end (:mod:`repro.sqlparser`) and the logical plan layer
(:mod:`repro.engine.plan`): a :class:`Planner` analyses each query once into
a :class:`QueryPlan` that both physical backends consume (ordering scan
predicates by statistics-estimated selectivity), and every engine keeps a
keyed LRU :class:`PlanCache` so repeated executions -- the driver's
five-repetition loop, the pool's morph/re-measure cycle -- parse and plan
exactly once per distinct query.

On top of the plan sits the kernel compiler (:mod:`repro.engine.compile`):
each prepared plan's expressions are lowered once into Python closures --
fused per-row kernels for the row engine, selection-vector column kernels
for the column engine -- cached on the plan and toggled by the
``compile_expressions`` / ``selection_vectors`` engine options.
"""

from repro.engine.catalog import Catalog, ColumnDef, TableSchema
from repro.engine.compile import (
    ColumnContext,
    CompileFallback,
    compile_column_block,
    compile_column_kernel,
    compile_row_block,
    compile_row_kernel,
)
from repro.engine.database import ColumnarTable, Database
from repro.engine.storage import (
    DEFAULT_CHUNK_ROWS,
    StorageTable,
    TableStatistics,
    ZoneMap,
)
from repro.engine.plan import (
    BlockPlan,
    JoinStep,
    PlanCache,
    PlanCacheStats,
    Planner,
    QueryPlan,
    normalize_sql,
)
from repro.engine.result import QueryResult
from repro.engine.engine import (
    DEFAULT_PLAN_CACHE_SIZE,
    ColumnEngine,
    Engine,
    EngineOptions,
    RowEngine,
    create_engine,
)

__all__ = [
    "Catalog",
    "ColumnDef",
    "TableSchema",
    "ColumnContext",
    "CompileFallback",
    "compile_column_block",
    "compile_column_kernel",
    "compile_row_block",
    "compile_row_kernel",
    "ColumnarTable",
    "Database",
    "DEFAULT_CHUNK_ROWS",
    "StorageTable",
    "TableStatistics",
    "ZoneMap",
    "QueryResult",
    "BlockPlan",
    "JoinStep",
    "PlanCache",
    "PlanCacheStats",
    "Planner",
    "QueryPlan",
    "normalize_sql",
    "DEFAULT_PLAN_CACHE_SIZE",
    "Engine",
    "EngineOptions",
    "RowEngine",
    "ColumnEngine",
    "create_engine",
]
