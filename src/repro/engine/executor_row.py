"""Tuple-at-a-time (row store) physical backend.

The executor is a thin *physical* backend over the shared logical plan
(:mod:`repro.engine.plan`): all analysis -- scope resolution, conjunct
classification, the push-down assignment and the join order -- is read from
the :class:`BlockPlan` of each query block instead of being re-derived from
the AST per execution.  The physical pipeline for one block is:

1. materialise every FROM item into a :class:`RowFrame` (base tables read
   the chunk row-views the columnar storage layer decodes -- NULLs arrive
   as real ``None`` -- derived tables are executed recursively, explicit
   JOINs folded into a frame),
2. apply the plan's per-binding push-down predicates at scan time,
3. join the frames following the plan's join schedule, preferring hash joins
   on the scheduled equi-join conditions, falling back to nested loops,
4. apply the plan's residual predicates (including all predicates that
   contain subqueries -- correlated subqueries are re-executed per row,
   uncorrelated ones are cached),
5. group / aggregate / HAVING,
6. project, de-duplicate (DISTINCT), sort, LIMIT/OFFSET.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine.compile import (
    RowAggregation,
    RowBlockKernels,
    RowPredicates,
    compile_row_block,
)
from repro.engine.database import Database
from repro.engine.expression import evaluate, evaluate_aggregate
from repro.engine.plan import BlockPlan, JoinStep, Planner, QueryPlan
from repro.engine.planner import ColumnInfo, Scope, output_columns
from repro.errors import ExecutionError, PlanError
from repro.obs import NULL_SPAN, QueryTrace
from repro.sqlparser import ast
from repro.sqlparser.printer import to_sql


def scan_source(item: ast.TableExpression) -> str:
    """Human-readable label of a FROM item for scan spans."""
    if isinstance(item, ast.TableRef):
        if item.binding and item.binding.lower() != item.name.lower():
            return f"{item.name} as {item.binding}"
        return item.name
    if isinstance(item, ast.SubqueryRef):
        return f"derived {item.alias}"
    if isinstance(item, ast.Join):
        return f"{item.kind} join"
    return type(item).__name__


@dataclass
class RowFrame:
    """An intermediate relation: visible columns plus row tuples."""

    columns: list[ColumnInfo]
    rows: list[tuple]
    _index: dict[tuple[str, str], int] = field(default_factory=dict, repr=False)
    _by_name: dict[str, list[int]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.reindex()

    def reindex(self) -> None:
        """Rebuild the column lookup structures after columns changed."""
        self._index = {}
        self._by_name = {}
        for position, column in enumerate(self.columns):
            self._index[(column.binding.lower(), column.name.lower())] = position
            self._by_name.setdefault(column.name.lower(), []).append(position)

    def position(self, ref: ast.ColumnRef) -> int | None:
        """Column position of ``ref`` in this frame, or None when absent."""
        if ref.table:
            return self._index.get((ref.table.lower(), ref.name.lower()))
        positions = self._by_name.get(ref.name.lower())
        if not positions:
            return None
        return positions[0]

    def scope(self, outer: Scope | None = None) -> Scope:
        """Build a name-resolution scope over this frame."""
        return Scope(columns=list(self.columns), outer=outer)


class _RowEnv:
    """Expression environment for one row of a frame (plus outer rows)."""

    __slots__ = ("executor", "frame", "row", "outer")

    def __init__(self, executor: "RowExecutor", frame: RowFrame, row: tuple,
                 outer: "_RowEnv | None" = None):
        self.executor = executor
        self.frame = frame
        self.row = row
        self.outer = outer

    def lookup(self, ref: ast.ColumnRef) -> Any:
        env: _RowEnv | None = self
        while env is not None:
            position = env.frame.position(ref)
            if position is not None:
                return env.row[position]
            env = env.outer
        raise ExecutionError(f"unknown column '{ref.qualified}'")

    def run_subquery(self, select: ast.Select) -> list[tuple]:
        return self.executor.run_subquery(select, outer=self)


class RowExecutor:
    """Executes planned SELECT blocks against a :class:`Database`, tuple at a time."""

    def __init__(self, database: Database, predicate_pushdown: bool = True,
                 hash_joins: bool = True, compile_expressions: bool = True,
                 plan: QueryPlan | None = None, trace: QueryTrace | None = None):
        self.database = database
        self.predicate_pushdown = predicate_pushdown
        self.hash_joins = hash_joins
        self.compile_expressions = compile_expressions
        self._plan = plan
        self._trace = trace
        self._planner: Planner | None = None
        self._extra_blocks: dict[int, BlockPlan] = {}
        self._uncorrelated_cache: dict[int, list[tuple]] = {}
        self._correlated: dict[int, bool] = {}

    def _span(self, name: str, **attributes):
        """An operator span when tracing, the shared no-op span otherwise."""
        trace = self._trace
        if trace is None:
            return NULL_SPAN
        return trace.span(name, **attributes)

    def _chunk_attrs(self, item: ast.TableExpression) -> dict:
        """Chunk accounting for a scan span: the row engine reads every chunk."""
        if isinstance(item, ast.TableRef):
            try:
                chunks = len(self.database.storage(item.name).chunks)
            except Exception:
                return {}
            return {"chunks_scanned": chunks, "chunks_skipped": 0}
        return {}

    # -- public API -----------------------------------------------------------

    def execute(self, query: "ast.Select | QueryPlan") -> tuple[list[str], list[tuple]]:
        """Execute a planned query (or a bare SELECT, planned on the fly)."""
        if isinstance(query, QueryPlan):
            self._plan = query
            select = query.select
        else:
            select = query
        self._uncorrelated_cache = {}
        return self._execute_block(select, outer=None)

    def run_subquery(self, select: ast.Select, outer: "_RowEnv | None") -> list[tuple]:
        """Execute a nested SELECT, caching uncorrelated results.

        The per-execution cache (and the correlation analysis) is keyed by
        ``id(select)`` -- the plan keeps the AST alive, so the key is stable
        and the per-row lookup does not re-print the subquery's SQL.
        """
        correlated = self._is_correlated(select, outer)
        cache_key = id(select) if not correlated else None
        if cache_key is not None and cache_key in self._uncorrelated_cache:
            return self._uncorrelated_cache[cache_key]
        _, rows = self._execute_block(select, outer=outer if correlated else None)
        if cache_key is not None:
            self._uncorrelated_cache[cache_key] = rows
        return rows

    # -- block execution -------------------------------------------------------

    def _block(self, select: ast.Select) -> BlockPlan:
        """The shared analysis of ``select`` (planned on demand when absent)."""
        if self._plan is not None:
            block = self._plan.block(select)
            if block is not None:
                return block
        block = self._extra_blocks.get(id(select))
        if block is None:
            if self._planner is None:
                self._planner = Planner(self.database.catalog,
                                        predicate_pushdown=self.predicate_pushdown)
            block = self._planner.plan_block(select, registry=self._extra_blocks)
        return block

    def _block_kernels(self, block: BlockPlan) -> RowBlockKernels | None:
        """The block's compiled kernels (None = interpret).

        Only blocks owned by a shared plan get kernels: the plan caches the
        compiled closures, so repeated executions -- and the column engine's
        row-fallback subqueries -- reuse them.  Compilation is best-effort;
        any failure leaves the block on the interpreter.
        """
        if not self.compile_expressions or self._plan is None:
            return None
        if self._plan.block(block.select) is not block:
            return None
        try:
            return self._plan.kernels(block, ("row",), compile_row_block)
        except Exception:
            return None

    def _execute_block(self, select: ast.Select, outer: "_RowEnv | None"
                       ) -> tuple[list[str], list[tuple]]:
        block = self._block(select)
        kernels = self._block_kernels(block)
        trace = self._trace

        # single-relation predicates are applied while scanning each input, so
        # each scan span covers materialisation plus push-down filtering.
        frames: list[RowFrame] = []
        for index, item in enumerate(select.from_items):
            span_cm = (trace.span("scan", source=scan_source(item))
                       if trace is not None else NULL_SPAN)
            with span_cm as span:
                frame = self._materialise(item, outer)
                rows_in = len(frame.rows)
                if block.pushdown:
                    if kernels is not None:
                        compiled = kernels.pushdown[index]
                        if compiled is not None:
                            frame = self._filter_kernels(frame, compiled, outer)
                    else:
                        frame = self._apply_pushdown(frame, block.pushdown, outer)
                if trace is not None:
                    span.set(rows_in=rows_in, rows_out=len(frame.rows),
                             **self._chunk_attrs(item))
            frames.append(frame)

        if len(frames) > 1 and trace is not None:
            with trace.span("join") as span:
                frame = self._join_frames(frames, block.join_order, outer)
                span.set(rows_out=len(frame.rows))
        else:
            frame = self._join_frames(frames, block.join_order, outer)

        has_residual = bool(block.residual)
        span_cm = self._span("filter") if has_residual else NULL_SPAN
        with span_cm as span:
            rows_in = len(frame.rows)
            if kernels is not None and kernels.residual is not None:
                frame = self._filter_kernels(frame, kernels.residual, outer)
            else:
                frame = self._filter(frame, block.residual, outer)
            if trace is not None and has_residual:
                span.set(rows_in=rows_in, rows_out=len(frame.rows))

        with self._span("aggregate" if block.needs_aggregation else "project") as span:
            if block.needs_aggregation:
                aggregation = kernels.aggregation if kernels is not None else None
                if aggregation is not None and (frame.rows or select.group_by):
                    columns, rows = self._aggregate_kernels(select, frame, aggregation,
                                                            block.output_names)
                else:
                    # the empty global group keeps the interpreter's semantics
                    # (non-aggregate subexpressions evaluate to NULL).
                    columns, rows = self._aggregate(select, frame, outer,
                                                    block.output_names)
            elif kernels is not None and kernels.projection is not None:
                columns, rows = self._project_kernels(select, frame, outer,
                                                      block.output_names,
                                                      kernels.projection)
            else:
                columns, rows = self._project(select, frame, outer, block.output_names)
            if trace is not None:
                span.set(rows_in=len(frame.rows), rows_out=len(rows))

        if select.distinct:
            rows = list(dict.fromkeys(rows))
        if select.order_by and trace is not None:
            with trace.span("order") as span:
                rows = self._order(select, columns, rows, frame)
                span.set(rows_out=len(rows))
        else:
            rows = self._order(select, columns, rows, frame)
        rows = self._limit(select, rows)
        return columns, rows

    # -- compiled physical operators ---------------------------------------------

    def _filter_kernels(self, frame: RowFrame, predicates: RowPredicates,
                        outer: "_RowEnv | None") -> RowFrame:
        """Filter a frame through a compiled conjunction (+ interpreter rest)."""
        rows = frame.rows
        if predicates.fused is not None:
            fused = predicates.fused
            rows = [row for row in rows if fused(row)]
        if predicates.interpreted:
            rows = [row for row in rows
                    if self._passes(predicates.interpreted, frame, row, outer)]
        if rows is frame.rows:
            return frame
        return RowFrame(columns=frame.columns, rows=rows)

    def _project_kernels(self, select: ast.Select, frame: RowFrame,
                         outer: "_RowEnv | None", columns: list[str],
                         item_fns: list) -> tuple[list[str], list[tuple]]:
        star_positions = self._star_positions(select, frame)
        items = list(zip(select.items, item_fns))
        need_env = any(fn is None and not isinstance(item.expression, ast.Star)
                       for item, fn in items)
        rows: list[tuple] = []
        for row in frame.rows:
            env = _RowEnv(self, frame, row, outer) if need_env else None
            values: list[Any] = []
            for item, fn in items:
                if fn is not None:
                    values.append(fn(row))
                elif isinstance(item.expression, ast.Star):
                    values.extend(row[position]
                                  for position in star_positions[id(item)])
                else:
                    values.append(evaluate(item.expression, env))
            rows.append(tuple(values))
        return columns, rows

    def _aggregate_kernels(self, select: ast.Select, frame: RowFrame,
                           aggregation: RowAggregation, columns: list[str]
                           ) -> tuple[list[str], list[tuple]]:
        """Fused grouping + accumulation + finalisation over compiled kernels."""
        key_fn = aggregation.key_fn
        inits = aggregation.inits
        updates = aggregation.updates
        groups: dict[tuple, tuple[list, tuple]] = {}
        for row in frame.rows:
            key = key_fn(row) if key_fn is not None else ()
            entry = groups.get(key)
            if entry is None:
                entry = groups[key] = ([init() for init in inits], row)
            states = entry[0]
            for state, update in zip(states, updates):
                update(state, row)

        rows: list[tuple] = []
        finals = aggregation.finals
        having_fn = aggregation.having_fn
        for states, first_row in groups.values():
            combined = tuple(final(state)
                             for final, state in zip(finals, states)) + first_row
            if having_fn is not None and not bool(having_fn(combined)):
                continue
            rows.append(tuple(finaliser(combined)
                              for finaliser in aggregation.finalisers))
        return columns, rows

    # -- FROM materialisation ----------------------------------------------------

    def _materialise(self, item: ast.TableExpression, outer: "_RowEnv | None") -> RowFrame:
        if isinstance(item, ast.TableRef):
            schema = self.database.catalog.table(item.name)
            columns = [
                ColumnInfo(binding=item.binding, name=column.name, type_name=column.type_name)
                for column in schema.columns
            ]
            return RowFrame(columns=columns, rows=list(self.database.rows(item.name)))
        if isinstance(item, ast.SubqueryRef):
            names, rows = self._execute_block(item.subquery, outer=outer)
            columns = [
                ColumnInfo(binding=item.alias, name=name, type_name="str")
                for name in names
            ]
            return RowFrame(columns=columns, rows=rows)
        if isinstance(item, ast.Join):
            return self._materialise_join(item, outer)
        raise PlanError(f"unsupported FROM item {type(item).__name__}")

    def _materialise_join(self, join: ast.Join, outer: "_RowEnv | None") -> RowFrame:
        left = self._materialise(join.left, outer)
        right = self._materialise(join.right, outer)
        columns = left.columns + right.columns
        combined = RowFrame(columns=columns, rows=[])

        condition = join.condition
        equi, residual = self._split_join_condition(condition, left, right)

        if join.kind in ("inner", "cross"):
            rows = self._hash_join_rows(left, right, equi, residual, combined, outer,
                                        keep_unmatched_left=False)
        elif join.kind == "left":
            rows = self._hash_join_rows(left, right, equi, residual, combined, outer,
                                        keep_unmatched_left=True)
        elif join.kind == "right":
            # express RIGHT as LEFT with the operands swapped, then reorder.
            swapped_columns = right.columns + left.columns
            swapped = RowFrame(columns=swapped_columns, rows=[])
            swapped_equi = [(r, l) for (l, r) in equi]
            swapped_rows = self._hash_join_rows(right, left, swapped_equi, residual, swapped,
                                                outer, keep_unmatched_left=True)
            width_right = len(right.columns)
            rows = [row[width_right:] + row[:width_right] for row in swapped_rows]
        else:
            raise PlanError(f"unsupported join kind '{join.kind}'")
        combined.rows = rows
        return combined

    def _split_join_condition(self, condition: ast.Expression | None,
                              left: RowFrame, right: RowFrame
                              ) -> tuple[list[tuple[ast.ColumnRef, ast.ColumnRef]],
                                         list[ast.Expression]]:
        """Separate hashable equi-conjuncts of an explicit JOIN condition."""
        equi: list[tuple[ast.ColumnRef, ast.ColumnRef]] = []
        residual: list[ast.Expression] = []
        for conjunct in ast.conjuncts(condition):
            if (isinstance(conjunct, ast.Comparison) and conjunct.operator == "="
                    and isinstance(conjunct.left, ast.ColumnRef)
                    and isinstance(conjunct.right, ast.ColumnRef)):
                left_ref, right_ref = conjunct.left, conjunct.right
                if left.position(left_ref) is not None and right.position(right_ref) is not None:
                    equi.append((left_ref, right_ref))
                    continue
                if left.position(right_ref) is not None and right.position(left_ref) is not None:
                    equi.append((right_ref, left_ref))
                    continue
            residual.append(conjunct)
        return equi, residual

    def _hash_join_rows(self, left: RowFrame, right: RowFrame,
                        equi: list[tuple[ast.ColumnRef, ast.ColumnRef]],
                        residual: list[ast.Expression], combined: RowFrame,
                        outer: "_RowEnv | None", keep_unmatched_left: bool) -> list[tuple]:
        """Join two frames with an optional hash phase plus residual filtering."""
        null_padding = (None,) * len(right.columns)
        rows: list[tuple] = []

        if equi and self.hash_joins:
            right_positions = [right.position(ref) for _, ref in equi]
            left_positions = [left.position(ref) for ref, _ in equi]
            table: dict[tuple, list[tuple]] = {}
            for row in right.rows:
                key = tuple(row[position] for position in right_positions)
                table.setdefault(key, []).append(row)
            for left_row in left.rows:
                key = tuple(left_row[position] for position in left_positions)
                matched = False
                for right_row in table.get(key, ()):
                    candidate = left_row + right_row
                    if self._passes(residual, combined, candidate, outer):
                        rows.append(candidate)
                        matched = True
                if keep_unmatched_left and not matched:
                    rows.append(left_row + null_padding)
            return rows

        for left_row in left.rows:
            matched = False
            for right_row in right.rows:
                candidate = left_row + right_row
                condition = residual + [
                    ast.Comparison("=", left_ref, right_ref) for left_ref, right_ref in equi
                ]
                if self._passes(condition, combined, candidate, outer):
                    rows.append(candidate)
                    matched = True
            if keep_unmatched_left and not matched:
                rows.append(left_row + null_padding)
        return rows

    def _passes(self, predicates: list[ast.Expression], frame: RowFrame, row: tuple,
                outer: "_RowEnv | None") -> bool:
        if not predicates:
            return True
        env = _RowEnv(self, frame, row, outer)
        return all(bool(evaluate(predicate, env)) for predicate in predicates)

    # -- filtering / joining ---------------------------------------------------------

    def _apply_pushdown(self, frame: RowFrame, pushdown: dict[str, list[ast.Expression]],
                        outer: "_RowEnv | None") -> RowFrame:
        bindings = {column.binding.lower() for column in frame.columns}
        predicates: list[ast.Expression] = []
        for binding in bindings:
            predicates.extend(pushdown.get(binding, []))
        if not predicates:
            return frame
        kept = [row for row in frame.rows if self._passes(predicates, frame, row, outer)]
        return RowFrame(columns=frame.columns, rows=kept)

    def _join_frames(self, frames: list[RowFrame], join_order: list[JoinStep],
                     outer: "_RowEnv | None") -> RowFrame:
        if not frames:
            return RowFrame(columns=[], rows=[()])
        current = frames[join_order[0].frame_index]
        for step in join_order[1:]:
            current = self._pairwise_join(current, frames[step.frame_index],
                                          list(step.connecting), outer)
        return current

    def _pairwise_join(self, left: RowFrame, right: RowFrame,
                       connecting: list[tuple[ast.ColumnRef, ast.ColumnRef, ast.Expression]],
                       outer: "_RowEnv | None") -> RowFrame:
        columns = left.columns + right.columns
        combined = RowFrame(columns=columns, rows=[])
        if connecting and self.hash_joins:
            left_positions = []
            right_positions = []
            for left_ref, right_ref, _ in connecting:
                if left.position(left_ref) is not None:
                    left_positions.append(left.position(left_ref))
                    right_positions.append(right.position(right_ref))
                else:
                    left_positions.append(left.position(right_ref))
                    right_positions.append(right.position(left_ref))
            table: dict[tuple, list[tuple]] = {}
            for row in right.rows:
                key = tuple(row[position] for position in right_positions)
                table.setdefault(key, []).append(row)
            rows = []
            for left_row in left.rows:
                key = tuple(left_row[position] for position in left_positions)
                for right_row in table.get(key, ()):
                    rows.append(left_row + right_row)
            combined.rows = rows
            return combined
        # cross join (with any connecting predicates applied per pair)
        predicates = [conjunct for _, _, conjunct in connecting]
        rows = []
        for left_row in left.rows:
            for right_row in right.rows:
                candidate = left_row + right_row
                if self._passes(predicates, combined, candidate, outer):
                    rows.append(candidate)
        combined.rows = rows
        return combined

    def _filter(self, frame: RowFrame, predicates: list[ast.Expression],
                outer: "_RowEnv | None") -> RowFrame:
        if not predicates:
            return frame
        kept = [row for row in frame.rows if self._passes(predicates, frame, row, outer)]
        return RowFrame(columns=frame.columns, rows=kept)

    # -- projection / aggregation ----------------------------------------------------

    def _project(self, select: ast.Select, frame: RowFrame, outer: "_RowEnv | None",
                 columns: list[str]) -> tuple[list[str], list[tuple]]:
        rows: list[tuple] = []
        star_positions = self._star_positions(select, frame)
        for row in frame.rows:
            env = _RowEnv(self, frame, row, outer)
            values: list[Any] = []
            for item in select.items:
                if isinstance(item.expression, ast.Star):
                    values.extend(row[position] for position in star_positions[id(item)])
                else:
                    values.append(evaluate(item.expression, env))
            rows.append(tuple(values))
        return columns, rows

    def _star_positions(self, select: ast.Select, frame: RowFrame) -> dict[int, list[int]]:
        positions: dict[int, list[int]] = {}
        for item in select.items:
            if isinstance(item.expression, ast.Star):
                star = item.expression
                selected = [
                    index for index, column in enumerate(frame.columns)
                    if star.table is None or column.binding.lower() == star.table.lower()
                ]
                positions[id(item)] = selected
        return positions

    def _aggregate(self, select: ast.Select, frame: RowFrame, outer: "_RowEnv | None",
                   columns: list[str]) -> tuple[list[str], list[tuple]]:
        groups: dict[tuple, list[_RowEnv]] = {}
        if select.group_by:
            for row in frame.rows:
                env = _RowEnv(self, frame, row, outer)
                key = tuple(evaluate(expression, env) for expression in select.group_by)
                groups.setdefault(key, []).append(env)
        else:
            groups[()] = [_RowEnv(self, frame, row, outer) for row in frame.rows]

        rows: list[tuple] = []
        for envs in groups.values():
            if select.having is not None:
                if not bool(evaluate_aggregate(select.having, envs)):
                    continue
            rows.append(tuple(
                evaluate_aggregate(item.expression, envs) for item in select.items
            ))
        return columns, rows

    # -- ordering / limits -----------------------------------------------------------------

    def _order(self, select: ast.Select, columns: list[str], rows: list[tuple],
               frame: RowFrame) -> list[tuple]:
        if not select.order_by:
            return rows
        lowered = [name.lower() for name in columns]
        ordered = list(rows)
        for item in reversed(select.order_by):
            key_function = self._order_key(item, lowered, select, frame)
            ordered.sort(key=key_function, reverse=item.descending)
        return ordered

    def _order_key(self, item: ast.OrderItem, lowered_columns: list[str],
                   select: ast.Select, frame: RowFrame):
        expression = item.expression
        position: int | None = None
        if isinstance(expression, ast.ColumnRef) and expression.table is None:
            name = expression.name.lower()
            if name in lowered_columns:
                position = lowered_columns.index(name)
        if position is None and isinstance(expression, ast.Literal) and isinstance(
                expression.value, int):
            position = expression.value - 1
        if position is None:
            # fall back to matching the rendered expression against select items
            rendered = to_sql(expression)
            for index, select_item in enumerate(select.items):
                if to_sql(select_item.expression) == rendered:
                    position = index
                    break
        if position is None:
            raise PlanError(
                f"ORDER BY expression '{to_sql(expression)}' is not part of the select list"
            )

        def key(row: tuple):
            value = row[position]
            return (value is None, value)

        return key

    def _limit(self, select: ast.Select, rows: list[tuple]) -> list[tuple]:
        start = select.offset or 0
        if select.limit is None:
            return rows[start:] if start else rows
        return rows[start:start + select.limit]

    # -- helpers ----------------------------------------------------------------------------

    def _is_correlated(self, select: ast.Select, outer: "_RowEnv | None") -> bool:
        """Heuristic correlation test: any column not resolvable locally.

        The walk is memoised by ``id(select)`` -- the driver re-runs the same
        subquery once per outer row, and the answer never changes.
        """
        if outer is None:
            return False
        cached = self._correlated.get(id(select))
        if cached is not None:
            return cached
        local_bindings: list[ColumnInfo] = []
        for item in select.from_items:
            local_bindings.extend(self._item_columns(item))
        local = Scope(columns=local_bindings)
        correlated = any(
            isinstance(node, ast.ColumnRef) and local.resolve_local(node) is None
            for node in select.walk()
        )
        self._correlated[id(select)] = correlated
        return correlated

    def _item_columns(self, item: ast.TableExpression) -> list[ColumnInfo]:
        if isinstance(item, ast.TableRef):
            try:
                schema = self.database.catalog.table(item.name)
            except Exception:
                return []
            return [
                ColumnInfo(binding=item.binding, name=column.name, type_name=column.type_name)
                for column in schema.columns
            ]
        if isinstance(item, ast.SubqueryRef):
            scope = Scope(columns=[])
            names = output_columns(item.subquery, scope) if not any(
                isinstance(entry.expression, ast.Star) for entry in item.subquery.items
            ) else []
            return [ColumnInfo(binding=item.alias, name=name, type_name="str") for name in names]
        if isinstance(item, ast.Join):
            return self._item_columns(item.left) + self._item_columns(item.right)
        return []
