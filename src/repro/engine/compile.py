"""Compile-once expression kernels for both physical backends.

The recursive interpreters (:mod:`repro.engine.expression` for the row engine,
:class:`repro.engine.vector.VectorEvaluator` for the column engine) re-dispatch
on the AST node type for every row / every operator application.  On the
driver's plan-once/execute-many loop that dispatch dominates the measured
time, drowning the execution-strategy contrast the paper cares about.

This module lowers each planned query block's expressions *once* into plain
Python closures:

* **Row kernels** -- ``fn(row) -> value`` closures with column references
  resolved to fixed tuple positions at compile time.  Predicates, projections,
  group keys and aggregate accumulators are all fused closures; only
  subquery-bearing expressions stay on the interpreter.
* **Column kernels** -- ``fn(ctx) -> ndarray`` closures over a
  :class:`ColumnContext` that evaluates leaf columns through a **selection
  vector**: an ``int64`` index of the surviving rows.  Scans and residual
  predicates refine the selection instead of materialising a masked
  :class:`~repro.engine.vector.ColFrame` after every predicate; gathered
  columns are memoised per evaluation so repeated references pay one gather.

Kernels mirror the interpreter semantics exactly (NULL propagation, date
coercion, LIKE, three-valued predicates); anything they cannot express raises
:class:`CompileFallback` at compile time and the executors keep using the
interpreter for that expression.  Compiled blocks are cached on the
:class:`~repro.engine.plan.QueryPlan` (see :meth:`QueryPlan.kernels`), so the
engine's LRU plan cache amortises compilation exactly like planning.
"""

from __future__ import annotations

import datetime
import operator as _operator
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.engine.expression import (
    compare_values,
    in_members,
    like_predicate,
    scalar_functions,
)
from repro.engine.mask import (
    Nullable,
    as_objects,
    is_array,
    kleene_and,
    kleene_not,
    kleene_or,
    truth_mask,
)
from repro.engine.planner import ColumnInfo
from repro.engine.types import add_interval, date_to_ordinal, ordinal_to_date, to_date
from repro.engine.vector import (
    abs_values,
    arith_arrays,
    case_branch_values,
    cast_array,
    collapse_case_result,
    compare_arrays,
    concat_values,
    extract_date_field,
    in_list_mask,
    isnull_mask,
    length_values,
    like_mask,
    map_string_values,
    negate_values,
    round_values,
    widen_guarded,
)
from repro.errors import ExecutionError
from repro.sqlparser import ast


class CompileFallback(Exception):
    """Raised when an expression cannot be lowered to a compiled kernel."""


#: comparison operators shared by the row and column compilers.
_CMP = {
    "=": _operator.eq,
    "<>": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}

#: arithmetic operators the column kernels lower through
#: :func:`repro.engine.vector.arith_arrays` (NULL-propagating).
_ARITH_OPS = ("+", "-", "*", "/", "%")


class Layout:
    """Compile-time column layout mirroring a frame's position lookup.

    ``ambiguous`` selects what an unqualified name matching several columns
    does: ``"first"`` mirrors the row frames (first binding wins), ``"raise"``
    mirrors the column engine's strict resolution.
    """

    __slots__ = ("columns", "ambiguous", "_index", "_by_name")

    def __init__(self, columns: list[ColumnInfo], ambiguous: str = "first"):
        self.columns = list(columns)
        self.ambiguous = ambiguous
        self._index: dict[tuple[str, str], int] = {}
        self._by_name: dict[str, list[int]] = {}
        for position, column in enumerate(self.columns):
            self._index[(column.binding.lower(), column.name.lower())] = position
            self._by_name.setdefault(column.name.lower(), []).append(position)

    def position(self, ref: ast.ColumnRef) -> int | None:
        if ref.table:
            return self._index.get((ref.table.lower(), ref.name.lower()))
        positions = self._by_name.get(ref.name.lower())
        if not positions:
            return None
        if len(positions) > 1 and self.ambiguous == "raise":
            raise ExecutionError(
                f"ambiguous column '{ref.name}' (qualify it with a table alias)")
        return positions[0]

    def type_of(self, position: int) -> str:
        return self.columns[position].type_name


class _OffsetLayout:
    """A layout whose positions are shifted (used by aggregate finalisers)."""

    __slots__ = ("base", "offset")

    def __init__(self, base: Layout, offset: int):
        self.base = base
        self.offset = offset

    def position(self, ref: ast.ColumnRef) -> int | None:
        position = self.base.position(ref)
        return None if position is None else position + self.offset

    def type_of(self, position: int) -> str:
        return self.base.type_of(position - self.offset)


# ---------------------------------------------------------------------------
# shared compile-time analysis
# ---------------------------------------------------------------------------


def _as_fn(pair: tuple[bool, Any]) -> Callable:
    const, value = pair
    if const:
        return lambda _arg, _value=value: _value
    return value


def _maybe_fold(fn: Callable, *pairs: tuple[bool, Any]) -> tuple[bool, Any]:
    """Constant-fold ``fn`` when every input is constant.

    Folding calls the closure with no context; a closure that needs runtime
    state (a row, a column context) or raises is kept as a runtime kernel so
    errors surface with interpreter timing.
    """
    if all(const for const, _ in pairs):
        try:
            return True, fn(None)
        except CompileFallback:
            raise
        except Exception:
            return False, fn
    return False, fn


def _never_date(node: ast.Expression, layout) -> bool:
    """True when ``node`` can never evaluate to a ``datetime.date`` instance."""
    if isinstance(node, (ast.Literal, ast.IntervalLiteral)):
        return True
    if isinstance(node, ast.DateLiteral):
        return False
    if isinstance(node, ast.ColumnRef):
        position = layout.position(node)
        return position is not None and layout.type_of(position) in ("int", "float", "bool")
    if isinstance(node, ast.UnaryOp):
        return _never_date(node.operand, layout)
    if isinstance(node, ast.BinaryOp):
        if isinstance(node.left, ast.IntervalLiteral) or isinstance(node.right, ast.IntervalLiteral):
            return False
        return _never_date(node.left, layout) and _never_date(node.right, layout)
    if isinstance(node, ast.Cast):
        return not node.type_name.lower().startswith("date")
    if isinstance(node, (ast.Extract, ast.Substring, ast.Comparison, ast.Between,
                         ast.IsNull, ast.Like, ast.InList, ast.BoolOp)):
        return True
    return False


def _always_date(node: ast.Expression, layout) -> bool:
    """True when ``node`` always evaluates to a date (or NULL)."""
    if isinstance(node, ast.DateLiteral):
        return True
    if isinstance(node, ast.ColumnRef):
        position = layout.position(node)
        return position is not None and layout.type_of(position) == "date"
    if (isinstance(node, ast.BinaryOp) and node.operator in ("+", "-")
            and isinstance(node.right, ast.IntervalLiteral)):
        return _always_date(node.left, layout)
    if isinstance(node, ast.Cast):
        return node.type_name.lower().startswith("date")
    return False


def _cast_converter(type_name: str) -> Callable[[Any], Any]:
    target = type_name.lower()
    if target.startswith(("int", "bigint", "smallint")):
        return int
    if target.startswith(("float", "double", "real", "decimal", "numeric")):
        return float
    if target.startswith(("char", "varchar", "text", "string")):
        return str
    if target.startswith("date"):
        return to_date
    raise CompileFallback(f"unsupported CAST target type '{type_name}'")


# ---------------------------------------------------------------------------
# row kernels
# ---------------------------------------------------------------------------


def compile_row_kernel(expression: ast.Expression, layout,
                       agg_slots: dict[int, int] | None = None
                       ) -> Callable[[tuple], Any]:
    """Lower ``expression`` to a ``fn(row) -> value`` closure.

    ``agg_slots`` maps ``id(FunctionCall)`` of aggregate calls to positions in
    the row (used by aggregate finalisers, where the "row" is the tuple of
    aggregate results followed by the group's first frame row).  Raises
    :class:`CompileFallback` for subqueries and unresolvable columns.
    """
    pair = _row(expression, layout, agg_slots or {})
    const, value = pair
    if const:
        return lambda _row, _value=value: _value
    return value


def _row(node: ast.Expression, layout, slots: dict[int, int]) -> tuple[bool, Any]:
    if id(node) in slots:
        slot = slots[id(node)]
        return False, lambda row, _s=slot: row[_s]
    if isinstance(node, ast.Literal):
        return True, node.value
    if isinstance(node, ast.DateLiteral):
        return True, to_date(node.value)
    if isinstance(node, ast.IntervalLiteral):
        return True, node
    if isinstance(node, ast.ColumnRef):
        position = layout.position(node)
        if position is None:
            raise CompileFallback(f"column '{node.qualified}' is not local")
        return False, lambda row, _p=position: row[_p]
    if isinstance(node, ast.Star):
        return True, 1
    if isinstance(node, ast.UnaryOp):
        return _row_unary(node, layout, slots)
    if isinstance(node, ast.BinaryOp):
        return _row_binary(node, layout, slots)
    if isinstance(node, ast.BoolOp):
        return _row_bool(node, layout, slots)
    if isinstance(node, ast.Comparison):
        return _row_comparison(node, layout, slots)
    if isinstance(node, ast.IsNull):
        operand = _as_fn(_row(node.operand, layout, slots))
        negated = node.negated
        return False, lambda row: (operand(row) is None) != negated
    if isinstance(node, ast.Between):
        return _row_between(node, layout, slots)
    if isinstance(node, ast.Like):
        return _row_like(node, layout, slots)
    if isinstance(node, ast.InList):
        return _row_in_list(node, layout, slots)
    if isinstance(node, ast.FunctionCall):
        return _row_function(node, layout, slots)
    if isinstance(node, ast.Cast):
        converter = _cast_converter(node.type_name)
        operand_pair = _row(node.operand, layout, slots)
        operand = _as_fn(operand_pair)

        def fn(row):
            value = operand(row)
            return None if value is None else converter(value)
        return _maybe_fold(fn, operand_pair)
    if isinstance(node, ast.Extract):
        if node.field_name not in ("year", "month", "day"):
            raise CompileFallback(f"unsupported EXTRACT field '{node.field_name}'")
        operand_pair = _row(node.operand, layout, slots)
        operand = _as_fn(operand_pair)
        field_name = node.field_name

        def fn(row):
            value = operand(row)
            return None if value is None else getattr(to_date(value), field_name)
        return _maybe_fold(fn, operand_pair)
    if isinstance(node, ast.Substring):
        return _row_substring(node, layout, slots)
    if isinstance(node, ast.CaseWhen):
        branches = [(_as_fn(_row(condition, layout, slots)),
                     _as_fn(_row(result, layout, slots)))
                    for condition, result in node.branches]
        default = _as_fn(_row(node.default, layout, slots)) \
            if node.default is not None else None

        def fn(row):
            for condition, result in branches:
                if condition(row):
                    return result(row)
            return default(row) if default is not None else None
        return False, fn
    raise CompileFallback(f"cannot compile expression node {type(node).__name__}")


def _row_unary(node: ast.UnaryOp, layout, slots) -> tuple[bool, Any]:
    operand_pair = _row(node.operand, layout, slots)
    operand = _as_fn(operand_pair)
    if node.operator == "not":
        def fn(row):
            value = operand(row)
            return None if value is None else (not value)
    elif node.operator == "-":
        def fn(row):
            value = operand(row)
            return None if value is None else -value
    else:
        def fn(row):
            value = operand(row)
            return None if value is None else +value
    return _maybe_fold(fn, operand_pair)


def _row_binary(node: ast.BinaryOp, layout, slots) -> tuple[bool, Any]:
    left_pair = _row(node.left, layout, slots)
    right_pair = _row(node.right, layout, slots)
    left, right = _as_fn(left_pair), _as_fn(right_pair)
    op = node.operator

    if op == "||":
        def fn(row):
            lhs, rhs = left(row), right(row)
            if lhs is None or rhs is None:
                return None
            return str(lhs) + str(rhs)
        return _maybe_fold(fn, left_pair, right_pair)

    if right_pair[0] and isinstance(right_pair[1], ast.IntervalLiteral):
        interval = right_pair[1]
        amount = interval.value if op == "+" else -interval.value
        unit = interval.unit

        def fn(row):
            lhs = left(row)
            if lhs is None:
                return None
            if not isinstance(lhs, datetime.date):
                raise ExecutionError("interval arithmetic requires a date operand")
            return add_interval(lhs, amount, unit)
        return _maybe_fold(fn, left_pair)

    if left_pair[0] and isinstance(left_pair[1], ast.IntervalLiteral):
        def fn(row):
            raise ExecutionError("an interval may only appear on the right-hand side")
        return False, fn

    _, fn = _row_binary_from(node, left, right)
    return _maybe_fold(fn, left_pair, right_pair)


def _row_bool(node: ast.BoolOp, layout, slots) -> tuple[bool, Any]:
    pairs = [_row(operand, layout, slots) for operand in node.operands]
    fns = tuple(_as_fn(pair) for pair in pairs)
    # Kleene connectives: FALSE decides AND and TRUE decides OR even past
    # UNKNOWN operands; an undecided combination with an UNKNOWN is UNKNOWN.
    if node.operator == "and":
        def fn(row):
            unknown = False
            for operand in fns:
                value = operand(row)
                if value is None:
                    unknown = True
                elif not value:
                    return False
            return None if unknown else True
    else:
        def fn(row):
            unknown = False
            for operand in fns:
                value = operand(row)
                if value is None:
                    unknown = True
                elif value:
                    return True
            return None if unknown else False
    return _maybe_fold(fn, *pairs)


def _row_comparison(node: ast.Comparison, layout, slots) -> tuple[bool, Any]:
    if node.quantifier is not None:
        raise CompileFallback("quantified comparisons require a subquery")
    compare = _CMP.get(node.operator)
    if compare is None:
        raise CompileFallback(f"unsupported comparison operator '{node.operator}'")
    left_pair = _row(node.left, layout, slots)
    right_pair = _row(node.right, layout, slots)
    left, right = _as_fn(left_pair), _as_fn(right_pair)

    fast = ((_never_date(node.left, layout) and _never_date(node.right, layout))
            or (_always_date(node.left, layout) and _always_date(node.right, layout)))
    if fast:
        def fn(row):
            lhs, rhs = left(row), right(row)
            return None if lhs is None or rhs is None else compare(lhs, rhs)
    else:
        op = node.operator

        def fn(row):
            return compare_values(op, left(row), right(row))
    return _maybe_fold(fn, left_pair, right_pair)


def _row_between(node: ast.Between, layout, slots) -> tuple[bool, Any]:
    operand_pair = _row(node.operand, layout, slots)
    low_pair = _row(node.low, layout, slots)
    high_pair = _row(node.high, layout, slots)
    operand, low, high = _as_fn(operand_pair), _as_fn(low_pair), _as_fn(high_pair)
    negated = node.negated
    operands = (node.operand, node.low, node.high)
    fast = (all(_never_date(part, layout) for part in operands)
            or all(_always_date(part, layout) for part in operands))
    # BETWEEN decomposes into its Kleene conjunction: a NULL operand or
    # bound only yields UNKNOWN while the range test stays undecided (a
    # FALSE conjunct still decides, e.g. 6 NOT BETWEEN NULL AND 5 is TRUE).
    if fast:
        def fn(row):
            value = operand(row)
            lo, hi = low(row), high(row)
            above = None if value is None or lo is None else (lo <= value)
            below = None if value is None or hi is None else (value <= hi)
            if (above is not None and not above) or (below is not None and not below):
                inside: Any = False
            elif above is None or below is None:
                inside = None
            else:
                inside = True
            if not negated:
                return inside
            return None if inside is None else (not inside)
    else:
        def fn(row):
            value = operand(row)
            lo, hi = low(row), high(row)
            above = compare_values("<=", lo, value)
            below = compare_values("<=", value, hi)
            if (above is not None and not above) or (below is not None and not below):
                inside: Any = False
            elif above is None or below is None:
                inside = None
            else:
                inside = True
            if not negated:
                return inside
            return None if inside is None else (not inside)
    return _maybe_fold(fn, operand_pair, low_pair, high_pair)


def _row_like(node: ast.Like, layout, slots) -> tuple[bool, Any]:
    operand_pair = _row(node.operand, layout, slots)
    pattern_pair = _row(node.pattern, layout, slots)
    operand = _as_fn(operand_pair)
    negated = node.negated
    if pattern_pair[0]:
        if pattern_pair[1] is None:
            return True, None  # NULL pattern: UNKNOWN everywhere
        predicate = like_predicate(str(pattern_pair[1]))

        def fn(row):
            value = operand(row)
            if value is None:
                return None  # LIKE over NULL is UNKNOWN, negated or not
            matched = predicate(value)
            return (not matched) if negated else matched
    else:
        pattern = _as_fn(pattern_pair)

        def fn(row):
            value = operand(row)
            pattern_value = pattern(row)
            if value is None or pattern_value is None:
                return None
            matched = like_predicate(str(pattern_value))(value)
            return (not matched) if negated else matched
    return False, fn


def _row_in_list(node: ast.InList, layout, slots) -> tuple[bool, Any]:
    operand_pair = _row(node.operand, layout, slots)
    operand = _as_fn(operand_pair)
    item_pairs = [_row(item, layout, slots) for item in node.items]
    negated = node.negated
    if all(const for const, _ in item_pairs):
        try:
            members = frozenset(value for _, value in item_pairs)
        except TypeError:
            members = None
        if members is not None:
            def fn(row):
                value = operand(row)
                if value is None:
                    return None
                return in_members(value, members, negated)
            return _maybe_fold(fn, operand_pair)
    item_fns = tuple(_as_fn(pair) for pair in item_pairs)

    def fn(row):
        value = operand(row)
        if value is None:
            return None
        return in_members(value, {item(row) for item in item_fns}, negated)
    return False, fn


def _row_function(node: ast.FunctionCall, layout, slots) -> tuple[bool, Any]:
    name = node.name.lower()
    if node.is_aggregate:
        raise CompileFallback(
            f"aggregate function '{name}' used outside an aggregation context")
    handler = scalar_functions.get(name)
    if handler is None:
        raise CompileFallback(f"unknown function '{name}'")
    pairs = [_row(argument, layout, slots) for argument in node.arguments]
    fns = tuple(_as_fn(pair) for pair in pairs)
    if name == "coalesce":
        def fn(row):
            return handler(*[argument(row) for argument in fns])
    else:
        def fn(row):
            arguments = [argument(row) for argument in fns]
            if any(argument is None for argument in arguments):
                return None
            return handler(*arguments)
    return _maybe_fold(fn, *pairs)


def _row_substring(node: ast.Substring, layout, slots) -> tuple[bool, Any]:
    operand_pair = _row(node.operand, layout, slots)
    start_pair = _row(node.start, layout, slots)
    operand, start = _as_fn(operand_pair), _as_fn(start_pair)
    if node.length is not None:
        length_pair = _row(node.length, layout, slots)
        length = _as_fn(length_pair)

        def fn(row):
            value = operand(row)
            if value is None:
                return None
            begin = max(int(start(row)) - 1, 0)
            return str(value)[begin:begin + int(length(row))]
        return _maybe_fold(fn, operand_pair, start_pair, length_pair)

    def fn(row):
        value = operand(row)
        if value is None:
            return None
        return str(value)[max(int(start(row)) - 1, 0):]
    return _maybe_fold(fn, operand_pair, start_pair)


# ---------------------------------------------------------------------------
# row block kernels (predicates / projection / aggregation)
# ---------------------------------------------------------------------------


@dataclass
class RowPredicates:
    """A conjunction split into one fused compiled closure + interpreter rest."""

    fused: Callable[[tuple], bool] | None
    interpreted: list[ast.Expression]


def compile_row_predicates(predicates: list[ast.Expression], layout) -> RowPredicates:
    compiled: list[Callable] = []
    interpreted: list[ast.Expression] = []
    for predicate in predicates:
        try:
            compiled.append(compile_row_kernel(predicate, layout))
        except CompileFallback:
            interpreted.append(predicate)
    fused: Callable[[tuple], bool] | None = None
    if compiled:
        if len(compiled) == 1:
            kernel = compiled[0]

            def fused(row, _kernel=kernel):
                return bool(_kernel(row))
        else:
            kernels = tuple(compiled)

            def fused(row, _kernels=kernels):
                for kernel in _kernels:
                    if not kernel(row):
                        return False
                return True
    return RowPredicates(fused=fused, interpreted=interpreted)


@dataclass
class RowAggregation:
    """Fused group-by/aggregate kernels for one block.

    ``finalisers`` evaluate each select item over the *combined* tuple
    ``(agg results) + (first row of the group)``; ``having_fn`` does the same
    for the HAVING clause.
    """

    key_fn: Callable[[tuple], tuple] | None
    inits: list[Callable[[], Any]]
    updates: list[Callable[[Any, tuple], None]]
    finals: list[Callable[[Any], Any]]
    finalisers: list[Callable[[tuple], Any]]
    having_fn: Callable[[tuple], Any] | None


def _accumulator(call: ast.FunctionCall, layout
                 ) -> tuple[Callable[[], Any], Callable[[Any, tuple], None],
                            Callable[[Any], Any]]:
    """Build (init, update, final) for one aggregate call."""
    name = call.name.lower()
    if name == "count" and (not call.arguments or isinstance(call.arguments[0], ast.Star)):
        def update(state, row):
            state[0] += 1
        return (lambda: [0]), update, (lambda state: state[0])

    if not call.arguments:
        raise CompileFallback(f"aggregate '{name}' requires an argument")
    argument = compile_row_kernel(call.arguments[0], layout)

    if call.distinct:
        def update(state, row, _argument=argument):
            value = _argument(row)
            if value is not None:
                state.add(value)
        init = set
    else:
        def update(state, row, _argument=argument):
            value = _argument(row)
            if value is not None:
                state.append(value)
        init = list

    if name == "count":
        final = len
    elif name == "sum":
        def final(state):
            return sum(state) if state else None
    elif name == "avg":
        def final(state):
            return sum(state) / len(state) if state else None
    elif name == "min":
        def final(state):
            return min(state) if state else None
    elif name == "max":
        def final(state):
            return max(state) if state else None
    else:
        raise CompileFallback(f"unknown aggregate function '{name}'")
    return init, update, final


def _compile_finaliser(node: ast.Expression, combined_layout, slots: dict[int, int],
                       layout) -> Callable[[tuple], Any]:
    """Compile an aggregate-bearing expression over the combined group tuple.

    Mirrors :func:`repro.engine.expression.evaluate_aggregate`: only the node
    shapes the interpreter supports around aggregate calls are accepted, so
    compiled and interpreted blocks reject exactly the same queries.
    """
    if id(node) in slots:
        return compile_row_kernel(node, combined_layout, slots)
    if not ast.has_local_aggregate(node):
        # whole subtree is evaluated on the group's first row
        return compile_row_kernel(node, combined_layout, slots)
    if isinstance(node, ast.BinaryOp):
        return _as_fn(_row_binary_from(
            node, _compile_finaliser(node.left, combined_layout, slots, layout),
            _compile_finaliser(node.right, combined_layout, slots, layout)))
    if isinstance(node, ast.UnaryOp):
        operand = _compile_finaliser(node.operand, combined_layout, slots, layout)
        if node.operator == "-":
            def fn(combined):
                value = operand(combined)
                return None if value is None else -value
            return fn
        if node.operator == "not":
            def fn(combined):
                value = operand(combined)
                return None if value is None else (not value)
            return fn
        return operand
    if isinstance(node, ast.Comparison):
        left = _compile_finaliser(node.left, combined_layout, slots, layout)
        right = _compile_finaliser(node.right, combined_layout, slots, layout)
        op = node.operator

        def fn(combined):
            return compare_values(op, left(combined), right(combined))
        return fn
    if isinstance(node, ast.BoolOp):
        operands = [_compile_finaliser(operand, combined_layout, slots, layout)
                    for operand in node.operands]
        if node.operator == "and":
            def fn(combined):
                unknown = False
                for operand in operands:
                    value = operand(combined)
                    if value is None:
                        unknown = True
                    elif not value:
                        return False
                return None if unknown else True
        else:
            def fn(combined):
                unknown = False
                for operand in operands:
                    value = operand(combined)
                    if value is None:
                        unknown = True
                    elif value:
                        return True
                return None if unknown else False
        return fn
    if isinstance(node, ast.CaseWhen):
        branches = [(_compile_finaliser(condition, combined_layout, slots, layout),
                     _compile_finaliser(result, combined_layout, slots, layout))
                    for condition, result in node.branches]
        default = _compile_finaliser(node.default, combined_layout, slots, layout) \
            if node.default is not None else None

        def fn(combined):
            for condition, result in branches:
                if condition(combined):
                    return result(combined)
            return default(combined) if default is not None else None
        return fn
    if isinstance(node, ast.Cast):
        inner = _compile_finaliser(node.operand, combined_layout, slots, layout)
        converter = _cast_converter(node.type_name)

        def fn(combined):
            value = inner(combined)
            return None if value is None else converter(value)
        return fn
    raise CompileFallback(
        f"cannot compile aggregate expression node {type(node).__name__}")


def _row_binary_from(node: ast.BinaryOp, left: Callable, right: Callable
                     ) -> tuple[bool, Any]:
    """Binary combinator over already-compiled operand closures.

    The single copy of the row engine's arithmetic semantics: both plain row
    kernels (:func:`_row_binary`) and aggregate finalisers build on it.
    """
    op = node.operator
    if op == "+":
        def fn(combined):
            lhs, rhs = left(combined), right(combined)
            return None if lhs is None or rhs is None else lhs + rhs
    elif op == "-":
        def fn(combined):
            lhs, rhs = left(combined), right(combined)
            if lhs is None or rhs is None:
                return None
            if isinstance(lhs, datetime.date) and isinstance(rhs, datetime.date):
                return (lhs - rhs).days
            return lhs - rhs
    elif op == "*":
        def fn(combined):
            lhs, rhs = left(combined), right(combined)
            return None if lhs is None or rhs is None else lhs * rhs
    elif op == "/":
        def fn(combined):
            lhs, rhs = left(combined), right(combined)
            if lhs is None or rhs is None:
                return None
            if rhs == 0:
                raise ExecutionError("division by zero")
            return lhs / rhs
    elif op == "%":
        def fn(combined):
            lhs, rhs = left(combined), right(combined)
            return None if lhs is None or rhs is None else lhs % rhs
    elif op == "||":
        def fn(combined):
            lhs, rhs = left(combined), right(combined)
            return None if lhs is None or rhs is None else str(lhs) + str(rhs)
    else:
        raise CompileFallback(f"unsupported binary operator '{op}'")
    return False, fn


def _collect_aggregate_calls(select: ast.Select) -> list[ast.FunctionCall]:
    expressions = [item.expression for item in select.items]
    if select.having is not None:
        expressions.append(select.having)
    calls: list[ast.FunctionCall] = []
    for expression in expressions:
        for node in ast.walk_local(expression):
            if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                calls.append(node)
    return calls


def compile_row_aggregation(select: ast.Select, layout) -> RowAggregation:
    """Fuse grouping + accumulation + finalisation into closures.

    Raises :class:`CompileFallback` when any piece needs the interpreter; the
    executor then keeps the whole aggregation on the interpreted path.
    """
    for item in select.items:
        if any(isinstance(node, ast.Select) for node in item.expression.walk()):
            raise CompileFallback("subquery in an aggregated select item")
    if select.having is not None and any(
            isinstance(node, ast.Select) for node in select.having.walk()):
        raise CompileFallback("subquery in HAVING")

    calls = _collect_aggregate_calls(select)
    slots = {id(call): index for index, call in enumerate(calls)}
    combined_layout = _OffsetLayout(layout, len(calls))

    inits, updates, finals = [], [], []
    for call in calls:
        init, update, final = _accumulator(call, layout)
        inits.append(init)
        updates.append(update)
        finals.append(final)

    finalisers = [
        _compile_finaliser(item.expression, combined_layout, slots, layout)
        for item in select.items
    ]
    having_fn = _compile_finaliser(select.having, combined_layout, slots, layout) \
        if select.having is not None else None

    key_fn: Callable[[tuple], tuple] | None = None
    if select.group_by:
        key_kernels = tuple(compile_row_kernel(expression, layout)
                            for expression in select.group_by)
        if len(key_kernels) == 1:
            key0 = key_kernels[0]

            def key_fn(row, _key=key0):
                return (_key(row),)
        else:
            def key_fn(row, _keys=key_kernels):
                return tuple(key(row) for key in _keys)

    return RowAggregation(key_fn=key_fn, inits=inits, updates=updates, finals=finals,
                          finalisers=finalisers, having_fn=having_fn)


@dataclass
class RowBlockKernels:
    """Every compiled kernel of one planned block (row engine)."""

    #: per FROM item: fused push-down predicates (None = no predicates).
    pushdown: list[RowPredicates | None]
    #: the block's residual conjunction.
    residual: RowPredicates | None
    #: per select item: compiled projection kernel (None = star / interpreter);
    #: the whole list is None for aggregated blocks.
    projection: list[Callable | None] | None
    #: fused aggregation kernels (None when interpretation is required).
    aggregation: RowAggregation | None


def compile_row_block(block) -> RowBlockKernels:
    """Compile one :class:`~repro.engine.plan.BlockPlan` for the row engine."""
    select = block.select
    item_layouts = [Layout(columns) for columns in block.item_columns]
    joined_columns = [
        column
        for step in block.join_order
        for column in block.item_columns[step.frame_index]
    ]
    joined_layout = Layout(joined_columns if block.join_order else block.columns)

    pushdown: list[RowPredicates | None] = []
    for index, columns in enumerate(block.item_columns):
        predicates = _item_pushdown(block, columns)
        pushdown.append(
            compile_row_predicates(predicates, item_layouts[index]) if predicates else None)

    residual = compile_row_predicates(block.residual, joined_layout) \
        if block.residual else None

    projection: list[Callable | None] | None = None
    aggregation: RowAggregation | None = None
    if block.needs_aggregation:
        try:
            aggregation = compile_row_aggregation(select, joined_layout)
        except CompileFallback:
            aggregation = None
    else:
        projection = []
        for item in select.items:
            if isinstance(item.expression, ast.Star):
                projection.append(None)
                continue
            try:
                projection.append(compile_row_kernel(item.expression, joined_layout))
            except CompileFallback:
                projection.append(None)
    return RowBlockKernels(pushdown=pushdown, residual=residual,
                           projection=projection, aggregation=aggregation)


def _item_pushdown(block, columns: list[ColumnInfo]) -> list[ast.Expression]:
    """The push-down predicates targeting one FROM item, in binding order."""
    seen: list[str] = []
    for column in columns:
        binding = column.binding.lower()
        if binding not in seen:
            seen.append(binding)
    predicates: list[ast.Expression] = []
    for binding in seen:
        predicates.extend(block.pushdown.get(binding, []))
    return predicates


# ---------------------------------------------------------------------------
# column kernels (selection-vector execution)
# ---------------------------------------------------------------------------


class ColumnContext:
    """One kernel evaluation over a frame's arrays through a selection vector.

    ``sel`` is an ``int64`` index of the surviving rows (None = all rows);
    ``length`` is the number of *selected* rows.  Gathered columns are
    memoised so every column is gathered at most once per evaluation batch.
    """

    __slots__ = ("arrays", "length", "sel", "_gathered")

    def __init__(self, arrays: list[np.ndarray], length: int,
                 sel: np.ndarray | None = None):
        self.arrays = arrays
        self.length = length
        self.sel = sel
        self._gathered: dict[int, np.ndarray] = {}

    def column(self, position: int) -> np.ndarray:
        if self.sel is None:
            return self.arrays[position]
        gathered = self._gathered.get(position)
        if gathered is None:
            gathered = self.arrays[position][self.sel]
            self._gathered[position] = gathered
        return gathered


def as_mask(value: Any, length: int) -> np.ndarray:
    """Collapse a kernel result to its is-TRUE mask (mirrors evaluate_predicate).

    UNKNOWN rows of a Kleene result come back False -- the SQL filter
    semantics; interior boolean structure stays three-valued until here.
    """
    return truth_mask(value, length)


def compile_column_kernel(expression: ast.Expression, layout,
                          overflow_guard: bool = False) -> Callable[[ColumnContext], Any]:
    """Lower ``expression`` to a ``fn(ctx) -> ndarray | scalar`` closure.

    Mirrors :class:`~repro.engine.vector.VectorEvaluator` semantics (dates as
    int64 ordinals, NULL-as-NaN for floats, the overflow-guard widening).
    Raises :class:`CompileFallback` where the evaluator would raise
    :class:`~repro.engine.vector.VectorFallback`.
    """
    pair = _col(expression, layout, overflow_guard)
    const, value = pair
    if const:
        return lambda _ctx, _value=value: _value
    return value


def _col(node: ast.Expression, layout, guard: bool) -> tuple[bool, Any]:
    if isinstance(node, ast.Literal):
        return True, node.value
    if isinstance(node, ast.DateLiteral):
        return True, date_to_ordinal(node.value)
    if isinstance(node, ast.IntervalLiteral):
        return True, node
    if isinstance(node, ast.ColumnRef):
        position = layout.position(node)
        if position is None:
            raise CompileFallback(f"column '{node.qualified}' is not local")
        return False, lambda ctx, _p=position: ctx.column(_p)
    if isinstance(node, ast.Star):
        return False, lambda ctx: np.ones(ctx.length, dtype=np.int64)
    if isinstance(node, ast.UnaryOp):
        return _col_unary(node, layout, guard)
    if isinstance(node, ast.BinaryOp):
        return _col_binary(node, layout, guard)
    if isinstance(node, ast.BoolOp):
        return _col_bool(node, layout, guard)
    if isinstance(node, ast.Comparison):
        return _col_comparison(node, layout, guard)
    if isinstance(node, ast.IsNull):
        return _col_isnull(node, layout, guard)
    if isinstance(node, ast.Between):
        return _col_between(node, layout, guard)
    if isinstance(node, ast.Like):
        return _col_like(node, layout, guard)
    if isinstance(node, ast.InList):
        return _col_in_list(node, layout, guard)
    if isinstance(node, ast.CaseWhen):
        return _col_case(node, layout, guard)
    if isinstance(node, ast.Cast):
        return _col_cast(node, layout, guard)
    if isinstance(node, ast.Extract):
        return _col_extract(node, layout, guard)
    if isinstance(node, ast.Substring):
        return _col_substring(node, layout, guard)
    if isinstance(node, ast.FunctionCall):
        return _col_function(node, layout, guard)
    raise CompileFallback(f"unsupported expression node {type(node).__name__}")


def _col_unary(node: ast.UnaryOp, layout, guard) -> tuple[bool, Any]:
    operand_pair = _col(node.operand, layout, guard)
    operand = _as_fn(operand_pair)
    if node.operator == "not":
        def fn(ctx):
            return kleene_not(operand(ctx))
        return _maybe_fold(fn, operand_pair)
    if node.operator == "-":
        def fn(ctx):
            return negate_values(operand(ctx))
        return _maybe_fold(fn, operand_pair)
    return operand_pair


def _col_binary(node: ast.BinaryOp, layout, guard) -> tuple[bool, Any]:
    left_pair = _col(node.left, layout, guard)
    right_pair = _col(node.right, layout, guard)
    op = node.operator

    if right_pair[0] and isinstance(right_pair[1], ast.IntervalLiteral):
        interval = right_pair[1]
        if interval.unit in ("day", "week"):
            days = interval.value * (7 if interval.unit == "week" else 1)
            delta = days if op == "+" else -days
            left = _as_fn(left_pair)

            def fn(ctx):
                return left(ctx) + delta
            return _maybe_fold(fn, left_pair)
        if left_pair[0] and isinstance(left_pair[1], (int, np.integer)):
            base = ordinal_to_date(int(left_pair[1]))
            amount = interval.value if op == "+" else -interval.value
            return True, date_to_ordinal(add_interval(base, amount, interval.unit))
        raise CompileFallback("month/year interval arithmetic on a column")
    if left_pair[0] and isinstance(left_pair[1], ast.IntervalLiteral):
        raise CompileFallback("unsupported interval arithmetic form")

    left, right = _as_fn(left_pair), _as_fn(right_pair)
    if guard and op in ("+", "-", "*"):
        plain_left, plain_right = left, right

        def left(ctx, _fn=plain_left):
            return widen_guarded(_fn(ctx))

        def right(ctx, _fn=plain_right):
            return widen_guarded(_fn(ctx))

    if op == "||":
        def fn(ctx):
            return concat_values(left(ctx), right(ctx))
    elif op in _ARITH_OPS:
        def fn(ctx):
            return arith_arrays(op, left(ctx), right(ctx))
    else:
        raise CompileFallback(f"unsupported binary operator '{op}'")
    return _maybe_fold(fn, left_pair, right_pair)


def _col_bool(node: ast.BoolOp, layout, guard) -> tuple[bool, Any]:
    operand_fns = [_as_fn(_col(operand, layout, guard))
                   for operand in node.operands]
    combine = kleene_and if node.operator == "and" else kleene_or

    def fn(ctx):
        combined = operand_fns[0](ctx)
        for operand in operand_fns[1:]:
            combined = combine(combined, operand(ctx))
        return combined
    return False, fn


def _col_mask_fn(node: ast.Expression, layout, guard) -> Callable[[ColumnContext], np.ndarray]:
    operand = _as_fn(_col(node, layout, guard))

    def fn(ctx):
        return as_mask(operand(ctx), ctx.length)
    return fn


def _col_align(left_node, right_node, left_pair, right_pair, layout):
    """Compile-time date alignment (mirrors ``_align_date_operands``).

    Constant strings compared against date-ordinal columns are converted at
    compile time; non-constant operands get a runtime str check, matching the
    evaluator's scalar coercion.
    """
    def is_date_column(node):
        if isinstance(node, ast.ColumnRef):
            position = layout.position(node)
            return position is not None and layout.type_of(position) == "date"
        return False

    if is_date_column(left_node):
        if right_pair[0] and isinstance(right_pair[1], str):
            right_pair = (True, date_to_ordinal(right_pair[1]))
        elif not right_pair[0]:
            inner = right_pair[1]

            def aligned(ctx, _fn=inner):
                value = _fn(ctx)
                return date_to_ordinal(value) if isinstance(value, str) else value
            right_pair = (False, aligned)
    if is_date_column(right_node):
        if left_pair[0] and isinstance(left_pair[1], str):
            left_pair = (True, date_to_ordinal(left_pair[1]))
        elif not left_pair[0]:
            inner = left_pair[1]

            def aligned(ctx, _fn=inner):
                value = _fn(ctx)
                return date_to_ordinal(value) if isinstance(value, str) else value
            left_pair = (False, aligned)
    return left_pair, right_pair


def _col_comparison(node: ast.Comparison, layout, guard) -> tuple[bool, Any]:
    if node.quantifier is not None:
        raise CompileFallback("quantified comparisons require row-at-a-time evaluation")
    if node.operator not in _CMP:
        raise CompileFallback(f"unsupported comparison operator '{node.operator}'")
    left_pair = _col(node.left, layout, guard)
    right_pair = _col(node.right, layout, guard)
    left_pair, right_pair = _col_align(node.left, node.right, left_pair, right_pair,
                                       layout)
    left, right = _as_fn(left_pair), _as_fn(right_pair)
    op = node.operator

    def fn(ctx):
        return compare_arrays(op, left(ctx), right(ctx))
    return _maybe_fold(fn, left_pair, right_pair)


def _col_isnull(node: ast.IsNull, layout, guard) -> tuple[bool, Any]:
    operand = _as_fn(_col(node.operand, layout, guard))
    negated = node.negated

    def fn(ctx):
        return isnull_mask(operand(ctx), ctx.length, negated)
    return False, fn


def _col_between(node: ast.Between, layout, guard) -> tuple[bool, Any]:
    operand_pair = _col(node.operand, layout, guard)
    low_pair = _col(node.low, layout, guard)
    high_pair = _col(node.high, layout, guard)
    operand_pair, low_pair = _col_align(node.operand, node.low, operand_pair, low_pair,
                                        layout)
    operand_pair, high_pair = _col_align(node.operand, node.high, operand_pair,
                                         high_pair, layout)
    operand, low, high = _as_fn(operand_pair), _as_fn(low_pair), _as_fn(high_pair)
    negated = node.negated

    def fn(ctx):
        value = operand(ctx)
        inside = kleene_and(compare_arrays(">=", value, low(ctx)),
                            compare_arrays("<=", value, high(ctx)))
        # NOT BETWEEN over a NULL operand or bound stays UNKNOWN (Kleene NOT).
        return kleene_not(inside) if negated else inside
    return False, fn


def _col_like(node: ast.Like, layout, guard) -> tuple[bool, Any]:
    operand = _as_fn(_col(node.operand, layout, guard))
    pattern_pair = _col(node.pattern, layout, guard)
    negated = node.negated
    if pattern_pair[0]:
        if pattern_pair[1] is None:
            return True, None  # NULL pattern: UNKNOWN everywhere
        predicate = like_predicate(str(pattern_pair[1]))

        def matcher(ctx):
            return predicate
    else:
        pattern = _as_fn(pattern_pair)

        def matcher(ctx):
            pattern_value = pattern(ctx)
            return None if pattern_value is None \
                else like_predicate(str(pattern_value))

    def fn(ctx):
        predicate = matcher(ctx)
        if predicate is None:
            return None
        return like_mask(predicate, operand(ctx), negated, ctx.length)
    return False, fn


def _col_in_list(node: ast.InList, layout, guard) -> tuple[bool, Any]:
    operand = _as_fn(_col(node.operand, layout, guard))
    item_pairs = [_col(item, layout, guard) for item in node.items]
    if not all(const for const, _ in item_pairs):
        raise CompileFallback("IN list with non-constant members")
    values = [value for _, value in item_pairs]
    #: NULL list members can never compare TRUE (x = NULL is UNKNOWN), and
    #: np.isin would match a NULL operand by identity -- exclude them from
    #: the vectorised member set; their presence turns non-matches UNKNOWN.
    member_values = [value for value in values if value is not None]
    has_null_member = len(member_values) != len(values)
    negated = node.negated
    typed_cache: dict[Any, np.ndarray] = {}

    def fn(ctx):
        return in_list_mask(operand(ctx), member_values, has_null_member,
                            negated, ctx.length, typed_cache)
    return False, fn


def _col_case(node: ast.CaseWhen, layout, guard) -> tuple[bool, Any]:
    branches = [(_col_mask_fn(condition, layout, guard),
                 _as_fn(_col(result, layout, guard)))
                for condition, result in node.branches]
    default = _as_fn(_col(node.default, layout, guard)) \
        if node.default is not None else None

    def fn(ctx):
        default_value = case_branch_values(default(ctx)) if default is not None else None
        if isinstance(default_value, np.ndarray):
            result = default_value.astype(object)
        else:
            result = np.full(ctx.length, default_value, dtype=object)
        decided = np.zeros(ctx.length, dtype=bool)
        for condition, branch in branches:
            mask = condition(ctx) & ~decided
            value = case_branch_values(branch(ctx))
            if isinstance(value, np.ndarray):
                result[mask] = value[mask]
            else:
                result[mask] = value
            decided |= mask
        return collapse_case_result(result)
    return False, fn


def _col_cast(node: ast.Cast, layout, guard) -> tuple[bool, Any]:
    operand = _as_fn(_col(node.operand, layout, guard))
    target = node.type_name.lower()
    if target.startswith(("int", "bigint", "smallint")):
        def convert(array):
            return array.astype(np.int64)
    elif target.startswith(("float", "double", "real", "decimal", "numeric")):
        def convert(array):
            return array.astype(np.float64)
    else:
        # string targets need the row value domain (date ordinals would
        # stringify as integers); the interpreter falls back row-at-a-time.
        raise CompileFallback(f"CAST to '{node.type_name}' requires row semantics")

    def fn(ctx):
        value = operand(ctx)
        if not isinstance(value, (np.ndarray, Nullable)):
            return value
        return cast_array(value, convert)
    return False, fn


def _col_extract(node: ast.Extract, layout, guard) -> tuple[bool, Any]:
    if node.field_name not in ("year", "month", "day"):
        raise CompileFallback(f"unsupported EXTRACT field '{node.field_name}'")
    operand_pair = _col(node.operand, layout, guard)
    operand = _as_fn(operand_pair)
    field_name = node.field_name

    def fn(ctx):
        return extract_date_field(operand(ctx), field_name)
    return _maybe_fold(fn, operand_pair)


def _col_substring(node: ast.Substring, layout, guard) -> tuple[bool, Any]:
    operand = _as_fn(_col(node.operand, layout, guard))
    start = _as_fn(_col(node.start, layout, guard))
    length = _as_fn(_col(node.length, layout, guard)) if node.length is not None else None

    def fn(ctx):
        value = operand(ctx)
        begin = max(int(start(ctx)) - 1, 0)
        end = None if length is None else begin + int(length(ctx))

        def slice_one(item):
            if item is None:
                return None  # row semantics: SUBSTRING over NULL is NULL
            text = str(item)
            return text[begin:end] if end is not None else text[begin:]

        if is_array(value):
            return np.array([slice_one(item) for item in as_objects(value)],
                            dtype=object)
        return slice_one(value)
    return False, fn


def _col_function(node: ast.FunctionCall, layout, guard) -> tuple[bool, Any]:
    name = node.name.lower()
    if node.is_aggregate:
        raise CompileFallback(
            f"aggregate function '{name}' used outside an aggregation context")
    pairs = [_col(argument, layout, guard) for argument in node.arguments]
    fns = [_as_fn(pair) for pair in pairs]
    if name == "abs":
        def fn(ctx):
            value = fns[0](ctx)
            return None if value is None else abs_values(value)
    elif name == "round":
        def fn(ctx):
            value = fns[0](ctx)
            digits_value = fns[1](ctx) if len(fns) > 1 else 0
            if value is None or digits_value is None:
                return None
            return round_values(value, int(digits_value))
    elif name == "length":
        def fn(ctx):
            values = fns[0](ctx)
            return None if values is None else length_values(values)
    elif name in ("lower", "upper"):
        transform = str.lower if name == "lower" else str.upper

        def fn(ctx):
            values = fns[0](ctx)
            return None if values is None else map_string_values(values, transform)
    else:
        raise CompileFallback(f"function '{name}' has no vectorised implementation")
    return _maybe_fold(fn, *pairs)


# ---------------------------------------------------------------------------
# column block kernels
# ---------------------------------------------------------------------------

#: a predicate with its compiled kernel (None = evaluate via the interpreter).
ColumnPredicate = tuple["Callable[[ColumnContext], Any] | None", ast.Expression]


@dataclass
class ColumnBlockKernels:
    """Every compiled kernel of one planned block (column engine)."""

    #: per FROM item: its push-down predicates (empty list = nothing to apply).
    pushdown: list[list[ColumnPredicate]]
    #: the block's residual conjunction, one entry per predicate.
    residual: list[ColumnPredicate]
    #: per select item: projection kernel (None = star / interpreter); the
    #: whole list is None for aggregated blocks.
    projection: list[Callable | None] | None
    #: kernels for aggregation-internal expressions (group keys, aggregate
    #: arguments, per-group first-row values), keyed by ``id(expression)``.
    vectors: dict[int, Callable]


def compile_column_block(block, overflow_guard: bool = False) -> ColumnBlockKernels:
    """Compile one :class:`~repro.engine.plan.BlockPlan` for the column engine."""
    select = block.select
    item_layouts = [Layout(columns, ambiguous="raise") for columns in block.item_columns]
    joined_columns = [
        column
        for step in block.join_order
        for column in block.item_columns[step.frame_index]
    ]
    joined_layout = Layout(joined_columns if block.join_order else block.columns,
                           ambiguous="raise")

    def try_compile(expression, layout):
        try:
            return compile_column_kernel(expression, layout, overflow_guard)
        except CompileFallback:
            return None

    pushdown = [
        [(try_compile(predicate, item_layouts[index]), predicate)
         for predicate in _item_pushdown(block, columns)]
        for index, columns in enumerate(block.item_columns)
    ]
    residual = [(try_compile(predicate, joined_layout), predicate)
                for predicate in block.residual]

    projection: list[Callable | None] | None = None
    vectors: dict[int, Callable] = {}
    if block.needs_aggregation:
        for expression in _aggregation_vector_expressions(select):
            kernel = try_compile(expression, joined_layout)
            if kernel is not None:
                vectors[id(expression)] = kernel
    else:
        projection = [
            None if isinstance(item.expression, ast.Star)
            else try_compile(item.expression, joined_layout)
            for item in select.items
        ]
    return ColumnBlockKernels(pushdown=pushdown, residual=residual,
                              projection=projection, vectors=vectors)


def _aggregation_vector_expressions(select: ast.Select) -> list[ast.Expression]:
    """Expressions the group aggregator evaluates as whole vectors.

    Mirrors the recursion of the executor's group aggregator: aggregate-call
    arguments and maximal aggregate-free subtrees are evaluated column-wise;
    everything in between is combined per group.
    """
    collected: list[ast.Expression] = []

    def collect(expression: ast.Expression) -> None:
        if isinstance(expression, ast.FunctionCall) and expression.is_aggregate:
            collected.extend(argument for argument in expression.arguments
                             if not isinstance(argument, ast.Star))
            return
        if not ast.has_local_aggregate(expression):
            collected.append(expression)
            return
        if isinstance(expression, ast.BinaryOp):
            collect(expression.left)
            collect(expression.right)
        elif isinstance(expression, ast.UnaryOp):
            collect(expression.operand)
        elif isinstance(expression, ast.Comparison):
            collect(expression.left)
            collect(expression.right)
        elif isinstance(expression, ast.BoolOp):
            for operand in expression.operands:
                collect(operand)
        elif isinstance(expression, ast.CaseWhen):
            for condition, result in expression.branches:
                collect(condition)
                collect(result)
            if expression.default is not None:
                collect(expression.default)
        elif isinstance(expression, ast.Cast):
            collect(expression.operand)

    for expression in select.group_by:
        collect(expression)
    for item in select.items:
        collect(item.expression)
    if select.having is not None:
        collect(select.having)
    return collected
