"""Column-at-a-time (vectorised) expression evaluation over numpy arrays.

The evaluator mirrors :mod:`repro.engine.expression` but operates on whole
columns at once.  Date columns are represented as ``int64`` day ordinals
(days since the Unix epoch); date literals are converted to the same
representation, so comparisons and day-granularity arithmetic stay in the
integer domain.

Expressions the vectorised evaluator cannot handle (nested subqueries,
correlated references) raise :class:`VectorFallback`; the column executor
catches it and evaluates that particular predicate row-by-row, which mirrors
how vectorised engines punt on non-vectorisable operators.
"""

from __future__ import annotations

import operator as _operator
from typing import Any, Callable

import numpy as np

from repro.engine.expression import compare_values
from repro.engine.planner import ColumnInfo
from repro.engine.types import (
    add_interval,
    date_to_ordinal,
    like_to_predicate,
    ordinal_to_date,
    to_date,
)
from repro.errors import ExecutionError
from repro.sqlparser import ast


class VectorFallback(Exception):
    """Raised when an expression cannot be evaluated column-at-a-time."""


# ---------------------------------------------------------------------------
# NULL-aware vectorised primitives
#
# Columns containing NULLs arrive from storage as object arrays holding
# ``None``; the helpers below give the bulk operators the row engine's NULL
# semantics (comparisons with NULL are false, arithmetic propagates NULL)
# while keeping the numpy fast path for NULL-free arrays.
# ---------------------------------------------------------------------------

_IS_NONE = np.frompyfunc(lambda value: value is None, 1, 1)

_NUMPY_CMP: dict[str, Callable] = {
    "=": _operator.eq,
    "<>": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}

_PY_ARITH: dict[str, Callable] = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
    "/": _operator.truediv,
    "%": _operator.mod,
}


def none_positions(array: np.ndarray) -> np.ndarray:
    """Boolean mask of the ``None`` entries of an object array."""
    return _IS_NONE(array).astype(bool)


def mask_object_nulls(result: Any, *operands: Any) -> Any:
    """Force a predicate result to False wherever an operand is NULL.

    A scalar ``None`` operand (a NULL literal) nullifies every row,
    whatever shape the result has.
    """
    if any(operand is None for operand in operands):
        if isinstance(result, np.ndarray):
            return np.zeros(len(result), dtype=bool)
        return False
    if not isinstance(result, np.ndarray):
        return result
    for operand in operands:
        if isinstance(operand, np.ndarray) and operand.dtype == object:
            nulls = none_positions(operand)
            if nulls.any():
                result = result.astype(bool) & ~nulls
    return result


def compare_arrays(operator: str, left: Any, right: Any) -> Any:
    """Comparison with row-engine NULL semantics over bulk operands.

    The numpy fast path runs first; ordering comparisons against ``None``
    raise TypeError and fall back to an elementwise :func:`compare_values`
    walk, while equality comparisons (where numpy happily treats None as an
    ordinary value) get their NULL positions masked to False afterwards.
    A scalar ``None`` comparand (a NULL literal) compares false everywhere.
    """
    if left is None or right is None:
        return False
    compare = _NUMPY_CMP[operator]
    try:
        result = compare(left, right)
    except TypeError:
        return _compare_elementwise(operator, left, right)
    if isinstance(result, np.ndarray):
        for side in (left, right):
            if isinstance(side, np.ndarray) and side.dtype == object:
                nulls = none_positions(side)
                if nulls.any():
                    result = result.astype(bool) & ~nulls
    return result


def _compare_elementwise(operator: str, left: Any, right: Any) -> Any:
    left_array = isinstance(left, np.ndarray)
    right_array = isinstance(right, np.ndarray)
    if not left_array and not right_array:
        return compare_values(operator, left, right)
    length = len(left) if left_array else len(right)
    left_values = left if left_array else [left] * length
    right_values = right if right_array else [right] * length
    return np.fromiter(
        (bool(compare_values(operator, a, b))
         if a is not None and b is not None else False
         for a, b in zip(left_values, right_values)),
        dtype=bool, count=length)


def arith_arrays(operator: str, left: Any, right: Any) -> Any:
    """NULL-propagating arithmetic: numpy fast path, object fallback.

    A TypeError -- the signature of ``None`` inside an object array (or a
    NULL-literal scalar) -- routes to an elementwise evaluation that
    propagates NULL like the row engine.
    """
    operation = _PY_ARITH[operator]
    try:
        return operation(left, right)
    except TypeError:
        pass
    left_array = isinstance(left, np.ndarray)
    right_array = isinstance(right, np.ndarray)
    if not left_array and not right_array:
        if left is None or right is None:
            return None
        return operation(left, right)
    length = len(left) if left_array else len(right)
    left_values = left if left_array else [left] * length
    right_values = right if right_array else [right] * length
    out = np.empty(length, dtype=object)
    try:
        for index, (a, b) in enumerate(zip(left_values, right_values)):
            out[index] = None if a is None or b is None else operation(a, b)
    except ZeroDivisionError:
        raise ExecutionError("division by zero") from None
    return out


def map_object_values(values: np.ndarray, transform: Callable) -> np.ndarray:
    """Elementwise NULL-propagating map over an object array."""
    out = np.empty(len(values), dtype=object)
    for index, value in enumerate(values):
        out[index] = None if value is None else transform(value)
    return out


def negate_values(value: Any) -> Any:
    """Unary minus with NULL propagation (scalars and object arrays)."""
    try:
        return -value
    except TypeError:
        if not isinstance(value, np.ndarray):
            return None
        out = np.empty(len(value), dtype=object)
        for index, item in enumerate(value):
            out[index] = None if item is None else -item
        return out


def extract_object_date_field(values: np.ndarray, field_name: str) -> np.ndarray:
    """NULL-propagating year/month/day extraction over object ordinal arrays."""
    out = np.empty(len(values), dtype=object)
    for index, value in enumerate(values):
        out[index] = None if value is None else getattr(
            ordinal_to_date(int(value)), field_name)
    return out


def cast_array(array: np.ndarray, convert: Callable) -> np.ndarray:
    """Apply a dtype cast, keeping ``None`` entries of object arrays NULL.

    The NULL check must run *before* the bulk cast: numpy's object->float64
    ``astype`` happily converts ``None`` to NaN without raising, which would
    silently turn NULL into a value the row engine does not produce.
    """
    if array.dtype == object:
        nulls = none_positions(array)
        if nulls.any():
            out = np.empty(len(array), dtype=object)
            for index, value in enumerate(array):
                out[index] = None if value is None else convert(np.array([value]))[0]
            return out
    return convert(array)


class ColFrame:
    """An intermediate relation in column-major (numpy) form."""

    #: process-wide count of frame constructions.  The selection-vector
    #: executor is asserted (in tests) to allocate no intermediate frame per
    #: residual predicate; this counter is that assertion's probe.  It is a
    #: plain int -- instrumentation, not a thread-safe statistic.
    materialisations: int = 0

    def __init__(self, columns: list[ColumnInfo], arrays: list[np.ndarray], length: int):
        ColFrame.materialisations += 1
        self.columns = columns
        self.arrays = arrays
        self.length = length
        self._index: dict[tuple[str, str], int] = {}
        self._by_name: dict[str, list[int]] = {}
        self.reindex()

    def reindex(self) -> None:
        """Rebuild the column lookup structures after columns changed."""
        self._index = {}
        self._by_name = {}
        for position, column in enumerate(self.columns):
            self._index[(column.binding.lower(), column.name.lower())] = position
            self._by_name.setdefault(column.name.lower(), []).append(position)

    def position(self, ref: ast.ColumnRef) -> int | None:
        """Column position of ``ref`` in this frame, or None when absent.

        An unqualified name matching several bindings is a user error a real
        engine reports rather than silently resolving to the first match.
        """
        if ref.table:
            return self._index.get((ref.table.lower(), ref.name.lower()))
        positions = self._by_name.get(ref.name.lower())
        if not positions:
            return None
        if len(positions) > 1:
            raise ExecutionError(
                f"ambiguous column '{ref.name}' (qualify it with a table alias)")
        return positions[0]

    def array(self, position: int) -> np.ndarray:
        return self.arrays[position]

    def take(self, indexes: np.ndarray) -> "ColFrame":
        """Return a new frame with the rows selected by ``indexes``."""
        arrays = [array[indexes] for array in self.arrays]
        return ColFrame(columns=list(self.columns), arrays=arrays, length=len(indexes))

    def mask(self, predicate: np.ndarray) -> "ColFrame":
        """Return a new frame keeping only the rows where ``predicate`` is True."""
        arrays = [array[predicate] for array in self.arrays]
        return ColFrame(columns=list(self.columns), arrays=arrays,
                        length=int(predicate.sum()))

    def row(self, index: int) -> tuple:
        """Materialise one row (dates converted back to :class:`datetime.date`)."""
        values = []
        for column, array in zip(self.columns, self.arrays):
            value = array[index]
            values.append(_to_python(value, column.type_name))
        return tuple(values)

    def rows(self) -> list[tuple]:
        """Materialise every row (used at result-delivery time)."""
        return [self.row(index) for index in range(self.length)]


def concat_values(left: Any, right: Any) -> Any:
    """SQL ``||`` over columns and/or scalars (shared with the kernel compiler).

    NULL propagates: a ``None`` on either side yields NULL, matching the row
    engine, instead of concatenating the string ``'None'``.
    """
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        length = len(left) if isinstance(left, np.ndarray) else len(right)
        left_values = left if isinstance(left, np.ndarray) else [left] * length
        right_values = right if isinstance(right, np.ndarray) else [right] * length
        return np.array(
            [None if a is None or b is None else str(a) + str(b)
             for a, b in zip(left_values, right_values)],
            dtype=object)
    if left is None or right is None:
        return None
    return str(left) + str(right)


def _to_python(value: Any, type_name: str) -> Any:
    from repro.engine.types import ordinal_to_date

    if type_name == "date":
        if isinstance(value, (int, np.integer)):
            if int(value) == np.iinfo(np.int64).min:
                return None
            return ordinal_to_date(int(value))
        return value
    if isinstance(value, np.generic):
        return value.item()
    return value


class VectorEvaluator:
    """Evaluates expressions to numpy arrays over one :class:`ColFrame`.

    ``overflow_guard`` reproduces the behaviour the paper attributes to
    MonetDB when evaluating Q1's ``sum_charge`` expression: every arithmetic
    intermediate is cast to a wider type and fully materialised to guard
    against overflow, which makes expression-heavy projections measurably
    more expensive.  It is exposed as an engine option so the platform can
    compare two "versions" of the column engine.
    """

    def __init__(self, frame: ColFrame, overflow_guard: bool = False):
        self.frame = frame
        self.overflow_guard = overflow_guard

    # -- helpers ---------------------------------------------------------------

    def _broadcast(self, value: Any) -> np.ndarray | Any:
        return value

    def evaluate(self, expression: ast.Expression) -> Any:
        """Evaluate ``expression``; returns an array or a scalar."""
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.DateLiteral):
            return date_to_ordinal(expression.value)
        if isinstance(expression, ast.IntervalLiteral):
            return expression
        if isinstance(expression, ast.ColumnRef):
            position = self.frame.position(expression)
            if position is None:
                raise VectorFallback(f"column '{expression.qualified}' is not local")
            return self.frame.array(position)
        if isinstance(expression, ast.Star):
            return np.ones(self.frame.length, dtype=np.int64)
        if isinstance(expression, ast.UnaryOp):
            return self._unary(expression)
        if isinstance(expression, ast.BinaryOp):
            return self._binary(expression)
        if isinstance(expression, ast.BoolOp):
            return self._bool(expression)
        if isinstance(expression, ast.Comparison):
            return self._comparison(expression)
        if isinstance(expression, ast.IsNull):
            return self._isnull(expression)
        if isinstance(expression, ast.Between):
            return self._between(expression)
        if isinstance(expression, ast.Like):
            return self._like(expression)
        if isinstance(expression, ast.InList):
            return self._in_list(expression)
        if isinstance(expression, ast.CaseWhen):
            return self._case(expression)
        if isinstance(expression, ast.Cast):
            return self._cast(expression)
        if isinstance(expression, ast.Extract):
            return self._extract(expression)
        if isinstance(expression, ast.Substring):
            return self._substring(expression)
        if isinstance(expression, ast.FunctionCall):
            return self._function(expression)
        if isinstance(expression, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
            raise VectorFallback("subqueries require row-at-a-time evaluation")
        raise VectorFallback(f"unsupported expression node {type(expression).__name__}")

    def evaluate_predicate(self, expression: ast.Expression) -> np.ndarray:
        """Evaluate a predicate to a boolean mask over the frame."""
        result = self.evaluate(expression)
        if np.isscalar(result) or not isinstance(result, np.ndarray):
            return np.full(self.frame.length, bool(result), dtype=bool)
        if result.dtype != bool:
            return result.astype(bool)
        return result

    # -- operators ----------------------------------------------------------------

    def _unary(self, node: ast.UnaryOp) -> Any:
        operand = self.evaluate(node.operand)
        if node.operator == "not":
            if isinstance(operand, np.ndarray):
                return ~operand.astype(bool)
            return not operand
        if node.operator != "-":
            return operand
        return negate_values(operand)

    def _binary(self, node: ast.BinaryOp) -> Any:
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        operator = node.operator
        if isinstance(right, ast.IntervalLiteral) or isinstance(left, ast.IntervalLiteral):
            return self._interval_arithmetic(node, left, right)
        if self.overflow_guard and operator in ("+", "-", "*"):
            # widen and materialise every intermediate, as an overflow-guarded
            # engine version would.
            if isinstance(left, np.ndarray) and left.dtype != object:
                left = np.ascontiguousarray(left.astype(np.longdouble))
            if isinstance(right, np.ndarray) and right.dtype != object:
                right = np.ascontiguousarray(right.astype(np.longdouble))
        if operator == "||":
            return self._concat(left, right)
        if operator not in _PY_ARITH:
            raise ExecutionError(f"unsupported binary operator '{operator}'")
        return arith_arrays(operator, left, right)

    def _concat(self, left: Any, right: Any) -> Any:
        return concat_values(left, right)

    def _interval_arithmetic(self, node: ast.BinaryOp, left: Any, right: Any) -> Any:
        if isinstance(right, ast.IntervalLiteral) and isinstance(left, (int, np.integer)):
            # literal date +/- interval: compute exactly in the date domain.
            base = to_date(_ordinal_to_iso(int(left)))
            amount = right.value if node.operator == "+" else -right.value
            return date_to_ordinal(add_interval(base, amount, right.unit))
        if isinstance(right, ast.IntervalLiteral) and isinstance(left, np.ndarray):
            if right.unit in ("day", "week"):
                days = right.value * (7 if right.unit == "week" else 1)
                return left + (days if node.operator == "+" else -days)
            raise VectorFallback("month/year interval arithmetic on a column")
        raise VectorFallback("unsupported interval arithmetic form")

    def _bool(self, node: ast.BoolOp) -> Any:
        masks = [self.evaluate_predicate(operand) for operand in node.operands]
        combined = masks[0]
        for mask in masks[1:]:
            combined = (combined & mask) if node.operator == "and" else (combined | mask)
        return combined

    def _comparison(self, node: ast.Comparison) -> Any:
        if node.quantifier is not None:
            raise VectorFallback("quantified comparisons require row-at-a-time evaluation")
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        left, right = _align_date_operands(node.left, node.right, left, right, self.frame)
        operator = node.operator
        if operator not in _NUMPY_CMP:
            raise ExecutionError(f"unsupported comparison operator '{operator}'")
        return compare_arrays(operator, left, right)

    def _isnull(self, node: ast.IsNull) -> Any:
        operand = self.evaluate(node.operand)
        if isinstance(operand, np.ndarray):
            if operand.dtype == np.float64:
                mask = np.isnan(operand)
            elif operand.dtype == object:
                mask = none_positions(operand)
            else:
                mask = np.zeros(len(operand), dtype=bool)
        else:
            mask = np.full(self.frame.length, operand is None, dtype=bool)
        return ~mask if node.negated else mask

    def _between(self, node: ast.Between) -> Any:
        operand = self.evaluate(node.operand)
        low = self.evaluate(node.low)
        high = self.evaluate(node.high)
        operand, low = _align_date_operands(node.operand, node.low, operand, low, self.frame)
        operand, high = _align_date_operands(node.operand, node.high, operand, high, self.frame)
        inside = compare_arrays(">=", operand, low) & compare_arrays("<=", operand, high)
        if not node.negated:
            return inside
        # NOT BETWEEN over a NULL operand *or* NULL bound is NULL (false).
        outside = ~inside if isinstance(inside, np.ndarray) else (not inside)
        return mask_object_nulls(outside, operand, low, high)

    def _like(self, node: ast.Like) -> Any:
        operand = self.evaluate(node.operand)
        pattern = self.evaluate(node.pattern)
        predicate = like_to_predicate(str(pattern))
        if isinstance(operand, np.ndarray):
            matches = np.fromiter((predicate(value) for value in operand), dtype=bool,
                                  count=len(operand))
        else:
            matches = np.full(self.frame.length, predicate(operand), dtype=bool)
        return ~matches if node.negated else matches

    def _in_list(self, node: ast.InList) -> Any:
        operand = self.evaluate(node.operand)
        values = [self.evaluate(item) for item in node.items]
        if any(isinstance(value, np.ndarray) for value in values):
            raise VectorFallback("IN list with non-constant members")
        # NULL list members can never match under row semantics (x = NULL is
        # NULL), and np.isin would match a NULL operand by identity -- so
        # drop them from the member set instead of masking afterwards.
        members = [value for value in values if value is not None]
        if isinstance(operand, np.ndarray):
            mask = np.isin(operand, np.array(members, dtype=operand.dtype))
            if node.negated:
                # NOT IN over a NULL operand is NULL (false), not true.
                return mask_object_nulls(~mask, operand)
            return mask
        if operand is None:
            # NULL IN (...) / NULL NOT IN (...) are both NULL -> false.
            return np.zeros(self.frame.length, dtype=bool)
        mask = np.full(self.frame.length, operand in members, dtype=bool)
        return ~mask if node.negated else mask

    def _case(self, node: ast.CaseWhen) -> Any:
        result: Any = None
        default = self.evaluate(node.default) if node.default is not None else None
        result = np.full(self.frame.length, default, dtype=object) \
            if not isinstance(default, np.ndarray) else default.astype(object)
        decided = np.zeros(self.frame.length, dtype=bool)
        for condition, branch in node.branches:
            mask = self.evaluate_predicate(condition) & ~decided
            value = self.evaluate(branch)
            if isinstance(value, np.ndarray):
                result[mask] = value[mask]
            else:
                result[mask] = value
            decided |= mask
        # try to collapse back to a numeric dtype when possible
        try:
            return result.astype(np.float64)
        except (TypeError, ValueError):
            return result

    def _cast(self, node: ast.Cast) -> Any:
        operand = self.evaluate(node.operand)
        target = node.type_name.lower()
        if isinstance(operand, np.ndarray):
            if target.startswith(("int", "bigint", "smallint")):
                return cast_array(operand, lambda array: array.astype(np.int64))
            if target.startswith(("float", "double", "real", "decimal", "numeric")):
                return cast_array(operand, lambda array: array.astype(np.float64))
            if target.startswith(("char", "varchar", "text", "string")):
                return operand.astype(object)
            raise VectorFallback(f"unsupported vectorised CAST to '{node.type_name}'")
        return operand

    def _extract(self, node: ast.Extract) -> Any:
        operand = self.evaluate(node.operand)
        if not isinstance(operand, np.ndarray):
            value = to_date(_ordinal_to_iso(int(operand)))
            return {"year": value.year, "month": value.month, "day": value.day}[node.field_name]
        if operand.dtype == object:
            # nullable date column: NULL-propagating elementwise extraction.
            if node.field_name not in ("year", "month", "day"):
                raise ExecutionError(f"unsupported EXTRACT field '{node.field_name}'")
            return extract_object_date_field(operand, node.field_name)
        dates = operand.astype("datetime64[D]")
        if node.field_name == "year":
            return dates.astype("datetime64[Y]").astype(np.int64) + 1970
        if node.field_name == "month":
            years = dates.astype("datetime64[Y]")
            return (dates.astype("datetime64[M]") - years.astype("datetime64[M]")).astype(
                np.int64) + 1
        if node.field_name == "day":
            months = dates.astype("datetime64[M]")
            return (dates - months.astype("datetime64[D]")).astype(np.int64) + 1
        raise ExecutionError(f"unsupported EXTRACT field '{node.field_name}'")

    def _substring(self, node: ast.Substring) -> Any:
        operand = self.evaluate(node.operand)
        start = int(self.evaluate(node.start))
        length = int(self.evaluate(node.length)) if node.length is not None else None
        begin = max(start - 1, 0)
        end = None if length is None else begin + length

        def slice_one(value: Any) -> str | None:
            if value is None:
                return None  # row semantics: SUBSTRING over NULL is NULL
            text = str(value)
            return text[begin:end] if end is not None else text[begin:]

        if isinstance(operand, np.ndarray):
            return np.array([slice_one(value) for value in operand], dtype=object)
        return slice_one(operand)

    def _function(self, node: ast.FunctionCall) -> Any:
        name = node.name.lower()
        if node.is_aggregate:
            raise ExecutionError(
                f"aggregate function '{name}' used outside an aggregation context"
            )
        arguments = [self.evaluate(argument) for argument in node.arguments]
        if any(argument is None for argument in arguments):
            return None  # row semantics: any NULL argument yields NULL
        if name == "abs":
            value = arguments[0]
            if isinstance(value, np.ndarray) and value.dtype == object:
                return map_object_values(value, abs)
            return np.abs(value)
        if name == "round":
            digits = int(arguments[1]) if len(arguments) > 1 else 0
            value = arguments[0]
            if isinstance(value, np.ndarray) and value.dtype == object:
                return map_object_values(value, lambda item: round(item, digits))
            return np.round(value, digits)
        if name == "length":
            values = arguments[0]
            if isinstance(values, np.ndarray):
                lengths = [None if value is None else len(str(value))
                           for value in values]
                if any(value is None for value in lengths):
                    return np.array(lengths, dtype=object)
                return np.array(lengths, dtype=np.int64)
            return len(str(values))
        if name in ("lower", "upper"):
            values = arguments[0]
            transform = str.lower if name == "lower" else str.upper
            if isinstance(values, np.ndarray):
                return map_object_values(values,
                                         lambda item: transform(str(item)))
            return transform(str(values))
        raise VectorFallback(f"function '{name}' has no vectorised implementation")


def _ordinal_to_iso(ordinal: int) -> str:
    from repro.engine.types import ordinal_to_date

    return ordinal_to_date(ordinal).isoformat()


def _align_date_operands(left_node: ast.Expression, right_node: ast.Expression,
                         left: Any, right: Any, frame: ColFrame) -> tuple[Any, Any]:
    """Make sure string dates compared against date-ordinal columns line up.

    When one side is a date column (int64 ordinals) and the other a string
    literal (e.g. a grammar-injected ``'1995-03-15'``), the string side is
    converted to an ordinal.
    """
    def is_date_column(node: ast.Expression) -> bool:
        if isinstance(node, ast.ColumnRef):
            position = frame.position(node)
            if position is not None:
                return frame.columns[position].type_name == "date"
        return False

    if is_date_column(left_node) and isinstance(right, str):
        right = date_to_ordinal(right)
    if is_date_column(right_node) and isinstance(left, str):
        left = date_to_ordinal(left)
    return left, right
