"""Column-at-a-time (vectorised) expression evaluation over numpy arrays.

The evaluator mirrors :mod:`repro.engine.expression` but operates on whole
columns at once.  Date columns are represented as ``int64`` day ordinals
(days since the Unix epoch); date literals are converted to the same
representation, so comparisons and day-granularity arithmetic stay in the
integer domain.

NULL handling follows :mod:`repro.engine.mask`: nullable typed columns
arrive from storage as :class:`~repro.engine.mask.Nullable` ``(values,
validity)`` pairs and stay typed through the operators (bulk compute over
the full array, validity combined separately); predicates evaluate to
Kleene three-valued results (:class:`~repro.engine.mask.Kleene`), so
``NOT`` / ``AND`` / ``OR`` over NULL operands match the row engine's
three-valued semantics exactly.  Nullable *string* columns still use object
arrays holding ``None`` -- string kernels iterate Python values anyway --
and every primitive below accepts both representations.

Expressions the vectorised evaluator cannot handle (nested subqueries,
correlated references) raise :class:`VectorFallback`; the column executor
catches it and evaluates that particular predicate row-by-row, which mirrors
how vectorised engines punt on non-vectorisable operators.
"""

from __future__ import annotations

import operator as _operator
from typing import Any, Callable

import numpy as np

from repro.engine.expression import compare_values, in_members
from repro.engine.mask import (
    Kleene,
    Nullable,
    as_objects,
    combine_valid,
    data_of,
    is_array,
    kleene_and,
    kleene_not,
    kleene_or,
    none_positions,
    truth_mask,
    wrap_valid,
)
from repro.engine.planner import ColumnInfo
from repro.engine.types import (
    add_interval,
    date_to_ordinal,
    like_to_predicate,
    ordinal_to_date,
    to_date,
)
from repro.errors import ExecutionError
from repro.obs.metrics import count as count_metric
from repro.sqlparser import ast


class VectorFallback(Exception):
    """Raised when an expression cannot be evaluated column-at-a-time."""


# ---------------------------------------------------------------------------
# NULL-aware vectorised primitives
#
# Shared by the vectorised interpreter below and the compiled column kernels
# (repro.engine.compile): one implementation of each operator's three-valued
# semantics.  Bulk operands arrive as plain typed arrays (no NULLs),
# Nullable (values, validity) pairs, or object arrays holding None (strings
# and fallback outputs); scalar NULL is Python None.
# ---------------------------------------------------------------------------

_NUMPY_CMP: dict[str, Callable] = {
    "=": _operator.eq,
    "<>": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}

_PY_ARITH: dict[str, Callable] = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
    "/": _operator.truediv,
    "%": _operator.mod,
}


def compare_arrays(operator: str, left: Any, right: Any) -> Any:
    """Three-valued comparison over bulk operands.

    NULL-free typed inputs come back as plain boolean arrays (the numpy
    fast path); any nullability -- Nullable operands, object arrays with
    None, a scalar NULL comparand -- yields a :class:`Kleene` mask whose
    invalid rows are UNKNOWN.  Scalar-only input returns a scalar
    (None = UNKNOWN), matching the row engine's ``compare_values``.
    """
    if not is_array(left) and not is_array(right):
        return compare_values(operator, left, right)
    if left is None or right is None:
        return Kleene.unknown(len(left) if is_array(left) else len(right))
    compare = _NUMPY_CMP[operator]
    left_values, left_valid = data_of(left)
    right_values, right_valid = data_of(right)
    try:
        result = compare(left_values, right_values)
    except TypeError:
        return _compare_elementwise(operator, left, right)
    valid = combine_valid(left_valid, right_valid)
    if valid is None:
        return result
    if not isinstance(result, np.ndarray):  # pragma: no cover - defensive
        result = np.full(len(valid), bool(result), dtype=bool)
    return Kleene(result.astype(bool), valid)


def _compare_elementwise(operator: str, left: Any, right: Any) -> Any:
    """Python-loop comparison (mixed types numpy refuses to compare bulk).

    Iterating a Nullable or an object array yields ``None`` at NULL
    positions; those rows become UNKNOWN.
    """
    left_array = is_array(left)
    right_array = is_array(right)
    length = len(left) if left_array else len(right)
    left_values = left if left_array else [left] * length
    right_values = right if right_array else [right] * length
    truth = np.zeros(length, dtype=bool)
    valid = np.ones(length, dtype=bool)
    for index, (a, b) in enumerate(zip(left_values, right_values)):
        if a is None or b is None:
            valid[index] = False
        else:
            truth[index] = bool(compare_values(operator, a, b))
    if valid.all():
        return truth
    return Kleene(truth, valid)


def arith_arrays(operator: str, left: Any, right: Any) -> Any:
    """NULL-propagating arithmetic over any mix of operand representations.

    Typed Nullable operands stay typed: the operation runs over the full
    values array (divisors sanitised at invalid slots so sentinel zeroes
    cannot fault) and the validity masks AND together.  Object arrays fall
    back to an elementwise walk, as before.
    """
    operation = _PY_ARITH[operator]
    if not is_array(left) and not is_array(right):
        if left is None or right is None:
            return None
        try:
            return operation(left, right)
        except ZeroDivisionError:
            raise ExecutionError("division by zero") from None
    if left is None or right is None:
        length = len(left) if is_array(left) else len(right)
        return Nullable(np.zeros(length, dtype=np.float64),
                        np.zeros(length, dtype=bool))
    if isinstance(left, (Nullable, Kleene)) or isinstance(right, (Nullable, Kleene)):
        left_values, left_valid = data_of(left)
        right_values, right_valid = data_of(right)
        if getattr(left_values, "dtype", None) == object \
                or getattr(right_values, "dtype", None) == object:
            return _arith_elementwise(operation, left, right)
        valid = combine_valid(left_valid, right_valid)
        if operator in ("/", "%"):
            # a zero divisor must fault exactly where the row engine (and the
            # object-array path) would: on rows where both operands are
            # present.  Invalid-slot sentinels are sanitised to 1 instead.
            if isinstance(right_values, np.ndarray):
                zero = right_values == 0
                if (zero & valid).any() if valid is not None else zero.any():
                    raise ExecutionError("division by zero")
                if right_valid is not None:
                    right_values = np.where(right_valid, right_values, 1)
            elif right_values == 0 and (valid is None or valid.any()):
                raise ExecutionError("division by zero")
        with np.errstate(all="ignore"):
            result = operation(left_values, right_values)
        return wrap_valid(result, valid)
    try:
        return operation(left, right)
    except TypeError:
        pass
    except ZeroDivisionError:
        # object arrays run Python operators elementwise inside numpy
        raise ExecutionError("division by zero") from None
    return _arith_elementwise(operation, left, right)


def _arith_elementwise(operation: Callable, left: Any, right: Any) -> np.ndarray:
    length = len(left) if is_array(left) else len(right)
    left_values = left if is_array(left) else [left] * length
    right_values = right if is_array(right) else [right] * length
    out = np.empty(length, dtype=object)
    try:
        for index, (a, b) in enumerate(zip(left_values, right_values)):
            out[index] = None if a is None or b is None else operation(a, b)
    except ZeroDivisionError:
        raise ExecutionError("division by zero") from None
    return out


def map_object_values(values: np.ndarray, transform: Callable) -> np.ndarray:
    """Elementwise NULL-propagating map over an object array."""
    out = np.empty(len(values), dtype=object)
    for index, value in enumerate(values):
        out[index] = None if value is None else transform(value)
    return out


def negate_values(value: Any) -> Any:
    """Unary minus with NULL propagation (scalars and bulk operands)."""
    if isinstance(value, Nullable):
        return -value
    try:
        return -value
    except TypeError:
        if not isinstance(value, np.ndarray):
            return None
        out = np.empty(len(value), dtype=object)
        for index, item in enumerate(value):
            out[index] = None if item is None else -item
        return out


def cast_array(array: "np.ndarray | Nullable", convert: Callable) -> Any:
    """Apply a dtype cast, keeping NULL positions NULL.

    Nullable inputs cast their typed values in bulk and keep the validity
    mask.  For object arrays the NULL check must run *before* the bulk
    cast: numpy's object->float64 ``astype`` happily converts ``None`` to
    NaN without raising, which would silently turn NULL into a value the
    row engine does not produce.
    """
    if isinstance(array, Nullable):
        return Nullable(convert(array.values), array.valid)
    if array.dtype == object:
        nulls = none_positions(array)
        if nulls.any():
            out = np.empty(len(array), dtype=object)
            for index, value in enumerate(array):
                out[index] = None if value is None else convert(np.array([value]))[0]
            return out
    return convert(array)


# -- shared predicate kernels -------------------------------------------------


def isnull_mask(value: Any, length: int, negated: bool) -> np.ndarray:
    """IS [NOT] NULL over any operand representation (always two-valued)."""
    if isinstance(value, Nullable):
        mask = ~value.valid
        if value.values.dtype == np.float64:
            # NaN is the in-band NULL of plain float arrays; a concatenation
            # of the two representations (outer-join padding) can carry both.
            mask = mask | np.isnan(value.values)
    elif isinstance(value, Kleene):
        mask = ~value.valid
    elif isinstance(value, np.ndarray):
        if value.dtype == np.float64:
            mask = np.isnan(value)
        elif value.dtype == object:
            mask = none_positions(value)
        else:
            mask = np.zeros(len(value), dtype=bool)
    else:
        mask = np.full(length, value is None, dtype=bool)
    return ~mask if negated else mask


def like_mask(matcher: Callable[[Any], bool], operand: Any, negated: bool,
              length: int) -> Any:
    """Three-valued LIKE: NULL operands are UNKNOWN, negated or not."""
    if isinstance(operand, Nullable):
        valid = operand.valid
        matches = np.fromiter(
            (bool(ok) and matcher(value)
             for value, ok in zip(operand.values, valid)),
            dtype=bool, count=len(valid))
        result: Any = Kleene(matches, valid)
    elif isinstance(operand, np.ndarray):
        matches = np.fromiter((matcher(value) for value in operand), dtype=bool,
                              count=len(operand))
        if operand.dtype == object:
            nulls = none_positions(operand)
            result = Kleene(matches, ~nulls) if nulls.any() else matches
        else:
            result = matches
    elif operand is None:
        return None
    else:
        result = matcher(operand)
    return kleene_not(result) if negated else result


def in_list_mask(operand: Any, members: list, has_null_member: bool,
                 negated: bool, length: int,
                 member_cache: dict | None = None) -> Any:
    """Three-valued IN over a constant member list.

    ``members`` excludes NULL literals (``x = NULL`` can never be TRUE, and
    ``np.isin`` would match a NULL operand by identity); ``has_null_member``
    records that the original list contained one, which turns every
    non-match into UNKNOWN.  ``member_cache`` memoises the dtype-converted
    member array per operand dtype (compiled kernels reuse it per call).
    """
    if is_array(operand) and not isinstance(operand, Kleene):
        values, valid = data_of(operand)
        member_array = None if member_cache is None \
            else member_cache.get(values.dtype)
        if member_array is None:
            member_array = np.array(members, dtype=values.dtype)
            if member_cache is not None:
                member_cache[values.dtype] = member_array
        found = np.isin(values, member_array)
        truth = found if valid is None else (found & valid)
        if has_null_member:
            result: Any = Kleene(truth, truth)  # non-match is UNKNOWN
        elif valid is None:
            result = found
        else:
            result = Kleene(truth, valid)
        return kleene_not(result) if negated else result
    if operand is None:
        return None
    return in_members(operand,
                      members + [None] if has_null_member else members, negated)


def extract_date_field(value: Any, field_name: str) -> Any:
    """EXTRACT(year/month/day) over ordinals in any bulk representation."""
    if isinstance(value, Nullable):
        return Nullable(_extract_typed(value.values, field_name), value.valid)
    if not isinstance(value, np.ndarray):
        if value is None:
            return None
        date_value = ordinal_to_date(int(value))
        return {"year": date_value.year, "month": date_value.month,
                "day": date_value.day}[field_name]
    if value.dtype == object:
        return extract_object_date_field(value, field_name)
    return _extract_typed(value, field_name)


def _extract_typed(ordinals: np.ndarray, field_name: str) -> np.ndarray:
    dates = ordinals.astype("datetime64[D]")
    if field_name == "year":
        return dates.astype("datetime64[Y]").astype(np.int64) + 1970
    if field_name == "month":
        years = dates.astype("datetime64[Y]")
        return (dates.astype("datetime64[M]") - years.astype("datetime64[M]")).astype(
            np.int64) + 1
    if field_name == "day":
        months = dates.astype("datetime64[M]")
        return (dates - months.astype("datetime64[D]")).astype(np.int64) + 1
    raise ExecutionError(f"unsupported EXTRACT field '{field_name}'")


def extract_object_date_field(values: np.ndarray, field_name: str) -> np.ndarray:
    """NULL-propagating year/month/day extraction over object ordinal arrays."""
    out = np.empty(len(values), dtype=object)
    for index, value in enumerate(values):
        out[index] = None if value is None else getattr(
            ordinal_to_date(int(value)), field_name)
    return out


# -- shared scalar-function kernels -------------------------------------------


def abs_values(value: Any) -> Any:
    if isinstance(value, Nullable):
        return Nullable(np.abs(value.values), value.valid)
    if isinstance(value, np.ndarray) and value.dtype == object:
        return map_object_values(value, abs)
    return np.abs(value)


def round_values(value: Any, digits: int) -> Any:
    if isinstance(value, Nullable):
        return Nullable(np.round(value.values, digits), value.valid)
    if isinstance(value, np.ndarray) and value.dtype == object:
        return map_object_values(value, lambda item: round(item, digits))
    return np.round(value, digits)


def length_values(value: Any) -> Any:
    if is_array(value):
        lengths = [None if item is None else len(str(item))
                   for item in as_objects(value)]
        if any(item is None for item in lengths):
            return np.array(lengths, dtype=object)
        return np.array(lengths, dtype=np.int64)
    return len(str(value))


def map_string_values(value: Any, transform: Callable[[str], str]) -> Any:
    if is_array(value):
        return map_object_values(as_objects(value),
                                 lambda item: transform(str(item)))
    return transform(str(value))


def case_branch_values(value: Any) -> Any:
    """Normalise a CASE branch result for object-array scatter assignment."""
    if isinstance(value, (Nullable, Kleene)):
        return as_objects(value)
    return value


def collapse_case_result(result: np.ndarray) -> np.ndarray:
    """Collapse a CASE object result to float64 when (and only when) safe.

    The NULL check must run first: numpy's object->float64 ``astype``
    silently turns ``None`` into NaN, which the row engine never produces.
    """
    if none_positions(result).any():
        return result
    try:
        return result.astype(np.float64)
    except (TypeError, ValueError):
        return result


class ColFrame:
    """An intermediate relation in column-major (numpy) form.

    Arrays may be plain ndarrays, :class:`Nullable` pairs, or object arrays;
    all three support the gather / mask / scalar indexing the frame uses.
    """

    def __init__(self, columns: list[ColumnInfo], arrays: list[np.ndarray], length: int):
        # frame constructions are counted on the active query's metrics
        # context ("frame.materialisations"): the selection-vector executor
        # is asserted (in tests) to allocate no intermediate frame per
        # residual predicate, and per-query attribution keeps the probe
        # thread-safe under the batched driver.
        count_metric("frame.materialisations")
        self.columns = columns
        self.arrays = arrays
        self.length = length
        self._index: dict[tuple[str, str], int] = {}
        self._by_name: dict[str, list[int]] = {}
        self.reindex()

    def reindex(self) -> None:
        """Rebuild the column lookup structures after columns changed."""
        self._index = {}
        self._by_name = {}
        for position, column in enumerate(self.columns):
            self._index[(column.binding.lower(), column.name.lower())] = position
            self._by_name.setdefault(column.name.lower(), []).append(position)

    def position(self, ref: ast.ColumnRef) -> int | None:
        """Column position of ``ref`` in this frame, or None when absent.

        An unqualified name matching several bindings is a user error a real
        engine reports rather than silently resolving to the first match.
        """
        if ref.table:
            return self._index.get((ref.table.lower(), ref.name.lower()))
        positions = self._by_name.get(ref.name.lower())
        if not positions:
            return None
        if len(positions) > 1:
            raise ExecutionError(
                f"ambiguous column '{ref.name}' (qualify it with a table alias)")
        return positions[0]

    def array(self, position: int) -> np.ndarray:
        return self.arrays[position]

    def take(self, indexes: np.ndarray) -> "ColFrame":
        """Return a new frame with the rows selected by ``indexes``."""
        arrays = [array[indexes] for array in self.arrays]
        return ColFrame(columns=list(self.columns), arrays=arrays, length=len(indexes))

    def mask(self, predicate: np.ndarray) -> "ColFrame":
        """Return a new frame keeping only the rows where ``predicate`` is True."""
        arrays = [array[predicate] for array in self.arrays]
        return ColFrame(columns=list(self.columns), arrays=arrays,
                        length=int(predicate.sum()))

    def row(self, index: int) -> tuple:
        """Materialise one row (dates converted back to :class:`datetime.date`)."""
        values = []
        for column, array in zip(self.columns, self.arrays):
            value = array[index]
            values.append(_to_python(value, column.type_name))
        return tuple(values)

    def rows(self) -> list[tuple]:
        """Materialise every row (used at result-delivery time)."""
        return [self.row(index) for index in range(self.length)]


def concat_values(left: Any, right: Any) -> Any:
    """SQL ``||`` over columns and/or scalars (shared with the kernel compiler).

    NULL propagates: a ``None`` on either side yields NULL, matching the row
    engine, instead of concatenating the string ``'None'``.
    """
    if isinstance(left, (Nullable, Kleene)):
        left = as_objects(left)
    if isinstance(right, (Nullable, Kleene)):
        right = as_objects(right)
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        length = len(left) if isinstance(left, np.ndarray) else len(right)
        left_values = left if isinstance(left, np.ndarray) else [left] * length
        right_values = right if isinstance(right, np.ndarray) else [right] * length
        return np.array(
            [None if a is None or b is None else str(a) + str(b)
             for a, b in zip(left_values, right_values)],
            dtype=object)
    if left is None or right is None:
        return None
    return str(left) + str(right)


def _to_python(value: Any, type_name: str) -> Any:
    from repro.engine.types import ordinal_to_date

    if type_name == "date":
        if isinstance(value, (int, np.integer)):
            if int(value) == np.iinfo(np.int64).min:
                return None
            return ordinal_to_date(int(value))
        return value
    if isinstance(value, np.generic):
        return value.item()
    return value


class VectorEvaluator:
    """Evaluates expressions to numpy arrays over one :class:`ColFrame`.

    ``overflow_guard`` reproduces the behaviour the paper attributes to
    MonetDB when evaluating Q1's ``sum_charge`` expression: every arithmetic
    intermediate is cast to a wider type and fully materialised to guard
    against overflow, which makes expression-heavy projections measurably
    more expensive.  It is exposed as an engine option so the platform can
    compare two "versions" of the column engine.
    """

    def __init__(self, frame: ColFrame, overflow_guard: bool = False):
        self.frame = frame
        self.overflow_guard = overflow_guard

    # -- helpers ---------------------------------------------------------------

    def _broadcast(self, value: Any) -> np.ndarray | Any:
        return value

    def evaluate(self, expression: ast.Expression) -> Any:
        """Evaluate ``expression``; returns an array, a mask, or a scalar."""
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.DateLiteral):
            return date_to_ordinal(expression.value)
        if isinstance(expression, ast.IntervalLiteral):
            return expression
        if isinstance(expression, ast.ColumnRef):
            position = self.frame.position(expression)
            if position is None:
                raise VectorFallback(f"column '{expression.qualified}' is not local")
            return self.frame.array(position)
        if isinstance(expression, ast.Star):
            return np.ones(self.frame.length, dtype=np.int64)
        if isinstance(expression, ast.UnaryOp):
            return self._unary(expression)
        if isinstance(expression, ast.BinaryOp):
            return self._binary(expression)
        if isinstance(expression, ast.BoolOp):
            return self._bool(expression)
        if isinstance(expression, ast.Comparison):
            return self._comparison(expression)
        if isinstance(expression, ast.IsNull):
            return self._isnull(expression)
        if isinstance(expression, ast.Between):
            return self._between(expression)
        if isinstance(expression, ast.Like):
            return self._like(expression)
        if isinstance(expression, ast.InList):
            return self._in_list(expression)
        if isinstance(expression, ast.CaseWhen):
            return self._case(expression)
        if isinstance(expression, ast.Cast):
            return self._cast(expression)
        if isinstance(expression, ast.Extract):
            return self._extract(expression)
        if isinstance(expression, ast.Substring):
            return self._substring(expression)
        if isinstance(expression, ast.FunctionCall):
            return self._function(expression)
        if isinstance(expression, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
            raise VectorFallback("subqueries require row-at-a-time evaluation")
        raise VectorFallback(f"unsupported expression node {type(expression).__name__}")

    def evaluate_predicate(self, expression: ast.Expression) -> np.ndarray:
        """Evaluate a predicate to its is-TRUE boolean mask over the frame.

        UNKNOWN collapses to False here -- the SQL filter/HAVING semantics.
        Interior boolean structure (NOT/AND/OR) keeps the full three-valued
        result until this final collapse.
        """
        return truth_mask(self.evaluate(expression), self.frame.length)

    # -- operators ----------------------------------------------------------------

    def _unary(self, node: ast.UnaryOp) -> Any:
        operand = self.evaluate(node.operand)
        if node.operator == "not":
            return kleene_not(operand)
        if node.operator != "-":
            return operand
        return negate_values(operand)

    def _binary(self, node: ast.BinaryOp) -> Any:
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        operator = node.operator
        if isinstance(right, ast.IntervalLiteral) or isinstance(left, ast.IntervalLiteral):
            return self._interval_arithmetic(node, left, right)
        if self.overflow_guard and operator in ("+", "-", "*"):
            # widen and materialise every intermediate, as an overflow-guarded
            # engine version would.
            left = widen_guarded(left)
            right = widen_guarded(right)
        if operator == "||":
            return self._concat(left, right)
        if operator not in _PY_ARITH:
            raise ExecutionError(f"unsupported binary operator '{operator}'")
        return arith_arrays(operator, left, right)

    def _concat(self, left: Any, right: Any) -> Any:
        return concat_values(left, right)

    def _interval_arithmetic(self, node: ast.BinaryOp, left: Any, right: Any) -> Any:
        if isinstance(right, ast.IntervalLiteral) and isinstance(left, (int, np.integer)):
            # literal date +/- interval: compute exactly in the date domain.
            base = to_date(_ordinal_to_iso(int(left)))
            amount = right.value if node.operator == "+" else -right.value
            return date_to_ordinal(add_interval(base, amount, right.unit))
        if isinstance(right, ast.IntervalLiteral) and is_array(left):
            if right.unit in ("day", "week"):
                days = right.value * (7 if right.unit == "week" else 1)
                return left + (days if node.operator == "+" else -days)
            raise VectorFallback("month/year interval arithmetic on a column")
        raise VectorFallback("unsupported interval arithmetic form")

    def _bool(self, node: ast.BoolOp) -> Any:
        combine = kleene_and if node.operator == "and" else kleene_or
        combined = self.evaluate(node.operands[0])
        for operand in node.operands[1:]:
            combined = combine(combined, self.evaluate(operand))
        return combined

    def _comparison(self, node: ast.Comparison) -> Any:
        if node.quantifier is not None:
            raise VectorFallback("quantified comparisons require row-at-a-time evaluation")
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        left, right = _align_date_operands(node.left, node.right, left, right, self.frame)
        operator = node.operator
        if operator not in _NUMPY_CMP:
            raise ExecutionError(f"unsupported comparison operator '{operator}'")
        return compare_arrays(operator, left, right)

    def _isnull(self, node: ast.IsNull) -> Any:
        operand = self.evaluate(node.operand)
        return isnull_mask(operand, self.frame.length, node.negated)

    def _between(self, node: ast.Between) -> Any:
        operand = self.evaluate(node.operand)
        low = self.evaluate(node.low)
        high = self.evaluate(node.high)
        operand, low = _align_date_operands(node.operand, node.low, operand, low, self.frame)
        operand, high = _align_date_operands(node.operand, node.high, operand, high, self.frame)
        inside = kleene_and(compare_arrays(">=", operand, low),
                            compare_arrays("<=", operand, high))
        # NOT BETWEEN over a NULL operand or bound stays UNKNOWN (Kleene NOT).
        return kleene_not(inside) if node.negated else inside

    def _like(self, node: ast.Like) -> Any:
        operand = self.evaluate(node.operand)
        pattern = self.evaluate(node.pattern)
        if pattern is None:
            return None  # NULL pattern: UNKNOWN everywhere
        predicate = like_to_predicate(str(pattern))
        return like_mask(predicate, operand, node.negated, self.frame.length)

    def _in_list(self, node: ast.InList) -> Any:
        operand = self.evaluate(node.operand)
        values = [self.evaluate(item) for item in node.items]
        if any(is_array(value) for value in values):
            raise VectorFallback("IN list with non-constant members")
        members = [value for value in values if value is not None]
        has_null_member = len(members) != len(values)
        return in_list_mask(operand, members, has_null_member, node.negated,
                            self.frame.length)

    def _case(self, node: ast.CaseWhen) -> Any:
        default = self.evaluate(node.default) if node.default is not None else None
        default = case_branch_values(default)
        result = np.full(self.frame.length, default, dtype=object) \
            if not isinstance(default, np.ndarray) else default.astype(object)
        decided = np.zeros(self.frame.length, dtype=bool)
        for condition, branch in node.branches:
            mask = self.evaluate_predicate(condition) & ~decided
            value = case_branch_values(self.evaluate(branch))
            if isinstance(value, np.ndarray):
                result[mask] = value[mask]
            else:
                result[mask] = value
            decided |= mask
        return collapse_case_result(result)

    def _cast(self, node: ast.Cast) -> Any:
        operand = self.evaluate(node.operand)
        target = node.type_name.lower()
        if isinstance(operand, (np.ndarray, Nullable)):
            if target.startswith(("int", "bigint", "smallint")):
                return cast_array(operand, lambda array: array.astype(np.int64))
            if target.startswith(("float", "double", "real", "decimal", "numeric")):
                return cast_array(operand, lambda array: array.astype(np.float64))
            # string targets need the row value domain (a date column is
            # int64 ordinals here; str() of those would not match the row
            # engine's '2020-01-01'), so they take the row-at-a-time path.
            raise VectorFallback(f"CAST to '{node.type_name}' requires row semantics")
        return operand

    def _extract(self, node: ast.Extract) -> Any:
        operand = self.evaluate(node.operand)
        if node.field_name not in ("year", "month", "day"):
            raise ExecutionError(f"unsupported EXTRACT field '{node.field_name}'")
        return extract_date_field(operand, node.field_name)

    def _substring(self, node: ast.Substring) -> Any:
        operand = self.evaluate(node.operand)
        start = int(self.evaluate(node.start))
        length = int(self.evaluate(node.length)) if node.length is not None else None
        begin = max(start - 1, 0)
        end = None if length is None else begin + length

        def slice_one(value: Any) -> str | None:
            if value is None:
                return None  # row semantics: SUBSTRING over NULL is NULL
            text = str(value)
            return text[begin:end] if end is not None else text[begin:]

        if is_array(operand):
            return np.array([slice_one(value) for value in as_objects(operand)],
                            dtype=object)
        return slice_one(operand)

    def _function(self, node: ast.FunctionCall) -> Any:
        name = node.name.lower()
        if node.is_aggregate:
            raise ExecutionError(
                f"aggregate function '{name}' used outside an aggregation context"
            )
        arguments = [self.evaluate(argument) for argument in node.arguments]
        if any(argument is None for argument in arguments):
            return None  # row semantics: any NULL argument yields NULL
        if name == "abs":
            return abs_values(arguments[0])
        if name == "round":
            digits = int(arguments[1]) if len(arguments) > 1 else 0
            return round_values(arguments[0], digits)
        if name == "length":
            return length_values(arguments[0])
        if name in ("lower", "upper"):
            transform = str.lower if name == "lower" else str.upper
            return map_string_values(arguments[0], transform)
        raise VectorFallback(f"function '{name}' has no vectorised implementation")


def widen_guarded(value: Any) -> Any:
    """Overflow-guard widening of one arithmetic operand (shared with the
    kernel compiler)."""
    if isinstance(value, Nullable):
        return value.astype(np.longdouble)
    if isinstance(value, np.ndarray) and value.dtype != object:
        return np.ascontiguousarray(value.astype(np.longdouble))
    return value


def _ordinal_to_iso(ordinal: int) -> str:
    from repro.engine.types import ordinal_to_date

    return ordinal_to_date(ordinal).isoformat()


def _align_date_operands(left_node: ast.Expression, right_node: ast.Expression,
                         left: Any, right: Any, frame: ColFrame) -> tuple[Any, Any]:
    """Make sure string dates compared against date-ordinal columns line up.

    When one side is a date column (int64 ordinals) and the other a string
    literal (e.g. a grammar-injected ``'1995-03-15'``), the string side is
    converted to an ordinal.
    """
    def is_date_column(node: ast.Expression) -> bool:
        if isinstance(node, ast.ColumnRef):
            position = frame.position(node)
            if position is not None:
                return frame.columns[position].type_name == "date"
        return False

    if is_date_column(left_node) and isinstance(right, str):
        right = date_to_ordinal(right)
    if is_date_column(right_node) and isinstance(left, str):
        left = date_to_ordinal(left)
    return left, right
