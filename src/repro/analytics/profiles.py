"""Aggregate per-query execution profiles into a scan-efficiency report.

The driver attaches a compact profile dict (phase timings, metric counters,
plan-cache behaviour -- see :meth:`repro.engine.result.QueryResult.profile`)
to every submitted result's ``extras``.  This module rolls those profiles up
per target system so the platform can answer plan-quality questions the raw
timings cannot: how much of the data each system actually read (zone-map
scan efficiency), whether the plan cache amortised planning, and where the
per-phase time went.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EngineProfileSummary:
    """Aggregated execution profiles of one target system (dbms label)."""

    label: str
    queries: int = 0
    profiled: int = 0
    plan_cache_hits: int = 0
    #: results measured with concurrent driver workers: their wall-clock
    #: phase timings are GIL-inflated, so they are counted here and kept
    #: out of ``phase_seconds`` (the counter-based fields stay exact).
    timing_compromised: int = 0
    chunks_scanned: float = 0.0
    chunks_skipped: float = 0.0
    materialisations: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def scan_efficiency(self) -> float | None:
        """Fraction of storage chunks zone maps skipped (None = no scans)."""
        total = self.chunks_scanned + self.chunks_skipped
        if not total:
            return None
        return self.chunks_skipped / total

    @property
    def plan_cache_hit_rate(self) -> float | None:
        if not self.profiled:
            return None
        return self.plan_cache_hits / self.profiled

    def describe(self) -> dict:
        return {
            "label": self.label,
            "queries": self.queries,
            "profiled": self.profiled,
            "timing_compromised": self.timing_compromised,
            "scan_efficiency": self.scan_efficiency,
            "plan_cache_hit_rate": self.plan_cache_hit_rate,
            "chunks_scanned": self.chunks_scanned,
            "chunks_skipped": self.chunks_skipped,
            "materialisations": self.materialisations,
            "phase_seconds": dict(sorted(self.phase_seconds.items())),
        }


@dataclass
class ProfileReport:
    """Per-system profile summaries over one set of result records."""

    engines: dict[str, EngineProfileSummary] = field(default_factory=dict)

    def describe(self) -> dict:
        return {label: summary.describe()
                for label, summary in sorted(self.engines.items())}

    def lines(self) -> list[str]:
        """Render the report as aligned text lines (for the CLI / demo)."""
        rendered = []
        for label, summary in sorted(self.engines.items()):
            efficiency = summary.scan_efficiency
            hit_rate = summary.plan_cache_hit_rate
            line = (
                f"{label:<24} queries={summary.queries:<4} "
                f"scan_efficiency="
                f"{'n/a' if efficiency is None else f'{efficiency:.1%}'} "
                f"plan_cache="
                f"{'n/a' if hit_rate is None else f'{hit_rate:.0%} hits'}")
            if summary.timing_compromised:
                line += (f" timing_compromised={summary.timing_compromised}"
                         f" (concurrent driver workers)")
            rendered.append(line)
        return rendered


def _extras_of(record) -> dict:
    """The extras dict of a result record (object attribute or plain dict)."""
    extras = getattr(record, "extras", None)
    if extras is None and isinstance(record, dict):
        extras = record.get("extras")
    return extras or {}


def _label_of(record, profile: dict) -> str:
    label = getattr(record, "dbms_label", None)
    if label is None and isinstance(record, dict):
        label = record.get("dbms_label")
    return label or profile.get("engine") or "unknown"


def profiles_by_trace(records) -> dict[str, dict]:
    """Index the execution profiles carried by ``records`` by trace id.

    The driver stamps ``extras["trace_id"]`` (and mirrors it into the
    profile dict) on every traced submission, so this join lets
    ``analytics/timeline.py`` hang engine-side statistics -- phase
    timings, scan counters, plan-cache behaviour -- off the matching task
    timeline.  Records without a trace id are skipped; when a trace was
    submitted more than once (retries), the last profile wins, matching
    the platform's last-write-wins result semantics.
    """
    joined: dict[str, dict] = {}
    for record in records:
        extras = _extras_of(record)
        profile = extras.get("profile") or {}
        trace_id = profile.get("trace_id") or extras.get("trace_id")
        if trace_id:
            joined[str(trace_id)] = profile
    return joined


def profile_report(records) -> ProfileReport:
    """Aggregate the profiles carried by ``records`` into a report.

    ``records`` may be :class:`~repro.platform.models.ResultRecord` objects
    or plain dicts (e.g. parsed from the JSON API); records without a
    profile still count toward ``queries`` so coverage is visible.
    """
    report = ProfileReport()
    for record in records:
        extras = _extras_of(record)
        profile = extras.get("profile") or {}
        label = _label_of(record, profile)
        summary = report.engines.get(label)
        if summary is None:
            summary = report.engines[label] = EngineProfileSummary(label=label)
        summary.queries += 1
        if not profile:
            continue
        summary.profiled += 1
        if profile.get("plan_cache_hit"):
            summary.plan_cache_hits += 1
        counters = profile.get("counters") or {}
        summary.chunks_scanned += counters.get("scan.chunks_scanned", 0)
        summary.chunks_skipped += counters.get("scan.chunks_skipped", 0)
        summary.materialisations += counters.get("frame.materialisations", 0)
        if int(extras.get("concurrent_workers") or 0) > 1:
            # GIL-inflated wall clock: flag it, keep it out of the phase
            # aggregates (the metric counters above are unaffected).
            summary.timing_compromised += 1
            continue
        for phase, seconds in (profile.get("phases") or {}).items():
            summary.phase_seconds[phase] = \
                summary.phase_seconds.get(phase, 0.0) + seconds
    return report
