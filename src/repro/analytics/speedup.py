"""Relative speedup analysis (Figure 3).

"Relative speedup between different versions of a system can be directly
visualized.  [...] the base line query SF 1 Q1 runs about a factor 8 slower on
a 10 times larger database instance.  However, looking at the query variations
it actually shows a spread of a factor 8-14.  The outliers are of particular
interest."

The analysis pairs, per pool query, the best time on a *baseline* system with
the best time on a *comparison* system (two engines, two versions, or the same
engine over two database sizes) and reports the distribution of the ratios.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.pool.pool import QueryPool


@dataclass
class SpeedupPoint:
    """One query's speedup ratio between the two systems."""

    sql: str
    origin: str
    size: int
    baseline_time: float
    comparison_time: float

    @property
    def factor(self) -> float:
        """How many times slower the comparison system is (ratio > 1 = slower)."""
        return self.comparison_time / self.baseline_time


@dataclass
class SpeedupReport:
    """Distribution of speedup factors over the measured pool."""

    baseline: str
    comparison: str
    points: list[SpeedupPoint] = field(default_factory=list)

    @property
    def baseline_factor(self) -> float | None:
        """Factor of the seed (baseline) query, when it was measured."""
        for point in self.points:
            if point.origin == "seed":
                return point.factor
        return None

    def factors(self) -> list[float]:
        return [point.factor for point in self.points]

    def spread(self) -> tuple[float, float] | None:
        """(min, max) of the observed factors -- the paper's "spread of 8-14"."""
        factors = self.factors()
        if not factors:
            return None
        return min(factors), max(factors)

    def median(self) -> float | None:
        factors = self.factors()
        return statistics.median(factors) if factors else None

    def outliers(self, threshold: float = 1.5) -> list[SpeedupPoint]:
        """Points whose factor deviates from the median by ``threshold`` x."""
        center = self.median()
        if center is None:
            return []
        return [
            point for point in self.points
            if point.factor > center * threshold or point.factor < center / threshold
        ]

    def rows(self) -> list[tuple]:
        """Tabular form: (sql, origin, size, t_baseline, t_comparison, factor)."""
        return [
            (point.sql, point.origin, point.size,
             point.baseline_time, point.comparison_time, point.factor)
            for point in self.points
        ]


def speedup_report(pool: QueryPool, baseline: str, comparison: str) -> SpeedupReport:
    """Build the Figure 3 data series from a measured pool.

    ``baseline`` and ``comparison`` are system labels as recorded in the
    pool's observations (engine labels, or labels like ``columnstore@sf0.01``
    when comparing database sizes).
    """
    report = SpeedupReport(baseline=baseline, comparison=comparison)
    for entry in pool.entries():
        baseline_time = entry.best_time(baseline)
        comparison_time = entry.best_time(comparison)
        if baseline_time is None or comparison_time is None:
            continue
        report.points.append(SpeedupPoint(
            sql=entry.sql,
            origin=entry.origin,
            size=entry.query.size(),
            baseline_time=baseline_time,
            comparison_time=comparison_time,
        ))
    return report
