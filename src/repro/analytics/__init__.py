"""Visual-analytics data series.

The demo's GUI pages (Figures 2-7) are Bokeh plots; this subpackage computes
the data series behind each of them so benchmarks and examples can regenerate
the figures as tables/CSV:

* :mod:`repro.analytics.speedup` -- relative speedup of query variants
  between two systems or two database instances (Figure 3),
* :mod:`repro.analytics.components` -- dominant lexical components: per-term
  cost attribution and a PCA over the term-presence matrix (Figure 2),
* :mod:`repro.analytics.differential` -- the query-differential page: the
  syntactic diff of two variants plus their per-system performance
  (Figure 4),
* :mod:`repro.analytics.history` -- the experiment history: execution time
  per pool query, node sizes, morph edges and error nodes (Figure 7),
* :mod:`repro.analytics.views` -- the grammar page and query-pool page
  summaries (Figures 5 and 6),
* :mod:`repro.analytics.profiles` -- scan-efficiency / plan-quality report
  aggregated from the execution profiles the driver submits with results,
* :mod:`repro.analytics.timeline` -- per-task end-to-end timelines stitched
  from driver- and server-side span records sharing one trace id.
"""

from repro.analytics.speedup import SpeedupPoint, SpeedupReport, speedup_report
from repro.analytics.components import ComponentReport, component_report
from repro.analytics.differential import Differential, differential
from repro.analytics.history import HistoryNode, HistoryEdge, ExperimentHistory, experiment_history
from repro.analytics.views import grammar_view, pool_view
from repro.analytics.profiles import (
    EngineProfileSummary,
    ProfileReport,
    profile_report,
    profiles_by_trace,
)
from repro.analytics.timeline import (
    TaskTimeline,
    read_span_log,
    stitch_timelines,
    timeline_lines,
    timeline_report,
)

__all__ = [
    "SpeedupPoint",
    "SpeedupReport",
    "speedup_report",
    "ComponentReport",
    "component_report",
    "Differential",
    "differential",
    "HistoryNode",
    "HistoryEdge",
    "ExperimentHistory",
    "experiment_history",
    "grammar_view",
    "pool_view",
    "EngineProfileSummary",
    "ProfileReport",
    "profile_report",
    "profiles_by_trace",
    "TaskTimeline",
    "read_span_log",
    "stitch_timelines",
    "timeline_lines",
    "timeline_report",
]
