"""Dominant lexical components (Figure 2).

"Identification of dominant components of the lexical terms in the queries
may indicate costly ones.  For instance, the dominant term in Q1 for MonetDB
is ``sum(l_extendedprice*(1 - l_discount) * (1 + l_tax)) as sum_charge``."

Two complementary analyses are provided:

* **per-term cost attribution** -- for every lexical term, compare the mean
  execution time of pool queries that contain the term with those that do
  not; the difference is the term's marginal cost, and the most expensive
  term is the "dominant component",
* **principal components** -- a PCA over the (queries x terms) presence
  matrix weighted by execution time, which is what the scatter plot of the
  figure projects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pool.pool import QueryPool


@dataclass
class TermContribution:
    """Cost attribution of one lexical term."""

    term: str
    with_term_mean: float
    without_term_mean: float
    queries_with_term: int

    @property
    def marginal_cost(self) -> float:
        """Mean extra time of queries containing the term (seconds)."""
        return self.with_term_mean - self.without_term_mean


@dataclass
class ComponentReport:
    """The Figure 2 data: term attribution plus the PCA projection."""

    system: str
    contributions: list[TermContribution] = field(default_factory=list)
    #: per-query 2-D PCA coordinates (same order as ``query_sqls``)
    projection: np.ndarray | None = None
    explained_variance: list[float] = field(default_factory=list)
    query_sqls: list[str] = field(default_factory=list)
    terms: list[str] = field(default_factory=list)

    def dominant(self, top: int = 5) -> list[TermContribution]:
        """The ``top`` terms with the highest marginal cost."""
        ranked = sorted(self.contributions, key=lambda entry: entry.marginal_cost,
                        reverse=True)
        return ranked[:top]

    def dominant_term(self) -> str | None:
        ranked = self.dominant(top=1)
        return ranked[0].term if ranked else None


def component_report(pool: QueryPool, system: str, components: int = 2) -> ComponentReport:
    """Build the dominant-component report for one measured system."""
    measured = [entry for entry in pool.entries() if entry.best_time(system) is not None]
    report = ComponentReport(system=system)
    if not measured:
        return report

    times = np.array([entry.best_time(system) for entry in measured], dtype=float)
    report.query_sqls = [entry.sql for entry in measured]

    # collect the lexical terms seen across the measured queries
    terms = sorted({term for entry in measured for term in entry.query.terms})
    report.terms = terms
    if not terms:
        return report

    presence = np.zeros((len(measured), len(terms)), dtype=float)
    for row, entry in enumerate(measured):
        for column, term in enumerate(terms):
            if entry.query.uses(term):
                presence[row, column] = 1.0

    # per-term attribution
    for column, term in enumerate(terms):
        mask = presence[:, column] > 0
        if mask.any():
            with_mean = float(times[mask].mean())
        else:
            with_mean = 0.0
        without_mean = float(times[~mask].mean()) if (~mask).any() else 0.0
        report.contributions.append(TermContribution(
            term=term,
            with_term_mean=with_mean,
            without_term_mean=without_mean,
            queries_with_term=int(mask.sum()),
        ))

    # PCA over the time-weighted presence matrix
    weighted = presence * times[:, np.newaxis]
    centered = weighted - weighted.mean(axis=0, keepdims=True)
    if centered.shape[0] >= 2:
        _, singular_values, right_vectors = np.linalg.svd(centered, full_matrices=False)
        keep = min(components, right_vectors.shape[0])
        report.projection = centered @ right_vectors[:keep].T
        total = float((singular_values ** 2).sum()) or 1.0
        report.explained_variance = [
            float(value ** 2) / total for value in singular_values[:keep]
        ]
    return report
