"""Grammar-page and pool-page summaries (Figures 5 and 6).

These two figures are form-like GUI pages; their informational content is the
baseline query with its derived grammar (Figure 5) and the current pool with
its generation strategies and term guidance (Figure 6).  The view builders
return plain dictionaries that the CLI and the benchmarks print as tables.
"""

from __future__ import annotations

from repro.core import serialize_grammar, space_report
from repro.core.model import Grammar
from repro.pool.guidance import Guidance
from repro.pool.pool import QueryPool


def grammar_view(baseline_sql: str, grammar: Grammar) -> dict:
    """The Figure 5 page: baseline query, grammar text, rule and space summary."""
    report = space_report(grammar)
    return {
        "baseline": baseline_sql.strip(),
        "grammar": serialize_grammar(grammar),
        "rules": len(grammar),
        "lexical_rules": len(grammar.lexical_rules()),
        "tags": report.tags,
        "templates": report.template_label(),
        "space": report.space_label(),
    }


def pool_view(pool: QueryPool, guidance: Guidance | None = None) -> dict:
    """The Figure 6 page: pool contents, per-origin counts and active guidance."""
    origins: dict[str, int] = {}
    for entry in pool.entries():
        origins[entry.origin] = origins.get(entry.origin, 0) + 1
    guidance = guidance or Guidance()
    return {
        "size": len(pool),
        "templates": len(pool.templates),
        "truncated": pool.truncated,
        "by_origin": origins,
        "errors": len(pool.errors()),
        "guidance": guidance.describe(),
        "queries": [
            {
                "sequence": entry.sequence,
                "origin": entry.origin,
                "size": entry.query.size(),
                "sql": entry.sql,
            }
            for entry in pool.entries()
        ],
    }
