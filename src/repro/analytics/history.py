"""Experiment history (Figure 7).

"Figure 7 shows the execution time of queries in a single experiment.  The
dashed lines illustrate the morphing action taken.  The color coding for
alter, expand, and prune morphing is purple, green, and blue, respectively.
Queries that result in an error are shown as yellow dots.  [...] The node size
illustrates the number of components in the query.  Hovering over a node shows
the details of the run."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pool.morph import STRATEGY_COLORS, Strategy
from repro.pool.pool import QueryPool

#: colour of error nodes in the history plot.
ERROR_COLOR = "yellow"
#: colour of ordinary measured nodes.
NODE_COLOR = "steelblue"


@dataclass
class HistoryNode:
    """One pool query in the experiment-history scatter plot."""

    sequence: int
    sql: str
    origin: str
    size: int
    elapsed: float | None
    error: bool
    color: str
    details: dict = field(default_factory=dict)


@dataclass
class HistoryEdge:
    """A dashed morph edge between a parent node and a child node."""

    parent_sequence: int
    child_sequence: int
    strategy: str
    color: str


@dataclass
class ExperimentHistory:
    """The full Figure 7 data set for one system."""

    system: str
    nodes: list[HistoryNode] = field(default_factory=list)
    edges: list[HistoryEdge] = field(default_factory=list)

    def error_nodes(self) -> list[HistoryNode]:
        return [node for node in self.nodes if node.error]

    def measured_nodes(self) -> list[HistoryNode]:
        return [node for node in self.nodes if node.elapsed is not None]

    def series(self) -> list[tuple]:
        """(sequence, elapsed, size, origin, error) rows: the plotted series."""
        return [
            (node.sequence, node.elapsed, node.size, node.origin, node.error)
            for node in self.nodes
        ]


def experiment_history(pool: QueryPool, system: str) -> ExperimentHistory:
    """Build the experiment-history data for ``system`` from a measured pool."""
    history = ExperimentHistory(system=system)
    sequence_by_key = {entry.key: entry.sequence for entry in pool.entries()}

    for entry in pool.entries():
        elapsed = entry.best_time(system)
        error = entry.has_error(system)
        if error:
            color = ERROR_COLOR
        elif entry.origin in Strategy.names():
            color = STRATEGY_COLORS[Strategy(entry.origin)]
        else:
            color = NODE_COLOR
        details = {
            "origin": entry.origin,
            "observations": len(entry.observations),
            "systems": sorted(entry.observed_systems()),
        }
        history.nodes.append(HistoryNode(
            sequence=entry.sequence,
            sql=entry.sql,
            origin=entry.origin,
            size=entry.query.size(),
            elapsed=elapsed,
            error=error,
            color=color,
            details=details,
        ))
        if entry.parent_key is not None and entry.parent_key in sequence_by_key:
            strategy = entry.origin if entry.origin in Strategy.names() else "alter"
            history.edges.append(HistoryEdge(
                parent_sequence=sequence_by_key[entry.parent_key],
                child_sequence=entry.sequence,
                strategy=strategy,
                color=STRATEGY_COLORS.get(Strategy(strategy), NODE_COLOR),
            ))
    return history
