"""Query differentials (Figure 4).

"For this we use a differential page.  It highlights the differences in query
formulation and gives an overview of the performance on various systems.
This provides valuable insights to focus experimentation and engineering."
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from repro.pool.pool import PoolEntry, QueryPool


@dataclass
class Differential:
    """The diff between two query variants plus their measured performance."""

    left_sql: str
    right_sql: str
    #: unified-diff lines of the two formulations
    diff_lines: list[str] = field(default_factory=list)
    #: lexical terms only present in the left / right variant
    left_only_terms: list[str] = field(default_factory=list)
    right_only_terms: list[str] = field(default_factory=list)
    #: per-system best times: {system: (left_time, right_time)}
    timings: dict[str, tuple[float | None, float | None]] = field(default_factory=dict)

    def ratio(self, system: str) -> float | None:
        """right/left time ratio on ``system`` (None when either is missing)."""
        left, right = self.timings.get(system, (None, None))
        if not left or not right:
            return None
        return right / left

    def summary_rows(self) -> list[tuple]:
        """(system, left_time, right_time, ratio) rows for tabular output."""
        rows = []
        for system, (left, right) in sorted(self.timings.items()):
            ratio = self.ratio(system)
            rows.append((system, left, right, ratio))
        return rows


def differential(pool: QueryPool, left: PoolEntry, right: PoolEntry,
                 systems: list[str] | None = None) -> Differential:
    """Build the differential page data for two pool entries."""
    left_terms = set(left.query.terms)
    right_terms = set(right.query.terms)
    if systems is None:
        systems = sorted(left.observed_systems() | right.observed_systems())

    diff_lines = list(difflib.unified_diff(
        _layout(left.sql), _layout(right.sql),
        fromfile="variant-a", tofile="variant-b", lineterm="",
    ))
    result = Differential(
        left_sql=left.sql,
        right_sql=right.sql,
        diff_lines=diff_lines,
        left_only_terms=sorted(left_terms - right_terms),
        right_only_terms=sorted(right_terms - left_terms),
    )
    for system in systems:
        result.timings[system] = (left.best_time(system), right.best_time(system))
    return result


def _layout(sql: str) -> list[str]:
    """Break a one-line query into clause-per-line form so diffs are readable."""
    breakers = [" FROM ", " WHERE ", " GROUP BY ", " HAVING ", " ORDER BY ", " LIMIT ",
                " from ", " where ", " group by ", " having ", " order by ", " limit "]
    lines = [sql]
    for breaker in breakers:
        next_lines: list[str] = []
        for line in lines:
            pieces = line.split(breaker)
            next_lines.append(pieces[0])
            next_lines.extend(breaker.strip() + " " + piece for piece in pieces[1:])
        lines = next_lines
    return [line.strip() for line in lines if line.strip()]
