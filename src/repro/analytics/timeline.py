"""Stitch driver- and server-side span records into per-task timelines.

The platform telemetry leaves span records in several places: the
service's :class:`~repro.obs.SpanRecorder` (enqueue / claim / sweep /
submit / http spans), the driver runner's recorder (driver.execute /
driver.backoff / driver.submit plus the engine's exported
``engine.*`` tree), result ``extras["spans"]`` shipped with
submissions, flight-recorder entries, and JSONL span logs.  All of them
use the same flat record shape with epoch-second timestamps and share
one trace id per task, so this module can merge any combination of
sources and answer the operational question the raw spans cannot:
*where did the time of task N go* -- queue wait, execution, retry
backoff, or submission?
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: span names whose summed durations define each derived phase.
_PHASE_SPANS = {
    "execute": ("driver.execute",),
    "backoff": ("driver.backoff",),
    "submit": ("driver.submit",),
}


def read_span_log(path: str | Path) -> list[dict]:
    """Load span records (or flight entries) from a JSONL file.

    Flight-recorder entries embed their task's span records under a
    ``"spans"`` key; those are flattened into the returned list so a
    flight log feeds :func:`stitch_timelines` directly.  Blank and
    malformed lines are skipped -- a half-written line from a crashed
    process must not make the post-mortem tooling crash too.
    """
    records: list[dict] = []
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(entry, dict):
            continue
        if "spans" in entry and "span_id" not in entry:  # a flight entry
            records.extend(span for span in entry.get("spans") or []
                           if isinstance(span, dict))
        else:
            records.append(entry)
    return records


@dataclass
class TaskTimeline:
    """One task's end-to-end story, stitched from its trace id."""

    trace_id: str
    task_id: int | None = None
    outcome: str | None = None
    attempts: int = 0
    spans: list[dict] = field(default_factory=list)
    phases: dict[str, float] = field(default_factory=dict)
    #: the engine execution profile joined via ``profiles_by_trace``.
    profile: dict | None = None

    @property
    def start(self) -> float | None:
        return self.spans[0]["start"] if self.spans else None

    @property
    def total_seconds(self) -> float:
        if not self.spans:
            return 0.0
        ends = [span["end"] for span in self.spans if span.get("end") is not None]
        if not ends:
            return 0.0
        return max(ends) - self.spans[0]["start"]

    def span_names(self) -> list[str]:
        return [span["name"] for span in self.spans]

    def describe(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "task": self.task_id,
            "outcome": self.outcome,
            "attempts": self.attempts,
            "total_seconds": self.total_seconds,
            "phases": dict(sorted(self.phases.items())),
            "spans": self.spans,
            "profile": self.profile,
        }

    def lines(self) -> list[str]:
        """Render the timeline as an indented span tree (for the CLI)."""
        phases = " ".join(f"{name}={seconds:.3f}s"
                          for name, seconds in sorted(self.phases.items()))
        header = f"trace {self.trace_id[:12]} task={self.task_id}"
        if self.outcome:
            header += f" outcome={self.outcome}"
        if self.attempts:
            header += f" attempts={self.attempts}"
        if phases:
            header += f" ({phases})"
        rendered = [header]
        if not self.spans:
            return rendered
        origin = self.spans[0]["start"]
        by_id = {span["span_id"]: span for span in self.spans}
        children: dict[str | None, list[dict]] = {}
        roots: list[dict] = []
        for span in self.spans:
            parent = span.get("parent_span_id")
            if parent in by_id:  # dangling parents (trimmed ring) -> roots
                children.setdefault(parent, []).append(span)
            else:
                roots.append(span)

        def render(span: dict, depth: int) -> None:
            end = span.get("end")
            width = ((end - span["start"]) * 1000.0) if end is not None else 0.0
            detail = " ".join(
                f"{key}={value}"
                for key, value in sorted((span.get("attributes") or {}).items())
                if key in ("attempt", "outcome", "error", "rows", "dedup",
                           "operation", "endpoint", "status"))
            line = (f"{'  ' * (depth + 1)}{span['name']:<18} "
                    f"+{span['start'] - origin:8.3f}s {width:8.1f}ms")
            if detail:
                line += f"  {detail}"
            rendered.append(line)
            for child in children.get(span["span_id"], []):
                render(child, depth + 1)

        for root in roots:
            render(root, 0)
        return rendered


def _collect_spans(results, span_sources) -> list[dict]:
    """Merge span records from every source, deduplicated by span id.

    A span can legitimately show up twice -- the driver records it, ships
    it in ``extras["spans"]``, and the service ingests the copy -- so the
    first occurrence wins.
    """
    merged: list[dict] = []
    seen: set[str] = set()

    def add(record) -> None:
        if not isinstance(record, dict) or "span_id" not in record:
            return
        if record["span_id"] in seen:
            return
        seen.add(record["span_id"])
        merged.append(record)

    for source in span_sources:
        records = source.spans() if hasattr(source, "spans") else source
        for record in records:
            add(record)
    for result in results or ():
        extras = getattr(result, "extras", None)
        if extras is None and isinstance(result, dict):
            extras = result.get("extras")
        for record in (extras or {}).get("spans") or []:
            add(record)
    return merged


def _derive_phases(spans: list[dict], created_at: float | None) -> dict[str, float]:
    phases: dict[str, float] = {}
    for phase, names in _PHASE_SPANS.items():
        matching = [span for span in spans if span["name"] in names]
        if phase == "submit" and not matching:
            # no driver-side submit span (e.g. an in-process client, or a
            # flight log of server records only): the server's is close
            # enough -- it just excludes the wire time.
            matching = [span for span in spans if span["name"] == "submit"]
        total = sum((span["end"] or span["start"]) - span["start"]
                    for span in matching if span.get("end") is not None)
        if matching:
            phases[phase] = total
    claims = [span for span in spans if span["name"] == "claim"]
    if claims:
        first_claim = min(span["start"] for span in claims)
        enqueues = [span for span in spans if span["name"] == "enqueue"]
        queued_at = created_at
        if enqueues:
            queued_at = min(span["start"] for span in enqueues)
        if queued_at is not None:
            phases["queue_wait"] = max(0.0, first_claim - queued_at)
    return phases


def _field(record, name: str):
    value = getattr(record, name, None)
    if value is None and isinstance(record, dict):
        value = record.get(name)
    return value


def stitch_timelines(tasks=(), results=(), span_sources=(),
                     profiles: dict | None = None) -> list[TaskTimeline]:
    """Group span records by trace id into :class:`TaskTimeline` objects.

    ``tasks`` (Task objects or dicts) seed the per-trace metadata --
    task id, queue-entry time, status, attempts; traces with spans but no
    matching task still get a timeline (the spans may come from a flight
    log long after the queue is gone).  ``span_sources`` is any mix of
    :class:`~repro.obs.SpanRecorder` instances and plain record
    iterables; ``results`` contribute the records shipped in their
    ``extras["spans"]``.  ``profiles`` (from
    :func:`repro.analytics.profiles_by_trace`) attaches engine execution
    profiles to the matching timelines.  Timelines come back ordered by
    first span start.
    """
    spans = _collect_spans(results, span_sources)
    by_trace: dict[str, list[dict]] = {}
    for record in spans:
        trace_id = record.get("trace_id")
        if trace_id:
            by_trace.setdefault(trace_id, []).append(record)

    tasks_by_trace: dict[str, object] = {}
    for task in tasks or ():
        trace_id = _field(task, "trace_id")
        if trace_id:
            tasks_by_trace[trace_id] = task

    timelines: list[TaskTimeline] = []
    for trace_id in set(by_trace) | set(tasks_by_trace):
        records = sorted(by_trace.get(trace_id, ()),
                         key=lambda record: (record["start"],
                                             record.get("end") or record["start"]))
        task = tasks_by_trace.get(trace_id)
        created_at = _field(task, "created_at") if task is not None else None
        timeline = TaskTimeline(
            trace_id=trace_id,
            task_id=_field(task, "id") if task is not None else None,
            spans=records,
            phases=_derive_phases(records, created_at),
        )
        attempts = [span["attributes"].get("attempt")
                    for span in records
                    if isinstance(span.get("attributes"), dict)
                    and isinstance(span["attributes"].get("attempt"), int)]
        task_attempts = _field(task, "attempts") if task is not None else None
        timeline.attempts = max([*attempts, task_attempts or 0, 0])
        submits = [span for span in records if span["name"] == "submit"]
        if submits:
            timeline.outcome = (submits[-1].get("attributes") or {}).get("outcome")
        if timeline.outcome is None and task is not None:
            timeline.outcome = _field(task, "status")
        if profiles:
            timeline.profile = profiles.get(trace_id)
        timelines.append(timeline)
    timelines.sort(key=lambda timeline: (timeline.start is None,
                                         timeline.start or 0.0,
                                         timeline.trace_id))
    return timelines


def timeline_report(timelines: list[TaskTimeline]) -> dict:
    """A JSON-ready artifact: every timeline plus aggregate phase totals."""
    totals: dict[str, float] = {}
    for timeline in timelines:
        for phase, seconds in timeline.phases.items():
            totals[phase] = totals.get(phase, 0.0) + seconds
    return {
        "tasks": len(timelines),
        "phase_totals": dict(sorted(totals.items())),
        "timelines": [timeline.describe() for timeline in timelines],
    }


def timeline_lines(timelines: list[TaskTimeline]) -> list[str]:
    """Render every timeline, blank-line separated (CLI output)."""
    rendered: list[str] = []
    for index, timeline in enumerate(timelines):
        if index:
            rendered.append("")
        rendered.extend(timeline.lines())
    return rendered
