"""Query-scoped execution tracing: span trees and their text rendering.

A :class:`QueryTrace` records one execution as a tree of :class:`Span`
objects -- parse, plan, compile, then one span per physical operator
(scan / join / filter / aggregate / project / order).  Every span carries
wall time, rows in/out and free-form attributes (chunks scanned/skipped,
selection-vector sizes, cache hits).  The engine opens the trace, both
executors emit operator spans into it, and ``EXPLAIN ANALYZE`` renders the
annotated tree.

Tracing is strictly opt-in: with no trace attached the executors touch a
shared :data:`NULL_SPAN` singleton whose operations are all no-ops, keeping
the overhead on the hot path to a predictable few attribute checks (gated
below 5% by ``benchmarks/test_bench_observability.py``).

The span *stack* belongs to the coordinating thread only.  Morsel-parallel
operators give each worker its own span lane instead: the worker constructs
a detached :class:`Span` (never touching the trace's stack), stamps it via
:meth:`Span.close`, and the coordinator appends the finished lanes under the
open operator span -- so worker lanes nest inside their operator's window
and aggregate attributes (``chunks_scanned`` / ``chunks_skipped`` summed
over lanes) keep the trace invariants the fuzzer asserts.
"""

from __future__ import annotations

import time
from typing import Any, Iterator


class Span:
    """One timed node of the trace tree."""

    __slots__ = ("name", "started", "ended", "rows_in", "rows_out",
                 "attributes", "children")

    def __init__(self, name: str):
        self.name = name
        self.started = time.perf_counter()
        self.ended: float | None = None
        self.rows_in: int | None = None
        self.rows_out: int | None = None
        self.attributes: dict[str, Any] = {}
        self.children: list["Span"] = []

    @property
    def elapsed(self) -> float:
        """Span wall time in seconds (up to now while still open)."""
        end = self.ended if self.ended is not None else time.perf_counter()
        return end - self.started

    def set(self, rows_in: int | None = None, rows_out: int | None = None,
            **attributes) -> "Span":
        """Record row counts and/or attributes on this span."""
        if rows_in is not None:
            self.rows_in = rows_in
        if rows_out is not None:
            self.rows_out = rows_out
        if attributes:
            self.attributes.update(attributes)
        return self

    def close(self) -> "Span":
        """Stamp the end time of a detached span (idempotent).

        Worker lanes are plain spans owned by their pool thread -- no trace
        stack involved -- so they are closed explicitly rather than through
        a :class:`_SpanContext`.
        """
        if self.ended is None:
            self.ended = time.perf_counter()
        return self

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-friendly form (the driver ships these to the platform)."""
        return {
            "name": self.name,
            "elapsed": self.elapsed,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }


class _NullSpan:
    """Shared do-nothing span/context: the disabled-tracing fast path."""

    __slots__ = ()

    def set(self, rows_in=None, rows_out=None, **attributes) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


#: singleton handed out wherever tracing is off.
NULL_SPAN = _NullSpan()


class _SpanContext:
    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "QueryTrace", span: Span):
        self._trace = trace
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *_exc) -> bool:
        self._span.ended = time.perf_counter()
        stack = self._trace._stack
        if stack and stack[-1] is self._span:
            stack.pop()
        return False


class QueryTrace:
    """The span tree of one query execution."""

    def __init__(self, sql: str = "", engine: str = ""):
        self.sql = sql
        self.engine = engine
        self.root = Span("query")
        if sql:
            self.root.attributes["sql"] = sql
        self._stack: list[Span] = [self.root]

    def span(self, name: str, **attributes) -> _SpanContext:
        """Open a child span of the innermost open span (a context manager)."""
        span = Span(name)
        if attributes:
            span.attributes.update(attributes)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def finish(self) -> "QueryTrace":
        """Close the root span (idempotent)."""
        if self.root.ended is None:
            self.root.ended = time.perf_counter()
        del self._stack[1:]
        return self

    def spans(self) -> Iterator[Span]:
        """Every span of the tree, pre-order."""
        return self.root.walk()

    def find(self, name: str) -> Span | None:
        """First span named ``name`` in pre-order, or None."""
        for span in self.spans():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list[Span]:
        return [span for span in self.spans() if span.name == name]

    def to_dict(self) -> dict:
        return {"sql": self.sql, "engine": self.engine, "root": self.root.to_dict()}


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _draw_tree(label_of, children_of, node, prefix: str = "") -> list[str]:
    lines = [label_of(node)] if not prefix else []
    children = children_of(node)
    for index, child in enumerate(children):
        last = index == len(children) - 1
        connector = "└─ " if last else "├─ "
        lines.append(prefix + connector + label_of(child))
        extension = "   " if last else "│  "
        lines.extend(_draw_tree(label_of, children_of, child, prefix + extension)[0:])
    return lines


def _span_label(span: Span) -> str:
    parts = [f"{span.name} ({span.elapsed * 1000:.3f} ms"]
    if span.rows_in is not None and span.rows_out is not None:
        parts.append(f", rows {span.rows_in} -> {span.rows_out}")
    elif span.rows_out is not None:
        parts.append(f", rows={span.rows_out}")
    parts.append(")")
    attributes = {key: value for key, value in span.attributes.items() if key != "sql"}
    if attributes:
        rendered = ", ".join(f"{key}={value}" for key, value in attributes.items())
        parts.append(f" [{rendered}]")
    return "".join(parts)


def _header(engine: str, sql: str) -> str:
    flattened = " ".join(sql.split())
    if engine and flattened:
        return f"{engine}: {flattened}"
    return engine or flattened


def format_trace(trace: QueryTrace) -> list[str]:
    """Render a finished trace as an indented span tree (one line per span)."""
    header = _header(trace.engine, trace.sql)
    lines = [header] if header else []
    lines.extend(_draw_tree(_span_label, lambda span: span.children, trace.root))
    return lines


def format_plan(plan, engine: str = "") -> list[str]:
    """Render a prepared :class:`QueryPlan` as a logical operator tree.

    Works off the plan's own structures (duck-typed, so :mod:`repro.obs`
    stays free of engine imports): the nesting is Limit / OrderBy /
    Distinct / Aggregate-or-Project over Filter over Join over Scans, with
    derived tables recursing into their sub-blocks.
    """
    tree = _plan_node(plan, plan.select)
    header = _header(engine, plan.sql or "")
    lines = [header] if header else []
    lines.extend(_draw_tree(lambda node: node["label"],
                            lambda node: node["children"], tree))
    return lines


def _plan_node(plan, select) -> dict:
    block = plan.block(select)
    described = block.describe() if block is not None else {}
    pushdown = described.get("pushdown", {})

    scans: list[dict] = []
    for item in select.from_items:
        scans.append(_from_item_node(plan, item, pushdown))

    if len(scans) > 1:
        order = described.get("join_order", [])
        join_label = (f"Join (order: {' -> '.join(str(i) for i in order)}, "
                      f"equi={described.get('equi_joins', 0)})")
        body: list[dict] = [{"label": join_label, "children": scans}]
    else:
        body = scans

    residual = described.get("residual", 0)
    if residual:
        body = [{"label": f"Filter ({residual} residual predicate"
                          f"{'s' if residual != 1 else ''})",
                 "children": body}]

    output = ", ".join(described.get("output", []))
    top_label = f"Aggregate (output: {output})" if described.get("aggregated") \
        else f"Project (output: {output})"
    node = {"label": top_label, "children": body}

    if getattr(select, "distinct", False):
        node = {"label": "Distinct", "children": [node]}
    if getattr(select, "order_by", None):
        node = {"label": f"OrderBy ({len(select.order_by)} keys)", "children": [node]}
    if getattr(select, "limit", None) is not None:
        node = {"label": f"Limit {select.limit}", "children": [node]}
    return node


def _from_item_node(plan, item, pushdown: dict) -> dict:
    name = getattr(item, "name", None)
    if name is not None:  # TableRef
        binding = getattr(item, "binding", name)
        label = f"Scan {name}"
        if binding and binding.lower() != name.lower():
            label += f" as {binding}"
        predicates = pushdown.get(binding.lower() if binding else name.lower(), 0)
        if predicates:
            label += f" (pushdown: {predicates} predicate{'s' if predicates != 1 else ''})"
        return {"label": label, "children": []}
    subquery = getattr(item, "subquery", None)
    if subquery is not None:  # SubqueryRef
        alias = getattr(item, "alias", "?")
        return {"label": f"Derived {alias}",
                "children": [_plan_node(plan, subquery)]}
    left = getattr(item, "left", None)
    if left is not None:  # explicit Join item
        kind = getattr(item, "kind", "inner")
        return {"label": f"{kind.title()}Join",
                "children": [_from_item_node(plan, item.left, pushdown),
                             _from_item_node(plan, item.right, pushdown)]}
    return {"label": type(item).__name__, "children": []}
