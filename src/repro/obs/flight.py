"""Telemetry configuration and the slow-task flight recorder.

:class:`TelemetryConfig` is the one knob bundle shared by the driver's
``[telemetry]`` config section and the service constructor: whether
spans are recorded at all, how many are retained, what counts as "slow",
and where (if anywhere) flight entries are persisted.

:class:`FlightRecorder` is the platform's black box: a bounded ring of
the *worst* task executions -- every failed/dead-lettered task, plus the
N slowest successful ones -- each entry bundling the task's identity,
outcome, duration and its full span set at the moment it went terminal.
Keeping whole traces only for outliers is what makes always-on tracing
affordable: the common case costs one comparison against the current
slow threshold, while the interesting cases (the p99, the retry storm,
the dead letter) keep enough context to be debugged after the fact.
Entries can additionally be appended to a JSONL sink for post-mortems
that outlive the process.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Mapping


def _get(mapping: Mapping, key: str, fallback: Any) -> Any:
    value = mapping.get(key)
    return fallback if value in (None, "") else value


class TelemetryConfig:
    """Knobs for platform telemetry (spans, flight recorder, sinks)."""

    __slots__ = ("enabled", "span_capacity", "flight_capacity",
                 "slow_task_seconds", "flight_log", "span_log")

    def __init__(self, enabled: bool = True, span_capacity: int = 2048,
                 flight_capacity: int = 32, slow_task_seconds: float = 1.0,
                 flight_log: str | None = None, span_log: str | None = None):
        self.enabled = enabled
        self.span_capacity = span_capacity
        self.flight_capacity = flight_capacity
        self.slow_task_seconds = slow_task_seconds
        self.flight_log = flight_log
        self.span_log = span_log

    @classmethod
    def disabled(cls) -> "TelemetryConfig":
        return cls(enabled=False, span_capacity=0, flight_capacity=0)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, str]) -> "TelemetryConfig":
        """Build from a config-file section (string values, all optional)."""
        enabled = str(_get(mapping, "enabled", "true")).strip().lower() \
            in ("1", "true", "yes", "on")
        config = cls(
            enabled=enabled,
            span_capacity=int(_get(mapping, "span_capacity", 2048)),
            flight_capacity=int(_get(mapping, "flight_capacity", 32)),
            slow_task_seconds=float(_get(mapping, "slow_task_seconds", 1.0)),
            flight_log=_get(mapping, "flight_log", None),
            span_log=_get(mapping, "span_log", None),
        )
        if not enabled:
            config.span_capacity = 0
            config.flight_capacity = 0
        return config

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class FlightRecorder:
    """Bounded retention of the slowest and failed task traces.

    Failures always make the ring (bounded separately, oldest evicted);
    successes compete on duration for the ``capacity`` slowest slots and
    must additionally clear ``slow_task_seconds``.  Both sets are small
    by construction, so :meth:`record` is O(capacity) in the worst case
    and one float comparison in the common fast-task case.
    """

    def __init__(self, capacity: int = 32, slow_task_seconds: float = 1.0,
                 sink_path: str | None = None):
        self.capacity = capacity
        self.slow_task_seconds = slow_task_seconds
        self.sink_path = sink_path
        self._lock = threading.Lock()
        self._failed: deque[dict] = deque(maxlen=capacity if capacity > 0 else 1)
        self._slowest: list[dict] = []  # kept sorted, slowest first

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def record(self, task_id: str, trace_id: str, outcome: str,
               duration: float, spans: list[dict] | None = None,
               **details) -> dict | None:
        """Consider one terminal task for retention; returns the entry kept.

        ``outcome`` is the task's final disposition (``done``, ``failed``,
        ``dead_letter``...); anything other than ``done`` is treated as a
        failure and always retained.
        """
        if self.capacity <= 0:
            return None
        entry = {
            "task": task_id,
            "trace_id": trace_id,
            "outcome": outcome,
            "duration": duration,
            "spans": list(spans or ()),
        }
        entry.update(details)
        kept = False
        with self._lock:
            if outcome != "done":
                self._failed.append(entry)
                kept = True
            elif duration >= self.slow_task_seconds:
                self._slowest.append(entry)
                self._slowest.sort(key=lambda item: item["duration"], reverse=True)
                if len(self._slowest) > self.capacity:
                    self._slowest.pop()
                kept = entry in self._slowest
        if kept and self.sink_path:
            with open(self.sink_path, "a", encoding="utf-8") as sink:
                sink.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        return entry if kept else None

    def entries(self) -> list[dict]:
        """Everything retained: failures (oldest first), then slowest."""
        with self._lock:
            return list(self._failed) + list(self._slowest)

    def __len__(self) -> int:
        with self._lock:
            return len(self._failed) + len(self._slowest)
