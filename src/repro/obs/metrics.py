"""Per-query metrics contexts and the process-level metrics registry.

Two complementary pieces:

* :class:`MetricsContext` -- a query-scoped counter set.  The engine opens
  one context per execution and *activates* it on a :mod:`contextvars`
  variable; instrumentation points deep in the executors and the storage
  layer attribute their counts through :func:`count` without any plumbing.
  Because the active context is a context variable, concurrent executions
  (the batched driver's thread pool, and eventually morsel workers) never
  see each other's counters -- this replaces the old process-global
  ``ScanStats`` / ``ColFrame.materialisations`` class counters, which were
  neither query-scoped nor thread-safe.
* :class:`MetricsRegistry` -- a small, lock-protected registry of named
  counters and histograms for *service-level* totals (tasks dispatched,
  results accepted, queue timeouts).  The platform service owns one and the
  webapp exposes its snapshot at ``/api/metrics``.

Metric names follow a dotted ``<subsystem>.<quantity>[.<outcome>]`` scheme,
e.g. ``scan.chunks_skipped``, ``scan.zone_memo.hits``, ``plan_cache.misses``;
see the README's Observability section for the full list.
"""

from __future__ import annotations

import threading
from collections import deque
from contextvars import ContextVar

_ACTIVE: ContextVar["MetricsContext | None"] = ContextVar(
    "repro_active_metrics", default=None)


class MetricsContext:
    """Counters attributed to one query execution.

    Cheap to allocate (one dict) -- the engine creates a fresh context per
    ``execute`` call and attaches it to the :class:`QueryResult`, so callers
    read per-query numbers off the result instead of diffing globals.
    """

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}

    def count(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero on first use)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + amount

    def get(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy of every counter (JSON-friendly)."""
        return dict(self.counters)

    def activate(self) -> "_Activation":
        """Context manager installing this context as the ambient one."""
        return _Activation(self)

    def scan_efficiency(self) -> float | None:
        """Fraction of storage chunks skipped by zone maps (None = no scans)."""
        scanned = self.counters.get("scan.chunks_scanned", 0)
        skipped = self.counters.get("scan.chunks_skipped", 0)
        total = scanned + skipped
        if not total:
            return None
        return skipped / total


class _Activation:
    __slots__ = ("_context", "_token")

    def __init__(self, context: MetricsContext):
        self._context = context
        self._token = None

    def __enter__(self) -> MetricsContext:
        self._token = _ACTIVE.set(self._context)
        return self._context

    def __exit__(self, *_exc) -> bool:
        _ACTIVE.reset(self._token)
        return False


def current_metrics() -> MetricsContext | None:
    """The metrics context of the query executing on this thread, if any."""
    return _ACTIVE.get()


def count(name: str, amount: float = 1) -> None:
    """Attribute ``amount`` to the active query's context (no-op outside one)."""
    context = _ACTIVE.get()
    if context is not None:
        # inlined MetricsContext.count: this runs on scan/kernel hot paths,
        # so it skips the extra method call.
        counters = context.counters
        counters[name] = counters.get(name, 0) + amount


# ---------------------------------------------------------------------------
# process-level registry (service counters / histograms)
# ---------------------------------------------------------------------------


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Streaming summary statistics plus percentile estimates.

    Keeps exact count/sum/min/max and a bounded sliding reservoir of the
    most recent observations for p50/p95/p99 -- recent-window quantiles
    are what latency dashboards want anyway, and the fixed-size deque
    keeps a long-running service at a constant footprint (no unbounded
    sample lists, no bucket configuration).
    """

    RESERVOIR = 512

    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "_samples", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self._samples: deque[float] = deque(maxlen=self.RESERVOIR)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.minimum = value if self.minimum is None else min(self.minimum, value)
            self.maximum = value if self.maximum is None else max(self.maximum, value)
            self._samples.append(value)

    def percentile(self, fraction: float) -> float | None:
        """Nearest-rank percentile over the recent reservoir (None if empty)."""
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return None
        rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
        return ordered[rank]

    def summary(self) -> dict:
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self.count, self.total
            minimum, maximum = self.minimum, self.maximum

        def pct(fraction: float) -> float | None:
            if not ordered:
                return None
            rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
            return ordered[rank]

        return {
            "count": count,
            "sum": total,
            "min": minimum,
            "max": maximum,
            "mean": (total / count) if count else None,
            "p50": pct(0.50),
            "p95": pct(0.95),
            "p99": pct(0.99),
        }


class Gauge:
    """A named point-in-time value (queue depth, oldest lease age)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


class MetricsRegistry:
    """Named counters and histograms behind one lock (service-level totals)."""

    #: derived rate -> (numerator counter, denominator counter).  The
    #: numerators prefer the structured logger's ``log.events.*`` counters
    #: when those exist (the "log-derived" rates: they count decisions as
    #: logged, surviving even if a service counter is bypassed) and fall
    #: back to the service's own accounting counters.
    DERIVED_RATES = {
        "tasks.retry_rate": (("log.events.task.retried", "tasks.retried"),
                             ("tasks.dispatched",)),
        "tasks.dead_letter_rate": (("log.events.task.dead_lettered",
                                    "tasks.dead_lettered"),
                                   ("tasks.enqueued",)),
    }

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
            return histogram

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            return gauge

    def _derived(self, counters: dict[str, float]) -> dict[str, float]:
        derived: dict[str, float] = {}
        for name, (numerators, denominators) in self.DERIVED_RATES.items():
            numerator = next((counters[key] for key in numerators
                              if key in counters), 0.0)
            denominator = next((counters[key] for key in denominators
                                if key in counters), 0.0)
            if denominator:
                derived[name] = numerator / denominator
        return derived

    def snapshot(self) -> dict:
        """JSON-friendly view of every registered metric."""
        with self._lock:
            counters = {name: counter.value
                        for name, counter in sorted(self._counters.items())}
            histograms = {name: histogram.summary()
                          for name, histogram in sorted(self._histograms.items())}
            gauges = {name: gauge.value
                      for name, gauge in sorted(self._gauges.items())}
        return {
            "counters": counters,
            "histograms": histograms,
            "gauges": gauges,
            "derived": self._derived(counters),
        }
