"""Structured logging: one JSON object per line, trace-correlated.

Every platform component logs through a :class:`JsonLogger` instead of
bare ``print`` / stderr writes (the WSGI handler's default per-request
lines interleaved badly under concurrent claimers).  A log record is a
single JSON line::

    {"ts": 1754550000.123, "level": "info", "event": "result.accepted",
     "component": "service", "trace_id": "...", "span_id": "...",
     "task": "...", "attempt": 2}

``trace_id``/``span_id`` are filled from the ambient
:func:`repro.obs.propagate.current_context` unless passed explicitly, so
code inside a span block gets correlation for free.  When a
:class:`~repro.obs.metrics.MetricsRegistry` is attached, every record
also bumps ``log.records.<level>`` and ``log.events.<event>`` counters
-- that is what feeds the registry's log-derived retry / dead-letter
rates without a separate accounting path.

:data:`NULL_LOGGER` is the disabled fast path: a shared singleton whose
methods return immediately, handed out wherever telemetry is off (the
same pattern as ``NULL_SPAN``).
"""

from __future__ import annotations

import io
import json
import threading
import time
from typing import Any, TextIO

from repro.obs.metrics import MetricsRegistry
from repro.obs.propagate import current_context, sanitize_attributes

LEVELS = ("debug", "info", "warning", "error")


class JsonLogger:
    """Thread-safe JSON-lines logger bound to one stream.

    ``component`` names the emitting subsystem (``webapp``, ``service``,
    ``driver``...) on every record; child loggers via :meth:`bind` share
    the stream/lock/registry but stamp their own component, so one sink
    serves the whole process.
    """

    __slots__ = ("stream", "component", "registry", "_lock")

    def __init__(self, stream: TextIO | None = None, component: str = "",
                 registry: MetricsRegistry | None = None,
                 _lock: threading.Lock | None = None):
        self.stream = stream if stream is not None else io.StringIO()
        self.component = component
        self.registry = registry
        self._lock = _lock or threading.Lock()

    def bind(self, component: str) -> "JsonLogger":
        """A logger for another component sharing this one's sink."""
        return JsonLogger(self.stream, component, self.registry, self._lock)

    def log(self, level: str, event: str, **fields: Any) -> dict:
        """Emit one record; returns the dict that was written."""
        record: dict[str, Any] = {
            "ts": time.time(),
            "level": level,
            "event": event,
        }
        if self.component:
            record["component"] = self.component
        context = current_context()
        if context is not None:
            record.setdefault("trace_id", context.trace_id)
            record.setdefault("span_id", context.span_id)
        if fields:
            record.update(sanitize_attributes(fields))
        line = json.dumps(record, sort_keys=True, default=str,
                          separators=(",", ":"))
        with self._lock:
            self.stream.write(line + "\n")
        if self.registry is not None:
            self.registry.counter(f"log.records.{level}").inc()
            self.registry.counter(f"log.events.{event}").inc()
        return record

    def debug(self, event: str, **fields: Any) -> dict:
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> dict:
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> dict:
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> dict:
        return self.log("error", event, **fields)


class _NullLogger:
    """Shared do-nothing logger: the telemetry-off fast path."""

    __slots__ = ()
    component = ""
    registry = None

    def bind(self, component: str) -> "_NullLogger":
        return self

    def log(self, level: str, event: str, **fields: Any) -> dict:
        return {}

    debug = info = warning = error = \
        lambda self, event, **fields: {}  # noqa: E731 -- same no-op, four names


#: singleton handed out wherever structured logging is off.
NULL_LOGGER = _NullLogger()


def parse_log_lines(text: str) -> list[dict]:
    """Parse JSONL logger output back into records (testing/analytics aid)."""
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records
