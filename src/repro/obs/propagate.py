"""Cross-process trace propagation: traceparent ids and span records.

:mod:`repro.obs.trace` stops at the engine boundary -- a
:class:`~repro.obs.trace.QueryTrace` is one process's view of one
execution.  The platform needs the *other* half of the story: a task is
minted on the service, claimed over HTTP by a driver, executed, and its
result submitted (possibly several times, across retries and workers).
This module carries one trace id across those hops, W3C Trace Context
style:

* a ``traceparent`` header ``00-<32 hex trace id>-<16 hex span id>-01``
  travels on every HTTP request (:func:`parse_traceparent` /
  :meth:`SpanContext.to_traceparent`);
* the ambient :func:`current_context` context variable lets the HTTP
  client stamp outgoing requests without plumbing arguments through
  every call site (same pattern as ``MetricsContext``);
* a :class:`SpanRecorder` collects finished *span records* -- flat,
  JSON-friendly dicts keyed by trace id -- on both sides of the wire.
  Driver- and server-side records for the same task share its trace id,
  so ``analytics/timeline.py`` can stitch them into one end-to-end
  timeline.

Span records use epoch seconds (``time.time``) so records from different
processes line up on one axis; :func:`export_query_trace` converts an
engine trace's ``perf_counter`` timestamps with a per-export clock
offset and hangs the whole tree under a driver span, giving a single
trace id coverage from SQL parse down to morsel workers and back up
through the HTTP submit.
"""

from __future__ import annotations

import json
import random
import secrets
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterable

from repro.obs.trace import QueryTrace, Span

_TRACEPARENT_VERSION = "00"
_TRACE_FLAGS = "01"  # always sampled: recording is opt-in upstream instead

# ids need uniqueness, not unpredictability: a cryptographically seeded
# Mersenne Twister avoids the per-id ``os.urandom`` syscall that
# ``secrets.token_hex`` pays (several ids are minted per task on the
# claim -> submit hot path).  ``| 1`` keeps ids non-zero, which the W3C
# spec (and ``parse_traceparent``) treats as invalid.
_ids = random.Random(secrets.randbits(128))


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id."""
    return f"{_ids.getrandbits(128) | 1:032x}"


def new_span_id() -> str:
    """A fresh 16-hex-digit span id."""
    return f"{_ids.getrandbits(64) | 1:016x}"


@dataclass(frozen=True)
class SpanContext:
    """The (trace id, span id) pair that crosses a process boundary."""

    trace_id: str
    span_id: str

    def to_traceparent(self) -> str:
        """Serialise as a W3C ``traceparent`` header value."""
        return f"{_TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-{_TRACE_FLAGS}"

    def child(self) -> "SpanContext":
        """A context for a child span: same trace, fresh span id."""
        return SpanContext(self.trace_id, new_span_id())


def _is_hex(value: str) -> bool:
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


def parse_traceparent(header: str | None) -> SpanContext | None:
    """Parse a ``traceparent`` header; None on anything malformed.

    Strict on shape (version-trace-span-flags, correct widths, hex, and
    non-zero ids per the W3C spec) but tolerant of unknown versions and
    flags: a bad header degrades to "no incoming context" rather than an
    error, because telemetry must never fail a request.
    """
    if not header or not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16 \
            or len(flags) != 2:
        return None
    if not (_is_hex(version) and _is_hex(trace_id) and _is_hex(span_id)
            and _is_hex(flags)):
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return SpanContext(trace_id.lower(), span_id.lower())


_CURRENT: ContextVar[SpanContext | None] = ContextVar(
    "repro_trace_context", default=None)


def current_context() -> SpanContext | None:
    """The span context ambient on this thread/task, if any."""
    return _CURRENT.get()


class use_context:
    """Context manager installing ``ctx`` as the ambient span context."""

    __slots__ = ("_context", "_token")

    def __init__(self, context: SpanContext | None):
        self._context = context
        self._token = None

    def __enter__(self) -> SpanContext | None:
        self._token = _CURRENT.set(self._context)
        return self._context

    def __exit__(self, *_exc) -> bool:
        _CURRENT.reset(self._token)
        return False


# ---------------------------------------------------------------------------
# span records
# ---------------------------------------------------------------------------


def _sanitize(value: Any) -> Any:
    """Coerce an attribute value to something json.dumps accepts.

    Engine traces carry numpy scalars (chunk counts, row totals); span
    records travel through JSON sinks (HTTP extras, the flight-recorder
    log), so everything non-primitive is folded to a primitive here.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)  # numpy scalar -> python scalar
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


def sanitize_attributes(attributes: dict) -> dict[str, Any]:
    return {str(key): _sanitize(value) for key, value in attributes.items()}


class _RecordedSpan:
    """Context manager timing one span record (closed + stored on exit)."""

    __slots__ = ("_recorder", "record")

    def __init__(self, recorder: "SpanRecorder", record: dict):
        self._recorder = recorder
        self.record = record

    def __enter__(self) -> dict:
        return self.record

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self.record["end"] = time.time()
        if exc is not None:
            self.record["attributes"].setdefault("error", _sanitize(exc))
        self.record["attributes"] = sanitize_attributes(self.record["attributes"])
        self._recorder.append(self.record)
        return False


class SpanRecorder:
    """A bounded, thread-safe sink of finished span records.

    Each record is a flat dict -- ``{name, trace_id, span_id,
    parent_span_id, start, end, attributes}`` with epoch-second
    timestamps -- so records from the driver and the service (different
    processes, different clocks for ``perf_counter``) merge on one
    timeline.  The deque bound keeps a long-running service at a fixed
    memory footprint; ``capacity=0`` disables recording entirely (every
    call stays a cheap no-op), which is how telemetry-off paths avoid
    paying for span bookkeeping.
    """

    def __init__(self, capacity: int = 2048):
        self.capacity = capacity
        self._lock = threading.Lock()
        # eviction is manual (not deque maxlen) so the per-trace index stays
        # in sync; the index makes spans(trace_id) O(spans of that trace)
        # instead of O(capacity), which the claim->submit hot loop relies on.
        self._spans: deque[dict] = deque()
        self._by_trace: dict[str, list[dict]] = {}

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def append(self, record: dict) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._append_locked(record)

    def extend(self, records: Iterable[dict]) -> None:
        """Append many records under one lock acquisition (hot-path batches)."""
        if self.capacity <= 0:
            return
        with self._lock:
            for record in records:
                self._append_locked(record)

    def _append_locked(self, record: dict) -> None:
        if len(self._spans) >= self.capacity:
            oldest = self._spans.popleft()
            bucket = self._by_trace.get(oldest.get("trace_id"))
            if bucket:
                if bucket[0] is oldest:  # FIFO: the globally oldest record
                    bucket.pop(0)        # is also its trace's oldest
                else:  # defensive; identical records inserted twice
                    try:
                        bucket.remove(oldest)
                    except ValueError:
                        pass
                if not bucket:
                    self._by_trace.pop(oldest.get("trace_id"), None)
        self._spans.append(record)
        self._by_trace.setdefault(record.get("trace_id"), []).append(record)

    def record(self, name: str, trace_id: str,
               parent_span_id: str | None = None,
               span_id: str | None = None,
               start: float | None = None, end: float | None = None,
               **attributes) -> dict:
        """Store (and return) an already-finished span record.

        ``start``/``end`` default to "now", making point events (a dedup
        hit, a lease decision) zero-width spans on the timeline.
        """
        now = time.time()
        record = {
            "name": name,
            "trace_id": trace_id,
            "span_id": span_id or new_span_id(),
            "parent_span_id": parent_span_id,
            "start": now if start is None else start,
            "end": now if end is None else end,
            "attributes": sanitize_attributes(attributes),
        }
        self.append(record)
        return record

    def span(self, name: str, trace_id: str,
             parent_span_id: str | None = None, **attributes) -> _RecordedSpan:
        """Open a timed span record (a context manager yielding the dict).

        The caller may mutate ``record["attributes"]`` inside the block;
        the record is stamped and stored on exit.
        """
        record = {
            "name": name,
            "trace_id": trace_id,
            "span_id": new_span_id(),
            "parent_span_id": parent_span_id,
            "start": time.time(),
            "end": None,
            "attributes": dict(attributes),
        }
        return _RecordedSpan(self, record)

    def spans(self, trace_id: str | None = None) -> list[dict]:
        """Recorded spans, oldest first (optionally for one trace only)."""
        with self._lock:
            if trace_id is None:
                return list(self._spans)
            return list(self._by_trace.get(trace_id, ()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


def export_query_trace(trace: QueryTrace, trace_id: str,
                       parent_span_id: str | None = None,
                       recorder: SpanRecorder | None = None) -> list[dict]:
    """Flatten an engine :class:`QueryTrace` into cross-process records.

    The engine's spans are timed with ``perf_counter``; one clock offset
    (sampled here, at export) rebases them onto the epoch axis shared by
    every other record of the trace.  Parent/child links become
    ``parent_span_id`` references, with the trace's root hung under
    ``parent_span_id`` -- typically the driver's ``driver.execute``
    span -- so the whole engine tree nests inside the task timeline.
    """
    offset = time.time() - time.perf_counter()
    records: list[dict] = []

    def visit(span: Span, parent: str | None) -> None:
        ended = span.ended if span.ended is not None else time.perf_counter()
        attributes = sanitize_attributes(span.attributes)
        if span.rows_in is not None:
            attributes["rows_in"] = _sanitize(span.rows_in)
        if span.rows_out is not None:
            attributes["rows_out"] = _sanitize(span.rows_out)
        record = {
            "name": f"engine.{span.name}" if span.name != "query" else "engine.query",
            "trace_id": trace_id,
            "span_id": new_span_id(),
            "parent_span_id": parent,
            "start": span.started + offset,
            "end": ended + offset,
            "attributes": attributes,
        }
        records.append(record)
        if recorder is not None:
            recorder.append(record)
        for child in span.children:
            visit(child, record["span_id"])

    visit(trace.root, parent_span_id)
    return records


def write_span_log(path: str, spans: Iterable[dict]) -> int:
    """Append span records to a JSONL file; returns the number written."""
    written = 0
    with open(path, "a", encoding="utf-8") as sink:
        for record in spans:
            sink.write(json.dumps(record, sort_keys=True) + "\n")
            written += 1
    return written
