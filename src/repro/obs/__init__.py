"""Query-scoped observability: tracing, per-query metrics, process registry.

The paper's platform exists to *measure* query execution; this package is
the reproduction's measuring layer.  It is deliberately free of engine
imports so every subsystem (engines, storage, driver, platform) can depend
on it without cycles:

* :mod:`repro.obs.trace` -- :class:`QueryTrace` span trees emitted by both
  executors and rendered by ``EXPLAIN ANALYZE``,
* :mod:`repro.obs.metrics` -- the per-query :class:`MetricsContext`
  (replacing the old process-global instrumentation counters) and the
  :class:`MetricsRegistry` (counters / latency histograms with
  percentiles / gauges / derived rates) behind ``/api/metrics``,
* :mod:`repro.obs.propagate` -- W3C-style ``traceparent`` propagation,
  the ambient :class:`SpanContext`, and the cross-process
  :class:`SpanRecorder` whose records ``analytics/timeline.py`` stitches
  into end-to-end task timelines,
* :mod:`repro.obs.log` -- the structured JSON-lines :class:`JsonLogger`
  (trace-correlated, registry-counted) used across the platform,
* :mod:`repro.obs.flight` -- :class:`TelemetryConfig` knobs and the
  :class:`FlightRecorder` ring of slowest/failed task traces.
"""

from repro.obs.flight import (
    FlightRecorder,
    TelemetryConfig,
)
from repro.obs.log import (
    NULL_LOGGER,
    JsonLogger,
    parse_log_lines,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsContext,
    MetricsRegistry,
    count,
    current_metrics,
)
from repro.obs.propagate import (
    SpanContext,
    SpanRecorder,
    current_context,
    export_query_trace,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    use_context,
    write_span_log,
)
from repro.obs.trace import (
    NULL_SPAN,
    QueryTrace,
    Span,
    format_plan,
    format_trace,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricsContext",
    "MetricsRegistry",
    "NULL_LOGGER",
    "SpanContext",
    "SpanRecorder",
    "TelemetryConfig",
    "count",
    "current_context",
    "current_metrics",
    "export_query_trace",
    "new_span_id",
    "new_trace_id",
    "parse_log_lines",
    "parse_traceparent",
    "use_context",
    "write_span_log",
    "NULL_SPAN",
    "QueryTrace",
    "Span",
    "format_plan",
    "format_trace",
]
