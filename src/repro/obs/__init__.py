"""Query-scoped observability: tracing, per-query metrics, process registry.

The paper's platform exists to *measure* query execution; this package is
the reproduction's measuring layer.  It is deliberately free of engine
imports so every subsystem (engines, storage, driver, platform) can depend
on it without cycles:

* :mod:`repro.obs.trace` -- :class:`QueryTrace` span trees emitted by both
  executors and rendered by ``EXPLAIN ANALYZE``,
* :mod:`repro.obs.metrics` -- the per-query :class:`MetricsContext`
  (replacing the old process-global instrumentation counters) and the
  :class:`MetricsRegistry` behind the platform's ``/api/metrics``.
"""

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsContext,
    MetricsRegistry,
    count,
    current_metrics,
)
from repro.obs.trace import (
    NULL_SPAN,
    QueryTrace,
    Span,
    format_plan,
    format_trace,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsContext",
    "MetricsRegistry",
    "count",
    "current_metrics",
    "NULL_SPAN",
    "QueryTrace",
    "Span",
    "format_plan",
    "format_trace",
]
