"""Star Schema Benchmark (SSB) style data generator.

The demo's sample projects include SSBM-inspired cases.  The generator
produces the classic star schema: a ``lineorder`` fact table plus ``date_dim``,
``customer_dim``, ``supplier_dim`` and ``part_dim`` dimensions, with the usual
hierarchies (region -> nation -> city, year -> month).  As with the TPC-H
generator, output is deterministic for a given ``(scale_factor, seed)``.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database

SSB_SCHEMA: dict[str, list[tuple[str, str]]] = {
    "date_dim": [
        ("d_datekey", "int"),
        ("d_date", "date"),
        ("d_year", "int"),
        ("d_month", "int"),
        ("d_weeknum", "int"),
    ],
    "customer_dim": [
        ("c_custkey", "int"),
        ("c_name", "str"),
        ("c_city", "str"),
        ("c_nation", "str"),
        ("c_region", "str"),
        ("c_mktsegment", "str"),
    ],
    "supplier_dim": [
        ("s_suppkey", "int"),
        ("s_name", "str"),
        ("s_city", "str"),
        ("s_nation", "str"),
        ("s_region", "str"),
    ],
    "part_dim": [
        ("p_partkey", "int"),
        ("p_name", "str"),
        ("p_mfgr", "str"),
        ("p_category", "str"),
        ("p_brand", "str"),
        ("p_color", "str"),
    ],
    "lineorder": [
        ("lo_orderkey", "int"),
        ("lo_linenumber", "int"),
        ("lo_custkey", "int"),
        ("lo_partkey", "int"),
        ("lo_suppkey", "int"),
        ("lo_orderdate", "int"),
        ("lo_quantity", "float"),
        ("lo_extendedprice", "float"),
        ("lo_discount", "float"),
        ("lo_revenue", "float"),
        ("lo_supplycost", "float"),
    ],
}

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = {
    "AFRICA": ["ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"],
    "AMERICA": ["ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"],
    "ASIA": ["CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"],
    "EUROPE": ["FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"],
    "MIDDLE EAST": ["EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"],
}
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_COLORS = ["red", "green", "blue", "yellow", "purple", "white", "black", "orange"]
_MFGRS = ["MFGR#1", "MFGR#2", "MFGR#3", "MFGR#4", "MFGR#5"]


@dataclass
class SSBGenerator:
    """Generates the SSB star schema at a given scale factor."""

    scale_factor: float = 0.01
    seed: int = 47
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self._rng = random.Random((self.seed, round(self.scale_factor * 1_000_000)).__hash__())

    def _counts(self) -> dict[str, int]:
        return {
            "customer_dim": max(int(30_000 * self.scale_factor), 20),
            "supplier_dim": max(int(2_000 * self.scale_factor), 10),
            "part_dim": max(int(20_000 * self.scale_factor), 20),
            "lineorder": max(int(6_000_000 * self.scale_factor), 200),
        }

    def _city(self, nation: str) -> str:
        return f"{nation[:9]:<9}{self._rng.randrange(10)}"

    def generate(self) -> dict[str, list[tuple]]:
        """Generate all five SSB tables keyed by table name."""
        counts = self._counts()
        tables: dict[str, list[tuple]] = {}

        dates: list[tuple] = []
        start = datetime.date(1992, 1, 1)
        for offset in range(0, 2557):  # seven years of days
            day = start + datetime.timedelta(days=offset)
            key = day.year * 10_000 + day.month * 100 + day.day
            dates.append((key, day.isoformat(), day.year, day.month, day.isocalendar()[1]))
        tables["date_dim"] = dates

        customers = []
        for key in range(1, counts["customer_dim"] + 1):
            region = self._rng.choice(_REGIONS)
            nation = self._rng.choice(_NATIONS[region])
            customers.append((
                key, f"Customer#{key:09d}", self._city(nation), nation, region,
                self._rng.choice(_SEGMENTS),
            ))
        tables["customer_dim"] = customers

        suppliers = []
        for key in range(1, counts["supplier_dim"] + 1):
            region = self._rng.choice(_REGIONS)
            nation = self._rng.choice(_NATIONS[region])
            suppliers.append((
                key, f"Supplier#{key:09d}", self._city(nation), nation, region,
            ))
        tables["supplier_dim"] = suppliers

        parts = []
        for key in range(1, counts["part_dim"] + 1):
            mfgr = self._rng.choice(_MFGRS)
            category = f"{mfgr}{self._rng.randrange(1, 6)}"
            brand = f"{category}{self._rng.randrange(1, 41)}"
            parts.append((
                key, f"part {key}", mfgr, category, brand, self._rng.choice(_COLORS),
            ))
        tables["part_dim"] = parts

        lineorders = []
        orderkey = 0
        while len(lineorders) < counts["lineorder"]:
            orderkey += 1
            datekey = dates[self._rng.randrange(len(dates))][0]
            custkey = self._rng.randrange(1, counts["customer_dim"] + 1)
            for linenumber in range(1, self._rng.randrange(1, 8)):
                quantity = float(self._rng.randrange(1, 51))
                price = round(quantity * self._rng.uniform(100.0, 1000.0), 2)
                discount = round(self._rng.uniform(0.0, 0.10), 2)
                lineorders.append((
                    orderkey,
                    linenumber,
                    custkey,
                    self._rng.randrange(1, counts["part_dim"] + 1),
                    self._rng.randrange(1, counts["supplier_dim"] + 1),
                    datekey,
                    quantity,
                    price,
                    discount,
                    round(price * (1 - discount), 2),
                    round(price * 0.6, 2),
                ))
        tables["lineorder"] = lineorders[: counts["lineorder"]]
        return tables

    def populate(self, database: "Database") -> None:
        """Create the SSB schema on ``database`` and load the generated rows."""
        tables = self.generate()
        for table, columns in SSB_SCHEMA.items():
            database.create_table(table, columns)
            database.insert_rows(table, tables[table])


def generate_ssb(scale_factor: float = 0.01, seed: int = 47) -> dict[str, list[tuple]]:
    """Generate the SSB tables at ``scale_factor``."""
    return SSBGenerator(scale_factor=scale_factor, seed=seed).generate()


def populate_ssb(database: "Database", scale_factor: float = 0.01, seed: int = 47) -> None:
    """Create and load the SSB schema on ``database``."""
    SSBGenerator(scale_factor=scale_factor, seed=seed).populate(database)
