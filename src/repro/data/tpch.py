"""Deterministic TPC-H-style data generator.

The generator reproduces the *structure* of dbgen output -- the same schema,
key relationships (every ``lineitem`` row joins an ``orders`` row, every
``orders`` row joins a ``customer`` row, ...), value domains (return flags,
ship modes, market segments, date ranges 1992-1998) and approximate
distributions -- at laptop scale factors.  It is **not** a byte-compatible
dbgen replacement: the paper's experiments only need a database whose query
behaviour is TPC-H-shaped, which this provides while staying deterministic
for a given ``(scale_factor, seed)`` pair.

Rows are generated as plain tuples in schema column order, so they can be
loaded into either engine layout or written to CSV.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.tpch.schema import TPCH_BASE_ROWS, TPCH_SCHEMA, TPCH_TABLES

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database

_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]
_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_CONTAINERS = [
    f"{size} {kind}"
    for size in ("SM", "MED", "LG", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
]
_TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
    "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
    "pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff", "purple",
    "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell",
    "sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan", "thistle",
    "tomato", "turquoise", "violet", "wheat", "white", "yellow",
]
_COMMENT_WORDS = [
    "carefully", "quickly", "furiously", "slyly", "blithely", "final", "special",
    "express", "regular", "pending", "ironic", "even", "bold", "silent", "unusual",
    "requests", "deposits", "packages", "accounts", "instructions", "theodolites",
    "foxes", "pinto", "beans", "dependencies", "excuses", "platelets", "asymptotes",
    "Customer", "Complaints", "sleep", "wake", "nag", "haggle", "cajole", "detect",
]

_START_DATE = datetime.date(1992, 1, 1)
_END_DATE = datetime.date(1998, 12, 1)
_DATE_RANGE_DAYS = (_END_DATE - _START_DATE).days


@dataclass
class TPCHGenerator:
    """Generates the eight TPC-H tables at a given scale factor.

    Parameters
    ----------
    scale_factor:
        Fraction of the SF-1 cardinalities (0.001 gives a ~6k-row lineitem).
    seed:
        Seed for the deterministic pseudo-random stream.
    """

    scale_factor: float = 0.01
    seed: int = 20190113  # CIDR 2019 opening day; any fixed constant works.
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self._rng = random.Random((self.seed, round(self.scale_factor * 1_000_000)).__hash__())

    # -- helpers --------------------------------------------------------------

    def _rows(self, table: str) -> int:
        if table == "region":
            return 5
        if table == "nation":
            return 25
        scaled = int(TPCH_BASE_ROWS[table] * self.scale_factor)
        return max(scaled, 10)

    def _comment(self, words: int = 4) -> str:
        return " ".join(self._rng.choice(_COMMENT_WORDS) for _ in range(words))

    def _date(self) -> datetime.date:
        return _START_DATE + datetime.timedelta(days=self._rng.randrange(_DATE_RANGE_DAYS))

    def _phone(self, nationkey: int) -> str:
        return (f"{10 + nationkey}-{self._rng.randrange(100, 999)}-"
                f"{self._rng.randrange(100, 999)}-{self._rng.randrange(1000, 9999)}")

    # -- table generators ----------------------------------------------------------

    def region(self) -> list[tuple]:
        return [(key, name, self._comment()) for key, name in enumerate(_REGIONS)]

    def nation(self) -> list[tuple]:
        return [
            (key, name, regionkey, self._comment())
            for key, (name, regionkey) in enumerate(_NATIONS)
        ]

    def supplier(self) -> list[tuple]:
        rows = []
        for key in range(1, self._rows("supplier") + 1):
            nationkey = self._rng.randrange(25)
            comment = self._comment()
            if key % 13 == 0:
                comment = "Customer Complaints " + comment
            rows.append((
                key,
                f"Supplier#{key:09d}",
                self._comment(2),
                nationkey,
                self._phone(nationkey),
                round(self._rng.uniform(-999.99, 9999.99), 2),
                comment,
            ))
        return rows

    def customer(self) -> list[tuple]:
        rows = []
        for key in range(1, self._rows("customer") + 1):
            nationkey = self._rng.randrange(25)
            rows.append((
                key,
                f"Customer#{key:09d}",
                self._comment(2),
                nationkey,
                self._phone(nationkey),
                round(self._rng.uniform(-999.99, 9999.99), 2),
                self._rng.choice(_SEGMENTS),
                self._comment(),
            ))
        return rows

    def part(self) -> list[tuple]:
        rows = []
        for key in range(1, self._rows("part") + 1):
            name = " ".join(self._rng.sample(_NAME_WORDS, 5))
            mfgr = self._rng.randrange(1, 6)
            brand = f"Brand#{mfgr}{self._rng.randrange(1, 6)}"
            p_type = (f"{self._rng.choice(_TYPE_SYLL1)} {self._rng.choice(_TYPE_SYLL2)} "
                      f"{self._rng.choice(_TYPE_SYLL3)}")
            rows.append((
                key,
                name,
                f"Manufacturer#{mfgr}",
                brand,
                p_type,
                self._rng.randrange(1, 51),
                self._rng.choice(_CONTAINERS),
                round(900 + (key % 1000) + self._rng.uniform(0, 100), 2),
                self._comment(3),
            ))
        return rows

    def partsupp(self, part_count: int, supplier_count: int) -> list[tuple]:
        rows = []
        per_part = 4
        for partkey in range(1, part_count + 1):
            for offset in range(per_part):
                suppkey = ((partkey + offset * (supplier_count // per_part + 1))
                           % supplier_count) + 1
                rows.append((
                    partkey,
                    suppkey,
                    self._rng.randrange(1, 10_000),
                    round(self._rng.uniform(1.0, 1000.0), 2),
                    self._comment(5),
                ))
        return rows

    def orders(self, customer_count: int) -> list[tuple]:
        rows = []
        for key in range(1, self._rows("orders") + 1):
            orderdate = self._date()
            status = self._rng.choice(["O", "F", "P"])
            rows.append((
                key,
                self._rng.randrange(1, customer_count + 1),
                status,
                round(self._rng.uniform(1000.0, 400_000.0), 2),
                orderdate.isoformat(),
                self._rng.choice(_PRIORITIES),
                f"Clerk#{self._rng.randrange(1, 1000):09d}",
                0,
                self._comment() + (" special requests" if key % 17 == 0 else ""),
            ))
        return rows

    def lineitem(self, order_rows: list[tuple], part_count: int,
                 supplier_count: int) -> list[tuple]:
        rows = []
        for order in order_rows:
            orderkey = order[0]
            orderdate = datetime.date.fromisoformat(order[4])
            lines = self._rng.randrange(1, 8)
            for linenumber in range(1, lines + 1):
                partkey = self._rng.randrange(1, part_count + 1)
                suppkey = self._rng.randrange(1, supplier_count + 1)
                quantity = float(self._rng.randrange(1, 51))
                extendedprice = round(quantity * self._rng.uniform(900.0, 2000.0), 2)
                shipdate = orderdate + datetime.timedelta(days=self._rng.randrange(1, 122))
                commitdate = orderdate + datetime.timedelta(days=self._rng.randrange(30, 91))
                receiptdate = shipdate + datetime.timedelta(days=self._rng.randrange(1, 31))
                returnflag = "R" if receiptdate <= datetime.date(1995, 6, 17) and self._rng.random() < 0.5 else (
                    "A" if receiptdate <= datetime.date(1995, 6, 17) else "N")
                linestatus = "F" if shipdate <= datetime.date(1995, 6, 17) else "O"
                rows.append((
                    orderkey,
                    partkey,
                    suppkey,
                    linenumber,
                    quantity,
                    extendedprice,
                    round(self._rng.uniform(0.0, 0.10), 2),
                    round(self._rng.uniform(0.0, 0.08), 2),
                    returnflag,
                    linestatus,
                    shipdate.isoformat(),
                    commitdate.isoformat(),
                    receiptdate.isoformat(),
                    self._rng.choice(_SHIP_INSTRUCT),
                    self._rng.choice(_SHIP_MODES),
                    self._comment(3),
                ))
        return rows

    # -- public API -------------------------------------------------------------------

    def generate(self) -> dict[str, list[tuple]]:
        """Generate all eight tables and return them keyed by table name."""
        tables: dict[str, list[tuple]] = {}
        tables["region"] = self.region()
        tables["nation"] = self.nation()
        tables["supplier"] = self.supplier()
        tables["customer"] = self.customer()
        tables["part"] = self.part()
        tables["partsupp"] = self.partsupp(len(tables["part"]), len(tables["supplier"]))
        tables["orders"] = self.orders(len(tables["customer"]))
        tables["lineitem"] = self.lineitem(
            tables["orders"], len(tables["part"]), len(tables["supplier"])
        )
        return tables

    def populate(self, database: "Database", clustered: bool = False) -> None:
        """Create the TPC-H schema on ``database`` and load the generated rows.

        With ``clustered`` the fact tables are loaded in date order
        (``lineitem`` by ship date, ``orders`` by order date), which is how a
        warehouse ingesting by arrival time lays data out -- and what gives
        the storage layer's per-chunk zone maps disjoint date ranges to
        refute, enabling chunk skipping on date-selective scans.
        """
        tables = self.generate()
        if clustered:
            tables["lineitem"] = sorted(tables["lineitem"], key=lambda row: row[10])
            tables["orders"] = sorted(tables["orders"], key=lambda row: row[4])
        for table in TPCH_TABLES:
            database.create_table(table, TPCH_SCHEMA[table])
            database.insert_rows(table, tables[table])


def generate_tpch(scale_factor: float = 0.01, seed: int = 20190113) -> dict[str, list[tuple]]:
    """Generate TPC-H tables at ``scale_factor`` and return them as row lists."""
    return TPCHGenerator(scale_factor=scale_factor, seed=seed).generate()


def populate_tpch(database: "Database", scale_factor: float = 0.01,
                  seed: int = 20190113, clustered: bool = False) -> None:
    """Create and load the TPC-H schema on ``database``."""
    TPCHGenerator(scale_factor=scale_factor, seed=seed).populate(database,
                                                                clustered=clustered)
