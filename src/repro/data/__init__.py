"""Deterministic data generators used as workload substrates.

The paper bootstraps the platform "with sample projects inspired by TPC-H,
SSBM, airtraffic"; this subpackage provides deterministic, scale-factor
parameterised generators for all three so experiments are reproducible
without external data files:

* :mod:`repro.data.tpch` -- the eight TPC-H tables,
* :mod:`repro.data.ssb` -- the Star Schema Benchmark tables (lineorder + dims),
* :mod:`repro.data.airtraffic` -- a flights/airports/carriers star schema.

Every generator returns plain ``dict[str, list[tuple]]`` relations plus the
column definitions, and has a ``populate(engine)`` convenience that loads the
data into an engine instance.
"""

from repro.data.tpch import TPCHGenerator, generate_tpch, populate_tpch
from repro.data.ssb import SSBGenerator, generate_ssb, populate_ssb
from repro.data.airtraffic import AirTrafficGenerator, generate_airtraffic, populate_airtraffic

__all__ = [
    "TPCHGenerator",
    "generate_tpch",
    "populate_tpch",
    "SSBGenerator",
    "generate_ssb",
    "populate_ssb",
    "AirTrafficGenerator",
    "generate_airtraffic",
    "populate_airtraffic",
]
