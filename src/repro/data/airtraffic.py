"""Air-traffic style data generator.

The demo lists an "airtraffic" sample project; the public dataset behind it
(the US DOT on-time performance data) is not redistributable here, so this
module generates a synthetic equivalent with the same analytical shape: a
``flights`` fact table (carrier, origin, destination, date, departure delay,
arrival delay, distance, cancellations) plus ``airports`` and ``carriers``
dimensions.  Delay distributions are skewed (most flights on time, a long
tail of large delays) so aggregate queries behave like they do on the real
data.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database

AIRTRAFFIC_SCHEMA: dict[str, list[tuple[str, str]]] = {
    "carriers": [
        ("carrier_code", "str"),
        ("carrier_name", "str"),
    ],
    "airports": [
        ("airport_code", "str"),
        ("airport_name", "str"),
        ("city", "str"),
        ("state", "str"),
    ],
    "flights": [
        ("flight_id", "int"),
        ("flight_date", "date"),
        ("carrier_code", "str"),
        ("origin", "str"),
        ("destination", "str"),
        ("departure_delay", "float"),
        ("arrival_delay", "float"),
        ("distance", "int"),
        ("cancelled", "int"),
    ],
}

_CARRIERS = [
    ("AA", "American Airlines"), ("DL", "Delta Air Lines"), ("UA", "United Airlines"),
    ("WN", "Southwest Airlines"), ("B6", "JetBlue Airways"), ("AS", "Alaska Airlines"),
    ("NK", "Spirit Air Lines"), ("F9", "Frontier Airlines"), ("HA", "Hawaiian Airlines"),
    ("G4", "Allegiant Air"),
]
_AIRPORTS = [
    ("ATL", "Hartsfield-Jackson", "Atlanta", "GA"), ("LAX", "Los Angeles Intl", "Los Angeles", "CA"),
    ("ORD", "O'Hare Intl", "Chicago", "IL"), ("DFW", "Dallas/Fort Worth Intl", "Dallas", "TX"),
    ("DEN", "Denver Intl", "Denver", "CO"), ("JFK", "John F Kennedy Intl", "New York", "NY"),
    ("SFO", "San Francisco Intl", "San Francisco", "CA"), ("SEA", "Seattle-Tacoma Intl", "Seattle", "WA"),
    ("LAS", "McCarran Intl", "Las Vegas", "NV"), ("MCO", "Orlando Intl", "Orlando", "FL"),
    ("MIA", "Miami Intl", "Miami", "FL"), ("PHX", "Sky Harbor Intl", "Phoenix", "AZ"),
    ("IAH", "George Bush Intl", "Houston", "TX"), ("BOS", "Logan Intl", "Boston", "MA"),
    ("MSP", "Minneapolis-St Paul Intl", "Minneapolis", "MN"), ("DTW", "Detroit Metro", "Detroit", "MI"),
    ("FLL", "Fort Lauderdale Intl", "Fort Lauderdale", "FL"), ("PHL", "Philadelphia Intl", "Philadelphia", "PA"),
    ("CLT", "Charlotte Douglas Intl", "Charlotte", "NC"), ("BWI", "Baltimore/Washington Intl", "Baltimore", "MD"),
]


@dataclass
class AirTrafficGenerator:
    """Generates a synthetic air-traffic star schema."""

    flights: int = 20_000
    seed: int = 1903  # first powered flight
    year: int = 2018
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.flights <= 0:
            raise ValueError("flights must be positive")
        self._rng = random.Random((self.seed, self.flights).__hash__())

    def _delay(self) -> float:
        """Skewed delay distribution: mostly on-time, long positive tail."""
        roll = self._rng.random()
        if roll < 0.55:
            return round(self._rng.uniform(-10.0, 5.0), 1)
        if roll < 0.90:
            return round(self._rng.uniform(5.0, 45.0), 1)
        return round(self._rng.uniform(45.0, 360.0), 1)

    def generate(self) -> dict[str, list[tuple]]:
        """Generate carriers, airports and flights tables."""
        tables: dict[str, list[tuple]] = {
            "carriers": list(_CARRIERS),
            "airports": list(_AIRPORTS),
        }
        flights: list[tuple] = []
        start = datetime.date(self.year, 1, 1)
        codes = [airport[0] for airport in _AIRPORTS]
        for flight_id in range(1, self.flights + 1):
            origin = self._rng.choice(codes)
            destination = self._rng.choice([code for code in codes if code != origin])
            departure_delay = self._delay()
            cancelled = 1 if self._rng.random() < 0.015 else 0
            arrival_delay = 0.0 if cancelled else round(
                departure_delay + self._rng.uniform(-15.0, 20.0), 1)
            flights.append((
                flight_id,
                (start + datetime.timedelta(days=self._rng.randrange(365))).isoformat(),
                self._rng.choice(_CARRIERS)[0],
                origin,
                destination,
                0.0 if cancelled else departure_delay,
                arrival_delay,
                self._rng.randrange(150, 3000),
                cancelled,
            ))
        tables["flights"] = flights
        return tables

    def populate(self, database: "Database") -> None:
        """Create the air-traffic schema on ``database`` and load the rows."""
        tables = self.generate()
        for table, columns in AIRTRAFFIC_SCHEMA.items():
            database.create_table(table, columns)
            database.insert_rows(table, tables[table])


def generate_airtraffic(flights: int = 20_000, seed: int = 1903) -> dict[str, list[tuple]]:
    """Generate the air-traffic tables with ``flights`` fact rows."""
    return AirTrafficGenerator(flights=flights, seed=seed).generate()


def populate_airtraffic(database: "Database", flights: int = 20_000, seed: int = 1903) -> None:
    """Create and load the air-traffic schema on ``database``."""
    AirTrafficGenerator(flights=flights, seed=seed).populate(database)
