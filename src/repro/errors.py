"""Exception hierarchy shared by every subsystem of the reproduction.

All errors raised by the library derive from :class:`SqalpelError`, so
applications embedding the library can catch a single base class.  The
individual subsystems raise the more specific subclasses below; each carries
enough context (rule names, line numbers, query keys, ...) to be actionable
without inspecting the traceback.
"""

from __future__ import annotations


class SqalpelError(Exception):
    """Base class for every error raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Grammar / core errors
# ---------------------------------------------------------------------------


class GrammarError(SqalpelError):
    """Base class for grammar definition and processing problems."""


class GrammarSyntaxError(GrammarError):
    """The SQALPEL grammar DSL text could not be parsed.

    Attributes
    ----------
    line:
        1-based line number in the DSL source where the problem was found.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class GrammarValidationError(GrammarError):
    """The grammar parsed but violates a structural constraint.

    Raised for missing rules (referenced but never defined), dead rules
    (defined but unreachable from the start rule), empty rules and duplicate
    definitions.  ``issues`` holds the individual findings so callers can show
    all of them at once instead of fixing them one by one.
    """

    def __init__(self, issues: list[str]):
        self.issues = list(issues)
        super().__init__("; ".join(self.issues))


class SpaceLimitExceeded(GrammarError):
    """Template enumeration hit the hard cap on the number of templates."""

    def __init__(self, limit: int, message: str | None = None):
        self.limit = limit
        super().__init__(message or f"template space exceeds the hard limit of {limit}")


class RenderError(GrammarError):
    """A template could not be rendered into a concrete query."""


class DialectError(GrammarError):
    """A dialect substitution was requested for an unknown dialect."""


# ---------------------------------------------------------------------------
# SQL front-end errors
# ---------------------------------------------------------------------------


class SQLError(SqalpelError):
    """Base class for SQL lexing, parsing and analysis errors."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None, line: int | None = None):
        self.position = position
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ExtractionError(SQLError):
    """A baseline query could not be converted into a SQALPEL grammar."""


# ---------------------------------------------------------------------------
# Engine errors
# ---------------------------------------------------------------------------


class EngineError(SqalpelError):
    """Base class for the relational engine substrate."""


class CatalogError(EngineError):
    """Unknown table or column, or an attempt to redefine an existing one."""


class PlanError(EngineError):
    """The query is syntactically valid but cannot be planned/executed."""


class ExecutionError(EngineError):
    """A runtime failure while executing a query (type errors, overflow, ...)."""


# ---------------------------------------------------------------------------
# Platform errors
# ---------------------------------------------------------------------------


class PlatformError(SqalpelError):
    """Base class for the performance-repository platform."""


class AccessDenied(PlatformError):
    """The acting user is not allowed to perform the requested operation."""


class NotFound(PlatformError):
    """A referenced platform entity (user, project, task, ...) does not exist."""


class ConflictError(PlatformError):
    """The operation conflicts with existing state (duplicate names, ...)."""


class ValidationError(PlatformError):
    """A request payload failed validation."""


# ---------------------------------------------------------------------------
# Driver errors
# ---------------------------------------------------------------------------


class DriverError(SqalpelError):
    """Base class for the experiment driver."""


class ConfigError(DriverError):
    """The driver configuration file is missing required entries or malformed."""


class TransportError(DriverError):
    """The driver could not reach the platform or got a malformed response."""
