"""``repro-sqalpel`` command line tool.

Sub-commands:

* ``grammar <sql-file>``      -- extract and print the SQALPEL grammar of a query,
* ``space <sql-file>``        -- print tags / templates / space for a query,
* ``table1``                  -- print the Table 1 reproduction,
* ``table2 [--limit N] [--queries 1,6,14]`` -- print the Table 2 reproduction,
* ``demo``                    -- run the end-to-end demo scenario on a tiny
  TPC-H instance (grammar -> pool -> queue -> driver -> analytics),
* ``explain [sql-file] [--tpch N] [--analyze]`` -- print the plan tree (or,
  with ``--analyze``, the traced execution) of a query on a built-in engine,
* ``metrics [--server URL | --store PATH]`` -- pretty-print a platform
  metrics snapshot (live ``/api/metrics`` fetch, or queue counts computed
  offline from a store file),
* ``timeline [--flight-log PATH] [--json PATH]`` -- stitch span records into
  per-task timelines: render a flight-recorder / span JSONL log, or run the
  demo scenario with telemetry enabled and show where each task's time went.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(prog="repro-sqalpel",
                                     description="SQALPEL reproduction tooling")
    commands = parser.add_subparsers(dest="command", required=True)

    grammar_parser = commands.add_parser("grammar", help="extract a grammar from a query")
    grammar_parser.add_argument("sql_file", help="file containing the baseline SQL query")

    space_parser = commands.add_parser("space", help="query-space statistics of a query")
    space_parser.add_argument("sql_file", help="file containing the baseline SQL query")
    space_parser.add_argument("--limit", type=int, default=100_000,
                              help="hard cap on the number of templates")

    commands.add_parser("table1", help="print the Table 1 reproduction")

    table2_parser = commands.add_parser("table2", help="print the Table 2 reproduction")
    table2_parser.add_argument("--limit", type=int, default=20_000)
    table2_parser.add_argument("--queries", default="",
                               help="comma-separated TPC-H query numbers (default: all)")

    demo_parser = commands.add_parser("demo", help="run the end-to-end demo scenario")
    demo_parser.add_argument("--scale-factor", type=float, default=0.001)
    demo_parser.add_argument("--pool-size", type=int, default=12)
    demo_parser.add_argument("--workers", type=int, default=1,
                             help="column-engine morsel workers (1 = serial)")
    demo_parser.add_argument("--metrics", action="store_true",
                             help="also print the platform metrics snapshot")

    metrics_parser = commands.add_parser(
        "metrics", help="pretty-print a platform metrics snapshot")
    metrics_parser.add_argument("--server", default=None, metavar="URL",
                                help="fetch /api/metrics from a running server")
    metrics_parser.add_argument("--store", default=None, metavar="PATH",
                                help="compute queue counts offline from a store file")
    metrics_parser.add_argument("--json", action="store_true",
                                help="print the raw snapshot as JSON")

    timeline_parser = commands.add_parser(
        "timeline", help="stitch span records into per-task timelines")
    timeline_parser.add_argument("--flight-log", default=None, metavar="PATH",
                                 help="flight-recorder / span JSONL log to render "
                                      "(default: run the telemetry demo)")
    timeline_parser.add_argument("--json", default=None, metavar="PATH",
                                 help="also write the stitched report as JSON")
    timeline_parser.add_argument("--limit", type=int, default=0,
                                 help="show at most N timelines (0 = all)")
    timeline_parser.add_argument("--scale-factor", type=float, default=0.001)
    timeline_parser.add_argument("--pool-size", type=int, default=6)

    explain_parser = commands.add_parser(
        "explain", help="print the plan (or traced execution) of a query")
    explain_parser.add_argument("sql_file", nargs="?",
                                help="file containing the SQL query")
    explain_parser.add_argument("--tpch", type=int, default=None, metavar="N",
                                help="use built-in TPC-H query N instead of a file")
    explain_parser.add_argument("--engine", choices=("row", "column"),
                                default="column")
    explain_parser.add_argument("--analyze", action="store_true",
                                help="execute the query and print the span tree")
    explain_parser.add_argument("--scale-factor", type=float, default=0.001)
    explain_parser.add_argument("--workers", type=int, default=1,
                                help="column-engine morsel workers (1 = serial)")

    arguments = parser.parse_args(argv)
    handler = {
        "grammar": _cmd_grammar,
        "space": _cmd_space,
        "table1": _cmd_table1,
        "table2": _cmd_table2,
        "demo": _cmd_demo,
        "explain": _cmd_explain,
        "metrics": _cmd_metrics,
        "timeline": _cmd_timeline,
    }[arguments.command]
    return handler(arguments)


def _read_sql(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _cmd_grammar(arguments) -> int:
    from repro.core import serialize_grammar
    from repro.sqlparser import extract_grammar

    grammar = extract_grammar(_read_sql(arguments.sql_file))
    sys.stdout.write(serialize_grammar(grammar))
    return 0


def _cmd_space(arguments) -> int:
    from repro.core import space_report
    from repro.sqlparser import extract_grammar

    grammar = extract_grammar(_read_sql(arguments.sql_file))
    report = space_report(grammar, limit=arguments.limit)
    print(f"tags={report.tags} templates={report.template_label()} "
          f"space={report.space_label()}")
    return 0


def _cmd_table1(_arguments) -> int:
    from repro.reports import table1_text

    print(table1_text())
    return 0


def _cmd_table2(arguments) -> int:
    from repro.reports import table2_text

    query_ids = None
    if arguments.queries:
        query_ids = [int(chunk) for chunk in arguments.queries.split(",") if chunk]
    print(table2_text(limit=arguments.limit, query_ids=query_ids))
    return 0


def _cmd_explain(arguments) -> int:
    from repro.tpch import QUERIES
    from repro.workflow import build_engines, build_tpch_database

    if arguments.tpch is not None:
        if arguments.tpch not in QUERIES:
            print(f"unknown TPC-H query {arguments.tpch} "
                  f"(available: {', '.join(str(i) for i in sorted(QUERIES))})",
                  file=sys.stderr)
            return 2
        sql = QUERIES[arguments.tpch]
    elif arguments.sql_file:
        sql = _read_sql(arguments.sql_file)
    else:
        print("explain needs a sql-file or --tpch N", file=sys.stderr)
        return 2

    database = build_tpch_database(scale_factor=arguments.scale_factor)
    row_engine, column_engine = build_engines(database, workers=arguments.workers)
    engine = row_engine if arguments.engine == "row" else column_engine

    prefix = "explain analyze " if arguments.analyze else "explain "
    result = engine.execute(prefix + sql)
    for (line,) in result.rows:
        print(line)
    stats = engine.cache_stats()
    print(f"plan cache: {stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['size']}/{stats['maxsize']} plans cached")
    return 0


def _cmd_demo(arguments) -> int:
    from repro.workflow import run_demo_scenario

    summary = run_demo_scenario(scale_factor=arguments.scale_factor,
                                pool_size=arguments.pool_size,
                                workers=arguments.workers)
    print(summary.describe())
    if arguments.metrics and summary.metrics:
        print()
        for line in _metrics_lines(summary.metrics):
            print(line)
    return 0


def _metrics_lines(snapshot: dict) -> list[str]:
    """Render a metrics snapshot as aligned text lines."""
    lines = []
    counters = snapshot.get("counters") or {}
    if counters:
        lines.append("counters:")
        lines.extend(f"  {name:<40} {value}"
                     for name, value in sorted(counters.items()))
    gauges = snapshot.get("gauges") or {}
    if gauges:
        lines.append("gauges:")
        lines.extend(f"  {name:<40} {value:.3f}"
                     for name, value in sorted(gauges.items()))
    histograms = snapshot.get("histograms") or {}
    if histograms:
        lines.append("histograms:")
        for name, summary in sorted(histograms.items()):
            count = summary.get("count", 0)
            if not count:
                continue
            quantiles = " ".join(
                f"{label}={summary[label] * 1000.0:.2f}ms"
                for label in ("p50", "p95", "p99")
                if summary.get(label) is not None)
            lines.append(f"  {name:<40} count={count} "
                         f"mean={(summary.get('mean') or 0.0) * 1000.0:.2f}ms "
                         f"{quantiles}")
    derived = snapshot.get("derived") or {}
    if derived:
        lines.append("derived:")
        lines.extend(f"  {name:<40} {value:.1%}"
                     for name, value in sorted(derived.items()))
    return lines or ["(no metrics recorded)"]


def _store_snapshot(path: str) -> dict:
    """Queue counts computed offline from a platform store file."""
    import time

    from repro.platform.store import Store

    store = Store(path)
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    now = time.time()
    oldest_lease = None
    for task in store.tasks():
        counters[f"queue.{task.status}"] = counters.get(f"queue.{task.status}", 0) + 1
        if task.status == "running" and task.assigned_at is not None:
            age = now - task.assigned_at
            oldest_lease = age if oldest_lease is None else max(oldest_lease, age)
    counters["results.stored"] = len(store.results())
    if oldest_lease is not None:
        gauges["queue.oldest_lease_seconds"] = oldest_lease
    return {"counters": counters, "gauges": gauges, "histograms": {}, "derived": {}}


def _cmd_metrics(arguments) -> int:
    import json

    if bool(arguments.server) == bool(arguments.store):
        print("metrics needs exactly one of --server URL or --store PATH",
              file=sys.stderr)
        return 2
    if arguments.server:
        import urllib.request

        url = arguments.server.rstrip("/") + "/api/metrics"
        try:
            with urllib.request.urlopen(url, timeout=10.0) as response:
                snapshot = json.loads(response.read().decode("utf-8"))
        except OSError as exc:
            print(f"cannot fetch {url}: {exc}", file=sys.stderr)
            return 1
    else:
        snapshot = _store_snapshot(arguments.store)
    if arguments.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        for line in _metrics_lines(snapshot):
            print(line)
    return 0


def _cmd_timeline(arguments) -> int:
    import json
    from pathlib import Path as _Path

    from repro.analytics import (read_span_log, stitch_timelines,
                                 timeline_lines, timeline_report)

    if arguments.flight_log:
        spans = read_span_log(arguments.flight_log)
        timelines = stitch_timelines(span_sources=[spans])
    else:
        from repro.obs import TelemetryConfig
        from repro.workflow import run_demo_scenario

        summary = run_demo_scenario(scale_factor=arguments.scale_factor,
                                    pool_size=arguments.pool_size,
                                    telemetry=TelemetryConfig())
        timelines = summary.timelines
    shown = timelines[:arguments.limit] if arguments.limit > 0 else timelines
    for line in timeline_lines(shown):
        print(line)
    if len(shown) < len(timelines):
        print(f"... {len(timelines) - len(shown)} more timelines "
              f"(raise --limit to see them)")
    if arguments.json:
        report = timeline_report(timelines)
        _Path(arguments.json).write_text(
            json.dumps(report, indent=2, sort_keys=True), encoding="utf-8")
        print(f"wrote {report['tasks']}-task timeline report to {arguments.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
