"""``repro-sqalpel`` command line tool.

Sub-commands:

* ``grammar <sql-file>``      -- extract and print the SQALPEL grammar of a query,
* ``space <sql-file>``        -- print tags / templates / space for a query,
* ``table1``                  -- print the Table 1 reproduction,
* ``table2 [--limit N] [--queries 1,6,14]`` -- print the Table 2 reproduction,
* ``demo``                    -- run the end-to-end demo scenario on a tiny
  TPC-H instance (grammar -> pool -> queue -> driver -> analytics),
* ``explain [sql-file] [--tpch N] [--analyze]`` -- print the plan tree (or,
  with ``--analyze``, the traced execution) of a query on a built-in engine.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(prog="repro-sqalpel",
                                     description="SQALPEL reproduction tooling")
    commands = parser.add_subparsers(dest="command", required=True)

    grammar_parser = commands.add_parser("grammar", help="extract a grammar from a query")
    grammar_parser.add_argument("sql_file", help="file containing the baseline SQL query")

    space_parser = commands.add_parser("space", help="query-space statistics of a query")
    space_parser.add_argument("sql_file", help="file containing the baseline SQL query")
    space_parser.add_argument("--limit", type=int, default=100_000,
                              help="hard cap on the number of templates")

    commands.add_parser("table1", help="print the Table 1 reproduction")

    table2_parser = commands.add_parser("table2", help="print the Table 2 reproduction")
    table2_parser.add_argument("--limit", type=int, default=20_000)
    table2_parser.add_argument("--queries", default="",
                               help="comma-separated TPC-H query numbers (default: all)")

    demo_parser = commands.add_parser("demo", help="run the end-to-end demo scenario")
    demo_parser.add_argument("--scale-factor", type=float, default=0.001)
    demo_parser.add_argument("--pool-size", type=int, default=12)
    demo_parser.add_argument("--workers", type=int, default=1,
                             help="column-engine morsel workers (1 = serial)")

    explain_parser = commands.add_parser(
        "explain", help="print the plan (or traced execution) of a query")
    explain_parser.add_argument("sql_file", nargs="?",
                                help="file containing the SQL query")
    explain_parser.add_argument("--tpch", type=int, default=None, metavar="N",
                                help="use built-in TPC-H query N instead of a file")
    explain_parser.add_argument("--engine", choices=("row", "column"),
                                default="column")
    explain_parser.add_argument("--analyze", action="store_true",
                                help="execute the query and print the span tree")
    explain_parser.add_argument("--scale-factor", type=float, default=0.001)
    explain_parser.add_argument("--workers", type=int, default=1,
                                help="column-engine morsel workers (1 = serial)")

    arguments = parser.parse_args(argv)
    handler = {
        "grammar": _cmd_grammar,
        "space": _cmd_space,
        "table1": _cmd_table1,
        "table2": _cmd_table2,
        "demo": _cmd_demo,
        "explain": _cmd_explain,
    }[arguments.command]
    return handler(arguments)


def _read_sql(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _cmd_grammar(arguments) -> int:
    from repro.core import serialize_grammar
    from repro.sqlparser import extract_grammar

    grammar = extract_grammar(_read_sql(arguments.sql_file))
    sys.stdout.write(serialize_grammar(grammar))
    return 0


def _cmd_space(arguments) -> int:
    from repro.core import space_report
    from repro.sqlparser import extract_grammar

    grammar = extract_grammar(_read_sql(arguments.sql_file))
    report = space_report(grammar, limit=arguments.limit)
    print(f"tags={report.tags} templates={report.template_label()} "
          f"space={report.space_label()}")
    return 0


def _cmd_table1(_arguments) -> int:
    from repro.reports import table1_text

    print(table1_text())
    return 0


def _cmd_table2(arguments) -> int:
    from repro.reports import table2_text

    query_ids = None
    if arguments.queries:
        query_ids = [int(chunk) for chunk in arguments.queries.split(",") if chunk]
    print(table2_text(limit=arguments.limit, query_ids=query_ids))
    return 0


def _cmd_explain(arguments) -> int:
    from repro.tpch import QUERIES
    from repro.workflow import build_engines, build_tpch_database

    if arguments.tpch is not None:
        if arguments.tpch not in QUERIES:
            print(f"unknown TPC-H query {arguments.tpch} "
                  f"(available: {', '.join(str(i) for i in sorted(QUERIES))})",
                  file=sys.stderr)
            return 2
        sql = QUERIES[arguments.tpch]
    elif arguments.sql_file:
        sql = _read_sql(arguments.sql_file)
    else:
        print("explain needs a sql-file or --tpch N", file=sys.stderr)
        return 2

    database = build_tpch_database(scale_factor=arguments.scale_factor)
    row_engine, column_engine = build_engines(database, workers=arguments.workers)
    engine = row_engine if arguments.engine == "row" else column_engine

    prefix = "explain analyze " if arguments.analyze else "explain "
    result = engine.execute(prefix + sql)
    for (line,) in result.rows:
        print(line)
    stats = engine.cache_stats()
    print(f"plan cache: {stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['size']}/{stats['maxsize']} plans cached")
    return 0


def _cmd_demo(arguments) -> int:
    from repro.workflow import run_demo_scenario

    summary = run_demo_scenario(scale_factor=arguments.scale_factor,
                                pool_size=arguments.pool_size,
                                workers=arguments.workers)
    print(summary.describe())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
