"""Command-line interface for the reproduction."""

from repro.cli.main import main

__all__ = ["main"]
