"""SQL lexer.

Splits SQL text into a flat list of :class:`Token` objects.  The lexer is
deliberately dialect-agnostic: keywords are recognised case-insensitively but
their original spelling is preserved, identifiers keep their case, and string
literals keep their quotes so the extractor can reproduce the original text
verbatim inside grammar literals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLSyntaxError

#: Keywords the parser attaches meaning to.  Everything else that looks like a
#: word is an identifier (which covers function names such as ``sum``).
KEYWORDS = frozenset(
    {
        "select", "distinct", "all", "from", "where", "group", "by", "having",
        "order", "limit", "offset", "as", "and", "or", "not", "in", "exists",
        "between", "like", "is", "null", "case", "when", "then", "else", "end",
        "join", "inner", "left", "right", "full", "outer", "cross", "on",
        "union", "except", "intersect", "asc", "desc", "date", "interval",
        "cast", "extract", "substring", "for", "with", "true", "false", "any", "some",
        "nulls", "first", "last", "fetch", "rows", "row", "only", "values",
    }
)


class TokenKind(enum.Enum):
    """Lexical categories produced by :func:`tokenize`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``value`` is the canonical value (keywords lower-cased, strings without
    quotes); ``text`` is the original source spelling.
    """

    kind: TokenKind
    value: str
    text: str
    position: int
    line: int

    def is_keyword(self, *names: str) -> bool:
        """Return True when the token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Token({self.kind.name}, {self.text!r})"


_OPERATORS = (
    "<>", "<=", ">=", "!=", "||", "=", "<", ">", "+", "-", "*", "/", "%",
)
_PUNCTUATION = "(),.;"


def tokenize(sql: str) -> list[Token]:
    """Tokenise ``sql`` into a list of tokens terminated by an EOF token.

    Raises :class:`SQLSyntaxError` on unterminated strings or unexpected
    characters.
    """
    tokens: list[Token] = []
    index = 0
    line = 1
    length = len(sql)

    while index < length:
        char = sql[index]

        if char == "\n":
            line += 1
            index += 1
            continue
        if char.isspace():
            index += 1
            continue

        # -- comments -----------------------------------------------------
        if sql.startswith("--", index):
            end = sql.find("\n", index)
            index = length if end == -1 else end
            continue
        if sql.startswith("/*", index):
            end = sql.find("*/", index)
            if end == -1:
                raise SQLSyntaxError("unterminated block comment", position=index, line=line)
            line += sql.count("\n", index, end)
            index = end + 2
            continue

        # -- string literals ----------------------------------------------
        if char == "'":
            end = index + 1
            chunks: list[str] = []
            while True:
                if end >= length:
                    raise SQLSyntaxError("unterminated string literal", position=index, line=line)
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        chunks.append("'")
                        end += 2
                        continue
                    break
                chunks.append(sql[end])
                end += 1
            text = sql[index:end + 1]
            tokens.append(Token(TokenKind.STRING, "".join(chunks), text, index, line))
            index = end + 1
            continue

        # -- quoted identifiers ---------------------------------------------
        if char == '"':
            end = sql.find('"', index + 1)
            if end == -1:
                raise SQLSyntaxError("unterminated quoted identifier", position=index, line=line)
            text = sql[index:end + 1]
            tokens.append(Token(TokenKind.IDENTIFIER, sql[index + 1:end], text, index, line))
            index = end + 1
            continue

        # -- numbers -----------------------------------------------------------
        if char.isdigit() or (char == "." and index + 1 < length and sql[index + 1].isdigit()):
            end = index
            seen_dot = False
            seen_exp = False
            while end < length:
                current = sql[end]
                if current.isdigit():
                    end += 1
                elif current == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    end += 1
                elif current in "eE" and not seen_exp and end + 1 < length and (
                        sql[end + 1].isdigit() or sql[end + 1] in "+-"):
                    seen_exp = True
                    end += 2 if sql[end + 1] in "+-" else 1
                else:
                    break
            text = sql[index:end]
            tokens.append(Token(TokenKind.NUMBER, text, text, index, line))
            index = end
            continue

        # -- identifiers / keywords ---------------------------------------------
        if char.isalpha() or char == "_":
            end = index
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            text = sql[index:end]
            lowered = text.lower()
            kind = TokenKind.KEYWORD if lowered in KEYWORDS else TokenKind.IDENTIFIER
            value = lowered if kind is TokenKind.KEYWORD else text
            tokens.append(Token(kind, value, text, index, line))
            index = end
            continue

        # -- operators ----------------------------------------------------------
        matched = False
        for operator in _OPERATORS:
            if sql.startswith(operator, index):
                tokens.append(Token(TokenKind.OPERATOR, operator, operator, index, line))
                index += len(operator)
                matched = True
                break
        if matched:
            continue

        if char in _PUNCTUATION:
            tokens.append(Token(TokenKind.PUNCTUATION, char, char, index, line))
            index += 1
            continue

        raise SQLSyntaxError(f"unexpected character {char!r}", position=index, line=line)

    tokens.append(Token(TokenKind.EOF, "", "", length, line))
    return tokens
