"""Abstract syntax tree for the supported SQL dialect.

The AST is shared by the grammar extractor (which walks it to split a baseline
query into SQALPEL rules) and the relational engines (which compile it into
executable plans).  It covers the SELECT subset exercised by TPC-H:
expressions with arithmetic, comparisons, boolean connectives, LIKE, BETWEEN,
IN (value lists and subqueries), EXISTS, IS NULL, CASE, CAST, EXTRACT,
SUBSTRING, aggregate and scalar function calls, date and interval literals,
joins expressed in the FROM list or with explicit JOIN ... ON, GROUP BY,
HAVING, ORDER BY, LIMIT and subqueries in FROM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence


class Node:
    """Base class of all AST nodes."""

    def children(self) -> Iterator["Node"]:
        """Yield the direct child nodes (used by generic walkers)."""
        return iter(())

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression(Node):
    """Base class of expression nodes."""


@dataclass
class Literal(Expression):
    """A constant: number, string, boolean or NULL."""

    value: object
    type_name: str = "unknown"  # number | string | boolean | null


@dataclass
class DateLiteral(Expression):
    """A ``date 'YYYY-MM-DD'`` literal, stored as an ISO string."""

    value: str


@dataclass
class IntervalLiteral(Expression):
    """An ``interval '3' month`` literal."""

    value: int
    unit: str  # day | month | year


@dataclass
class ColumnRef(Expression):
    """A (possibly qualified) column reference."""

    name: str
    table: str | None = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expression):
    """``*`` or ``table.*`` in a select list or inside ``count(*)``."""

    table: str | None = None


@dataclass
class UnaryOp(Expression):
    """Unary operators: ``-x``, ``+x``, ``NOT x``."""

    operator: str
    operand: Expression

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class BinaryOp(Expression):
    """Binary arithmetic/comparison/string operators."""

    operator: str
    left: Expression
    right: Expression

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass
class BoolOp(Expression):
    """N-ary AND / OR."""

    operator: str  # "and" | "or"
    operands: list[Expression] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.operands


@dataclass
class Comparison(Expression):
    """Comparison with an optional ANY/ALL subquery quantifier."""

    operator: str
    left: Expression
    right: Expression
    quantifier: str | None = None  # "any" | "all" | None

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.operand
        yield self.low
        yield self.high


@dataclass
class Like(Expression):
    """``expr [NOT] LIKE pattern``."""

    operand: Expression
    pattern: Expression
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.operand
        yield self.pattern


@dataclass
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    items: list[Expression] = field(default_factory=list)
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.operand
        yield from self.items


@dataclass
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expression
    subquery: "Select" = None  # type: ignore[assignment]
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.operand
        yield self.subquery


@dataclass
class Exists(Expression):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "Select" = None  # type: ignore[assignment]
    negated: bool = False

    def children(self) -> Iterator[Node]:
        yield self.subquery


@dataclass
class ScalarSubquery(Expression):
    """A subquery used as a scalar value."""

    subquery: "Select" = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.subquery


@dataclass
class FunctionCall(Expression):
    """A function or aggregate call."""

    name: str
    arguments: list[Expression] = field(default_factory=list)
    distinct: bool = False

    def children(self) -> Iterator[Node]:
        yield from self.arguments

    @property
    def is_aggregate(self) -> bool:
        return self.name.lower() in AGGREGATE_FUNCTIONS


@dataclass
class Cast(Expression):
    """``CAST(expr AS type)``."""

    operand: Expression
    type_name: str

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class Extract(Expression):
    """``EXTRACT(field FROM expr)``."""

    field_name: str
    operand: Expression

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class Substring(Expression):
    """``SUBSTRING(expr FROM start FOR length)`` (or comma form)."""

    operand: Expression
    start: Expression
    length: Expression | None = None

    def children(self) -> Iterator[Node]:
        yield self.operand
        yield self.start
        if self.length is not None:
            yield self.length


@dataclass
class CaseWhen(Expression):
    """A searched CASE expression."""

    branches: list[tuple[Expression, Expression]] = field(default_factory=list)
    default: Expression | None = None

    def children(self) -> Iterator[Node]:
        for condition, result in self.branches:
            yield condition
            yield result
        if self.default is not None:
            yield self.default


#: Names treated as aggregate functions by the analyser and the engines.
AGGREGATE_FUNCTIONS = frozenset({"sum", "avg", "min", "max", "count"})


# ---------------------------------------------------------------------------
# Relations / query structure
# ---------------------------------------------------------------------------


class TableExpression(Node):
    """Base class of FROM-clause items."""


@dataclass
class TableRef(TableExpression):
    """A base table reference with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """Name the table is visible under inside the query."""
        return self.alias or self.name


@dataclass
class SubqueryRef(TableExpression):
    """A derived table: ``(SELECT ...) alias``."""

    subquery: "Select"
    alias: str

    def children(self) -> Iterator[Node]:
        yield self.subquery

    @property
    def binding(self) -> str:
        return self.alias


@dataclass
class Join(TableExpression):
    """An explicit ``A JOIN B ON condition``."""

    left: TableExpression
    right: TableExpression
    kind: str = "inner"  # inner | left | right | full | cross
    condition: Expression | None = None

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right
        if self.condition is not None:
            yield self.condition

    @property
    def binding(self) -> str:  # pragma: no cover - joins are unwrapped before binding
        return "<join>"


@dataclass
class SelectItem(Node):
    """One projection-list element with an optional alias."""

    expression: Expression
    alias: str | None = None

    def children(self) -> Iterator[Node]:
        yield self.expression

    def output_name(self, position: int) -> str:
        """Name of the output column (alias, column name, or col<N>)."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        return f"col{position + 1}"


@dataclass
class OrderItem(Node):
    """One ORDER BY term."""

    expression: Expression
    descending: bool = False

    def children(self) -> Iterator[Node]:
        yield self.expression


@dataclass
class Select(Node):
    """A SELECT query block."""

    items: list[SelectItem] = field(default_factory=list)
    from_items: list[TableExpression] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False

    def children(self) -> Iterator[Node]:
        yield from self.items
        yield from self.from_items
        if self.where is not None:
            yield self.where
        yield from self.group_by
        if self.having is not None:
            yield self.having
        yield from self.order_by

    # -- analysis helpers -----------------------------------------------------

    def table_refs(self) -> list[TableRef]:
        """Return every base-table reference in this block (not subqueries)."""
        refs: list[TableRef] = []

        def collect(item: TableExpression) -> None:
            if isinstance(item, TableRef):
                refs.append(item)
            elif isinstance(item, Join):
                collect(item.left)
                collect(item.right)

        for item in self.from_items:
            collect(item)
        return refs

    def has_aggregates(self) -> bool:
        """True when any select item or HAVING uses an aggregate function.

        Aggregates inside nested subqueries do not count: they aggregate in
        their own block.
        """
        scope: list[Expression] = [item.expression for item in self.items]
        if self.having is not None:
            scope.append(self.having)
        return any(has_local_aggregate(expression) for expression in scope)

    def subqueries(self) -> list["Select"]:
        """Return directly nested subqueries (in FROM, WHERE, select list, HAVING)."""
        nested: list[Select] = []
        for node in self.walk():
            if node is self:
                continue
            if isinstance(node, Select):
                nested.append(node)
        return nested


def walk_local(expression: Node) -> Iterator[Node]:
    """Yield ``expression`` and its descendants WITHOUT entering nested SELECTs.

    Aggregates and column references that live inside a subquery belong to
    that subquery's scope, so analyses of the enclosing expression must not
    see them; this walker is the pruning counterpart of :meth:`Node.walk`.
    """
    stack: list[Node] = [expression]
    while stack:
        node = stack.pop()
        yield node
        for child in node.children():
            if isinstance(child, Select):
                continue
            stack.append(child)


def has_local_aggregate(expression: Expression) -> bool:
    """True when ``expression`` itself (not a nested subquery) uses an aggregate."""
    return any(
        isinstance(node, FunctionCall) and node.is_aggregate
        for node in walk_local(expression)
    )


def conjuncts(expression: Expression | None) -> list[Expression]:
    """Split a WHERE/HAVING expression into its top-level AND conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, BoolOp) and expression.operator == "and":
        parts: list[Expression] = []
        for operand in expression.operands:
            parts.extend(conjuncts(operand))
        return parts
    return [expression]


def column_refs(expression: Expression) -> list[ColumnRef]:
    """Return every column reference inside ``expression`` (excluding subqueries)."""
    refs: list[ColumnRef] = []
    stack: list[Node] = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, ColumnRef):
            refs.append(node)
            continue
        if isinstance(node, Select):
            continue  # do not descend into nested query blocks
        stack.extend(node.children())
    return list(reversed(refs))


def make_and(parts: Sequence[Expression]) -> Expression | None:
    """Combine ``parts`` into a single conjunction (None when empty)."""
    parts = list(parts)
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return BoolOp(operator="and", operands=parts)
