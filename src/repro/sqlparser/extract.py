"""Convert a baseline SQL query into a SQALPEL query-space grammar.

The paper (Section 3.1): "We have implemented a full fledged SQL parser that
turns a single query, called the baseline query, into a sqalpel grammar. [...]
The heuristic applied by the parser is to split the query along
projection-list elements, table-expressions, sub-queries, and/or expressions,
group-by and order-by terms.  The remainders are considered literal tokens."

The extractor applies that heuristic:

* every projection-list element becomes a literal of class ``l_project``; the
  query space contains every non-empty subset of them,
* the FROM clause is kept fixed by default (removing arbitrary tables
  produces overwhelmingly invalid join paths; the paper notes such grammars
  usually need a manual edit to "make join-paths explicit"), but derived
  tables in FROM are **descended into**: their inner query gets its own set
  of rules, prefixed with ``dN_``, so the space covers variations of the
  nested block too (TPC-H Q7, Q8, Q9, Q13, Q15, Q22),
* the WHERE clause is split into its top-level AND conjuncts (each a literal
  of class ``l_filter``; any non-empty subset can be generated); a conjunct
  that is a top-level OR is split into its disjuncts, and a disjunct that is
  itself an AND group is split further (TPC-H Q19),
* each GROUP BY and ORDER BY term becomes part of the space,
* HAVING and LIMIT are kept as single optional literals,
* sub-queries in predicates stay embedded in the conjunct that contains
  them, so the *prune* strategy can assess their contribution by dropping
  the whole conjunct.

The resulting grammar renders back into syntactically valid SQL for the
built-in engines (modulo the semantic caveats the paper itself acknowledges:
"In case the grammar produces too many semantic incorrect queries [...] a
manual edit of the grammar is called for").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dsl import parse_alternative
from repro.core.model import Grammar, Rule
from repro.errors import ExtractionError
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_select
from repro.sqlparser.printer import to_sql


@dataclass
class ExtractionOptions:
    """Tuning knobs for the query-to-grammar extraction."""

    #: split OR conjuncts into per-disjunct (and per-group-conjunct) literals.
    split_or: bool = True
    #: split the FROM clause into one literal per table expression.  Off by
    #: default: arbitrary table subsets rarely form valid join paths.
    split_tables: bool = False
    #: descend into derived tables (subqueries in FROM).
    descend_derived: bool = True
    #: make GROUP BY terms part of the space (each term optional).
    split_group_by: bool = True
    #: make ORDER BY terms part of the space (each term optional).
    split_order_by: bool = True
    #: keep the LIMIT clause as an optional literal.
    include_limit: bool = True
    #: keep the HAVING clause as an optional literal.
    include_having: bool = True
    #: name of the produced grammar.
    name: str = "baseline"


def extract_grammar(sql: str, options: ExtractionOptions | None = None) -> Grammar:
    """Parse ``sql`` and derive its SQALPEL query-space grammar."""
    options = options or ExtractionOptions()
    try:
        select = parse_select(sql)
    except ExtractionError:
        raise
    except Exception as exc:
        raise ExtractionError(f"cannot parse baseline query: {exc}") from exc
    return extract_from_ast(select, options)


def extract_from_ast(select: ast.Select, options: ExtractionOptions | None = None) -> Grammar:
    """Derive the grammar of an already-parsed SELECT block."""
    options = options or ExtractionOptions()
    builder = _GrammarBuilder(options)
    return builder.build(select)


class _GrammarBuilder:
    """Incrementally assembles the grammar rules for one baseline query."""

    def __init__(self, options: ExtractionOptions):
        self.options = options
        self.rules: list[Rule] = []
        self._line = 0
        self._derived_counter = 0

    # -- plumbing ----------------------------------------------------------------

    def _next_line(self) -> int:
        self._line += 1
        return self._line

    def _add_rule(self, name: str, alternatives: list[str], front: bool = False) -> Rule:
        rule = Rule(name=name, alternatives=[], line=self._next_line())
        for text in alternatives:
            rule.alternatives.append(parse_alternative(text, line=self._next_line()))
        if front:
            self.rules.insert(0, rule)
        else:
            self.rules.append(rule)
        return rule

    # -- main assembly --------------------------------------------------------------

    def build(self, select: ast.Select) -> Grammar:
        start_name = self._build_query(select, prefix="")
        grammar = Grammar.from_rules(self.rules, start=start_name, name=self.options.name)
        return grammar

    def _build_query(self, select: ast.Select, prefix: str) -> str:
        """Emit the rules for one query block; return its start rule name."""
        if not select.items:
            raise ExtractionError("the query block has an empty select list")
        if not select.from_items:
            raise ExtractionError("the query block has no FROM clause")

        query_rule_name = f"{prefix}query" if prefix else "query"
        parts: list[str] = ["SELECT"]
        if select.distinct:
            parts.append("DISTINCT")
        parts.append(f"${{{prefix}projection}}")
        parts.append(f"FROM ${{{prefix}tables}}")

        # Reserve the query rule's position so nested rules come after it.
        placeholder = self._add_rule(query_rule_name, [])
        self._build_projection(select, prefix)
        self._build_tables(select, prefix)

        where_rule = self._build_where(select, prefix)
        if where_rule:
            parts.append(f"$[{where_rule}]")
        group_rule = self._build_group_by(select, prefix)
        if group_rule:
            parts.append(f"$[{group_rule}]")
        having_rule = self._build_having(select, prefix)
        if having_rule:
            parts.append(f"$[{having_rule}]")
        order_rule = self._build_order_by(select, prefix)
        if order_rule:
            parts.append(f"$[{order_rule}]")
        limit_rule = self._build_limit(select, prefix)
        if limit_rule:
            parts.append(f"$[{limit_rule}]")

        placeholder.alternatives.append(
            parse_alternative(" ".join(parts), line=self._next_line())
        )
        return query_rule_name

    # -- clause builders ----------------------------------------------------------------

    def _build_projection(self, select: ast.Select, prefix: str) -> None:
        literals = [to_sql(item) for item in select.items]
        self._add_rule(
            f"{prefix}projection",
            [f"${{{prefix}l_project}} ${{{prefix}projectlist}}*"],
        )
        self._add_rule(f"{prefix}projectlist", [f", ${{{prefix}l_project}}"])
        self._add_rule(f"{prefix}l_project", literals)

    def _render_from_item(self, item: ast.TableExpression, prefix: str) -> str:
        """Render one FROM item, recursing into derived tables when enabled."""
        if isinstance(item, ast.SubqueryRef) and self.options.descend_derived:
            self._derived_counter += 1
            nested_prefix = f"{prefix}d{self._derived_counter}_"
            nested_rule = self._build_query(item.subquery, nested_prefix)
            return f"( ${{{nested_rule}}} ) {item.alias}"
        return to_sql(item)

    def _build_tables(self, select: ast.Select, prefix: str) -> None:
        rendered = [self._render_from_item(item, prefix) for item in select.from_items]
        has_reference = any("${" in text for text in rendered)
        if has_reference or not self.options.split_tables or len(rendered) == 1:
            if has_reference:
                # The FROM clause embeds nested query rules; keep it as one
                # structural alternative.
                self._add_rule(f"{prefix}tables", [", ".join(rendered)])
            else:
                self._add_rule(f"{prefix}tables", [f"${{{prefix}l_tables}}"])
                self._add_rule(f"{prefix}l_tables", [", ".join(rendered)])
            return
        self._add_rule(
            f"{prefix}tables",
            [f"${{{prefix}l_table}} ${{{prefix}tablelist}}*"],
        )
        self._add_rule(f"{prefix}tablelist", [f", ${{{prefix}l_table}}"])
        self._add_rule(f"{prefix}l_table", rendered)

    def _build_where(self, select: ast.Select, prefix: str) -> str | None:
        terms = ast.conjuncts(select.where)
        if not terms:
            return None

        simple_terms: list[str] = []
        or_refs: list[str] = []
        for index, term in enumerate(terms):
            if (self.options.split_or and isinstance(term, ast.BoolOp)
                    and term.operator == "or" and len(term.operands) > 1):
                or_refs.append(self._build_or_group(term, prefix, index + 1))
            else:
                simple_terms.append(to_sql(term))

        alternatives: list[str] = []
        if simple_terms:
            self._add_rule(f"{prefix}l_filter", simple_terms)
            self._add_rule(f"{prefix}filterlist", [f"AND ${{{prefix}l_filter}}"])
            head = f"WHERE ${{{prefix}l_filter}} ${{{prefix}filterlist}}*"
            for ref in or_refs:
                optional_name = f"{prefix}and_{ref}"
                self._add_rule(optional_name, [f"AND ${{{ref}}}"])
                head += f" $[{optional_name}]"
            alternatives.append(head)
        else:
            head = "WHERE " + " AND ".join(f"${{{ref}}}" for ref in or_refs)
            alternatives.append(head)
        where_name = f"{prefix}where"
        self._add_rule(where_name, alternatives)
        return where_name

    def _build_or_group(self, term: ast.BoolOp, prefix: str, index: int) -> str:
        """Emit the rules for one OR conjunct; return the rule name to reference."""
        or_name = f"{prefix}or{index}"
        alt_name = f"{or_name}_alt"
        alt_bodies: list[str] = []
        simple_disjuncts: list[str] = []
        for position, disjunct in enumerate(term.operands, start=1):
            inner = ast.conjuncts(disjunct)
            if len(inner) > 1:
                group_name = f"{or_name}_g{position}"
                self._add_rule(f"{group_name}_l", [to_sql(part) for part in inner])
                self._add_rule(f"{group_name}_list", [f"AND ${{{group_name}_l}}"])
                self._add_rule(
                    group_name,
                    [f"( ${{{group_name}_l}} ${{{group_name}_list}}* )"],
                )
                alt_bodies.append(f"${{{group_name}}}")
            else:
                simple_disjuncts.append(to_sql(disjunct))
        if simple_disjuncts:
            self._add_rule(f"{or_name}_l", simple_disjuncts)
            alt_bodies.append(f"${{{or_name}_l}}")
        self._add_rule(alt_name, alt_bodies)
        self._add_rule(f"{or_name}_list", [f"OR ${{{alt_name}}}"])
        self._add_rule(or_name, [f"( ${{{alt_name}}} ${{{or_name}_list}}* )"])
        return or_name

    def _build_group_by(self, select: ast.Select, prefix: str) -> str | None:
        if not select.group_by:
            return None
        rendered = [to_sql(term) for term in select.group_by]
        group_name = f"{prefix}groupby"
        if not self.options.split_group_by or len(rendered) == 1:
            self._add_rule(f"{prefix}l_group", [", ".join(rendered)])
            self._add_rule(group_name, [f"GROUP BY ${{{prefix}l_group}}"])
            return group_name
        self._add_rule(f"{prefix}l_group", rendered)
        self._add_rule(f"{prefix}grouplist", [f", ${{{prefix}l_group}}"])
        self._add_rule(
            group_name,
            [f"GROUP BY ${{{prefix}l_group}} ${{{prefix}grouplist}}*"],
        )
        return group_name

    def _build_having(self, select: ast.Select, prefix: str) -> str | None:
        if select.having is None or not self.options.include_having:
            return None
        having_name = f"{prefix}having"
        self._add_rule(f"{prefix}l_having", [to_sql(select.having)])
        self._add_rule(having_name, [f"HAVING ${{{prefix}l_having}}"])
        return having_name

    def _build_order_by(self, select: ast.Select, prefix: str) -> str | None:
        if not select.order_by or not self.options.split_order_by:
            return None
        rendered = [to_sql(term) for term in select.order_by]
        order_name = f"{prefix}orderby"
        if len(rendered) == 1:
            self._add_rule(f"{prefix}l_order", rendered)
            self._add_rule(order_name, [f"ORDER BY ${{{prefix}l_order}}"])
            return order_name
        self._add_rule(f"{prefix}l_order", rendered)
        self._add_rule(f"{prefix}orderlist", [f", ${{{prefix}l_order}}"])
        self._add_rule(
            order_name,
            [f"ORDER BY ${{{prefix}l_order}} ${{{prefix}orderlist}}*"],
        )
        return order_name

    def _build_limit(self, select: ast.Select, prefix: str) -> str | None:
        if select.limit is None or not self.options.include_limit:
            return None
        limit_name = f"{prefix}limitclause"
        self._add_rule(f"{prefix}l_limit", [f"LIMIT {select.limit}"])
        self._add_rule(limit_name, [f"${{{prefix}l_limit}}"])
        return limit_name
